//! Bytecode optimizing-pass pipeline.
//!
//! §3.1 compiles table matches and actions into RMT bytecode; this
//! module is the optimizer that sits between the verifier and
//! [`crate::jit::CompiledAction::compile`]. It is a classic fixpoint
//! driver over small [`Pass`] structs: each pass rewrites an action
//! body in place (or removes instructions), the driver re-runs the
//! whole pipeline until no pass fires, and a hard iteration bound
//! ([`MAX_FIXPOINT_ROUNDS`]) caps the loop so a buggy pass can never
//! spin the control plane.
//!
//! The passes:
//!
//! - [`ConstFold`] — per-block constant propagation reusing
//!   [`crate::bytecode::AluOp::eval`] / [`CmpOp::eval`] as the single
//!   source of truth
//!   for arithmetic and comparison semantics (wrapping, div/mod-by-zero
//!   = 0, masked shifts). Folds `Alu` → `AluImm` → `LdImm`, `Mov`-of-
//!   constant → `LdImm`, and decides constant conditional jumps.
//! - [`Specialize`] — per-block context-access specialization:
//!   store-to-load forwarding (`StCtxt f, r` … `LdCtxt d, f` becomes
//!   `Mov d, r`) and redundant-load CSE (a second `LdCtxt` of a field
//!   whose value is still held in a register becomes a `Mov`). The
//!   schema's writability split makes this sound: nothing but `StCtxt`
//!   mutates the context inside an action. The per-hook half of
//!   specialization — baking the installed tables' kinds and the
//!   consumed-field projection (the decision-cache key) into the fire
//!   path — lives in [`crate::machine`]: each hook precomputes whether
//!   any installed action can write a consumed field, and cached
//!   decisions on write-free hooks replay without re-extracting keys.
//! - [`DeadCode`] — global backward liveness over scalar and vector
//!   registers; removes pure dead writes (`LdImm`, `Mov`, `Alu`,
//!   `AluImm`, `LdCtxt`, `ScalarVal`, `VectorClear`, `VectorLdCtxt`)
//!   and dead context stores overwritten before any read in the same
//!   block. `StCtxt` is observable at action exit, so a store is dead
//!   only when another store to the same field lands before the block
//!   ends. Side-effecting instructions are never removed — including
//!   `MapLookup`, whose LRU-recency touch is visible in eviction
//!   order, and `Call`/`DpAggregate`, which consume the program's RNG
//!   stream.
//! - [`GuardHoist`] — dominator-based guard redundancy elimination:
//!   a conditional whose predicate is already decided by a dominating
//!   guard (same or negated comparison, operands unredefined on every
//!   path in between) is rewritten into an unconditional jump, so a
//!   chain or loop of repeated bodies pays each invariant check once,
//!   at the earliest dominating point.
//! - [`BranchFold`] — jump threading (a jump whose target is a `Jmp`
//!   retargets to the end of the chain; a jump landing on a terminator
//!   becomes that terminator), removal of jumps to the immediately
//!   following instruction, and unreachable-code elimination with
//!   jump-target rewriting.
//!
//! [`ConstFold`] and [`GuardHoist`] are whole-body forward analyses
//! over a small CFG ([`Cfg`]): basic blocks from the shared leader
//! scan, reverse postorder, immediate dominators (Cooper–Harvey–
//! Kennedy), and natural-loop bodies from dominated back edges. Loop
//! headers widen instead of resetting: only registers defined (and
//! fields stored) somewhere inside the loop are dropped at the
//! header, so loop-invariant constants and guard facts survive the
//! back edge while loop-carried state is conservatively unknown.
//!
//! On top of the per-action pipeline sits [`fuse_chain`] — tail-call
//! match-chain fusion. It is not a [`Pass`] (it needs the program's
//! action list and the live tables, not just one body): when an
//! optimized body's sole reachable `TailCall` targets a table whose
//! lookup is statically resolvable — constant match key after
//! folding, or an empty/default-only table — the callee body is
//! inlined at the call site and the combined body re-optimized, to a
//! depth/size budget. The machine owns when fusion is valid (tables
//! mutate at runtime): see the generation-stamped install and
//! invalidation protocol in [`crate::machine`].
//!
//! Two invariants hold for every pass and are property-tested:
//! semantics of verified bodies are preserved bit-for-bit (verdict,
//! effects, context, map state), and the instruction count never
//! grows. The optimizer runs behind an [`OptLevel`] knob on
//! [`crate::prog::ProgramBuilder`] (default on; `O0` is the retained
//! oracle path), and every optimized action is re-verified before
//! install — a failure is a hard [`crate::error::VmError::Verify`]
//! at compile time, never a silently-installed body.

use crate::bytecode::{Action, CmpOp, Insn, Reg, VReg, ARG_REG, NUM_REGS, NUM_VREGS};
use crate::ctxt::FieldId;
use crate::table::Table;

/// Hard bound on fixpoint rounds: the driver re-runs the pass list at
/// most this many times. Each round either fires a pass (strictly
/// descending a finite measure) or terminates the loop, so real
/// pipelines converge in a handful of rounds; the bound exists so a
/// buggy pass cannot spin.
pub const MAX_FIXPOINT_ROUNDS: usize = 16;

/// Optimization level for action compilation.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum OptLevel {
    /// No optimization: the JIT compiles exactly what the verifier
    /// admitted. Retained as the oracle path for differential testing.
    O0,
    /// Generic passes: constant folding, dead-code elimination, branch
    /// folding + unreachable-code elimination.
    O1,
    /// `O1` plus context-access specialization. The default.
    #[default]
    O2,
}

/// One optimization pass over an action body.
///
/// Implementations must preserve the semantics of verifier-admitted
/// bodies and must never grow the instruction count; the driver
/// asserts the latter after every run.
pub trait Pass {
    /// Short stable name (diagnostics, golden tests).
    fn name(&self) -> &'static str;
    /// Rewrites `code` in place; returns `true` iff anything changed.
    fn run(&self, code: &mut Vec<Insn>) -> bool;
}

/// The result of running the pipeline over one action.
#[derive(Clone, Debug)]
pub struct Optimized {
    /// The optimized action (same name and loop bound, new body).
    pub action: Action,
    /// Fixpoint rounds taken (including the final no-change round).
    pub rounds: usize,
    /// Names of the passes that fired, in firing order.
    pub fired: Vec<&'static str>,
    /// `true` when the driver hit the round bound while passes were
    /// still firing — the pipeline converged silently-partially
    /// instead of reaching a fixpoint. Exported as the
    /// `opt_fixpoint_cap_hits` machine counter.
    pub capped: bool,
}

/// Returns the pass list for a level (`O0` is empty).
pub fn passes_for(level: OptLevel) -> Vec<Box<dyn Pass>> {
    match level {
        OptLevel::O0 => Vec::new(),
        OptLevel::O1 => vec![
            Box::new(ConstFold),
            Box::new(GuardHoist),
            Box::new(DeadCode),
            Box::new(BranchFold),
        ],
        OptLevel::O2 => vec![
            Box::new(ConstFold),
            Box::new(GuardHoist),
            Box::new(Specialize),
            Box::new(DeadCode),
            Box::new(BranchFold),
        ],
    }
}

/// Runs the standard pipeline for `level` to fixpoint.
pub fn optimize(action: &Action, level: OptLevel) -> Optimized {
    let passes = passes_for(level);
    let refs: Vec<&dyn Pass> = passes.iter().map(|p| p.as_ref()).collect();
    optimize_with(action, &refs, MAX_FIXPOINT_ROUNDS)
}

/// Runs an explicit pass list to fixpoint with an explicit round
/// bound. This is the seam the broken-pass meta-safety tests drive;
/// production callers use [`optimize`].
///
/// # Panics
///
/// Panics if a pass grows the instruction count — that is a pass bug,
/// not an input condition.
pub fn optimize_with(action: &Action, passes: &[&dyn Pass], max_rounds: usize) -> Optimized {
    let mut code = action.code.clone();
    let mut fired = Vec::new();
    let mut rounds = 0;
    let mut capped = false;
    while rounds < max_rounds {
        rounds += 1;
        let mut any = false;
        for p in passes {
            let before = code.len();
            if p.run(&mut code) {
                any = true;
                fired.push(p.name());
            }
            assert!(
                code.len() <= before,
                "pass {} grew the instruction count ({} -> {})",
                p.name(),
                before,
                code.len()
            );
        }
        if !any {
            break;
        }
        // A pass fired in the final permitted round: no clean
        // no-change round was observed, so convergence is unproven.
        capped = rounds == max_rounds;
    }
    Optimized {
        action: Action {
            name: action.name.clone(),
            code,
            loop_bound: action.loop_bound,
        },
        rounds,
        fired,
        capped,
    }
}

/// The set of fields an action body can write (its `StCtxt` targets).
/// The machine unions this across a program's actions to decide, per
/// hook, whether cached decisions can replay without re-extracting
/// match keys (see the decision-cache notes in [`crate::machine`]).
pub fn ctxt_writes(action: &Action) -> Vec<FieldId> {
    let mut out: Vec<FieldId> = Vec::new();
    for insn in &action.code {
        if let Insn::StCtxt { field, .. } = insn {
            if !out.contains(field) {
                out.push(*field);
            }
        }
    }
    out
}

// ---------------------------------------------------------------------
// Shared CFG helpers
// ---------------------------------------------------------------------

/// Marks basic-block leaders: instruction 0, every jump target, and
/// every instruction following a jump or terminator.
fn leaders(code: &[Insn]) -> Vec<bool> {
    let mut lead = vec![false; code.len()];
    if !code.is_empty() {
        lead[0] = true;
    }
    for (i, insn) in code.iter().enumerate() {
        if let Some(t) = insn.jump_target() {
            if t < code.len() {
                lead[t] = true;
            }
            if i + 1 < code.len() {
                lead[i + 1] = true;
            }
        } else if insn.is_terminator() && i + 1 < code.len() {
            lead[i + 1] = true;
        }
    }
    lead
}

/// Removes instructions where `keep[i]` is false, rewriting every jump
/// target through the position map. A target pointing at a removed
/// instruction lands on the next kept one — exactly the fall-through
/// semantics of the (pure, dead, or unreachable) instruction removed.
/// Returns `true` if anything was removed.
fn compact(code: &mut Vec<Insn>, keep: &[bool]) -> bool {
    debug_assert_eq!(code.len(), keep.len());
    if keep.iter().all(|&k| k) {
        return false;
    }
    let mut newpos = vec![0usize; code.len() + 1];
    let mut n = 0usize;
    for i in 0..code.len() {
        newpos[i] = n;
        if keep[i] {
            n += 1;
        }
    }
    newpos[code.len()] = n;
    let mut out = Vec::with_capacity(n);
    for (i, insn) in code.iter().enumerate() {
        if !keep[i] {
            continue;
        }
        let mut insn = insn.clone();
        match &mut insn {
            Insn::Jmp { target } | Insn::JmpIf { target, .. } | Insn::JmpIfImm { target, .. } => {
                *target = newpos[*target]
            }
            _ => {}
        }
        out.push(insn);
    }
    *code = out;
    true
}

/// Scalar registers an instruction may define, as a bitmask —
/// including the fixed `r0`/`r1` clobbers of map mutations, helper
/// calls, and ML calls. Shared by the forward analyses' kill rules.
fn def_mask(insn: &Insn) -> u16 {
    match insn {
        Insn::LdImm { dst, .. }
        | Insn::Mov { dst, .. }
        | Insn::Alu { dst, .. }
        | Insn::AluImm { dst, .. }
        | Insn::LdCtxt { dst, .. }
        | Insn::MapLookup { dst, .. }
        | Insn::ScalarVal { dst, .. }
        | Insn::DpAggregate { dst, .. } => 1u16 << dst.0.min(15),
        Insn::MapUpdate { .. } | Insn::MapDelete { .. } | Insn::Call { .. } => 1,
        Insn::CallMl { .. } => 0b11,
        _ => 0,
    }
}

/// Basic-block view of an action body: block boundaries from the
/// shared leader scan, successor/predecessor edges, reverse postorder
/// from the entry, and immediate dominators (the iterative
/// Cooper–Harvey–Kennedy scheme — fine at action-body sizes).
///
/// This is the infrastructure the loop-aware forward analyses
/// ([`ConstFold`], [`GuardHoist`]) and [`fuse_chain`] share. A back
/// edge is an edge whose target dominates its source; the natural
/// loop of a header is the header plus everything that reaches one of
/// its back-edge sources without passing through the header.
/// Irreducible edges (a forward edge from a block not yet processed
/// in reverse postorder) are handled by the analyses themselves by
/// widening to "unknown", which is always sound.
struct Cfg {
    /// Start instruction of each block, ascending.
    starts: Vec<usize>,
    /// Block index of every instruction.
    block_of: Vec<usize>,
    /// Predecessor blocks (deduplicated).
    preds: Vec<Vec<usize>>,
    /// Blocks reachable from block 0, in reverse postorder.
    rpo: Vec<usize>,
    /// `rpo_pos[b]` = position of `b` in `rpo`; `usize::MAX` when
    /// unreachable.
    rpo_pos: Vec<usize>,
    /// Immediate dominator of each reachable block (`idom[0] == 0`);
    /// `usize::MAX` for unreachable blocks.
    idom: Vec<usize>,
    /// `loop_header[b]` = some back edge targets `b`.
    loop_header: Vec<bool>,
}

impl Cfg {
    fn build(code: &[Insn]) -> Cfg {
        let lead = leaders(code);
        let mut starts = Vec::new();
        let mut block_of = vec![0usize; code.len()];
        for (i, b) in block_of.iter_mut().enumerate() {
            if lead[i] {
                starts.push(i);
            }
            *b = starts.len() - 1;
        }
        let nb = starts.len();
        let block_end = |b: usize| {
            if b + 1 < nb {
                starts[b + 1]
            } else {
                code.len()
            }
        };
        let mut succs = vec![Vec::new(); nb];
        let mut preds: Vec<Vec<usize>> = vec![Vec::new(); nb];
        for (b, su) in succs.iter_mut().enumerate() {
            let last = block_end(b) - 1;
            let insn = &code[last];
            let mut targets: Vec<usize> = Vec::new();
            if let Some(t) = insn.jump_target() {
                if t < code.len() {
                    targets.push(block_of[t]);
                }
                if !matches!(insn, Insn::Jmp { .. }) && last + 1 < code.len() {
                    targets.push(block_of[last + 1]);
                }
            } else if !insn.is_terminator() && last + 1 < code.len() {
                targets.push(block_of[last + 1]);
            }
            for t in targets {
                if !su.contains(&t) {
                    su.push(t);
                    preds[t].push(b);
                }
            }
        }
        // Reverse postorder via an iterative DFS from the entry.
        let mut rpo = Vec::with_capacity(nb);
        let mut state = vec![0u8; nb]; // 0 unseen, 1 on stack, 2 done
        if nb > 0 {
            let mut stack: Vec<(usize, usize)> = vec![(0, 0)];
            state[0] = 1;
            while let Some(top) = stack.last_mut() {
                let b = top.0;
                if top.1 < succs[b].len() {
                    let s = succs[b][top.1];
                    top.1 += 1;
                    if state[s] == 0 {
                        state[s] = 1;
                        stack.push((s, 0));
                    }
                } else {
                    state[b] = 2;
                    rpo.push(b);
                    stack.pop();
                }
            }
            rpo.reverse();
        }
        let mut rpo_pos = vec![usize::MAX; nb];
        for (i, &b) in rpo.iter().enumerate() {
            rpo_pos[b] = i;
        }
        // Immediate dominators, iterated to fixpoint over RPO.
        let mut idom = vec![usize::MAX; nb];
        if nb > 0 {
            idom[0] = 0;
            let mut changed = true;
            while changed {
                changed = false;
                for &b in rpo.iter().skip(1) {
                    let mut new_idom = usize::MAX;
                    for &p in &preds[b] {
                        if idom[p] == usize::MAX {
                            continue;
                        }
                        new_idom = if new_idom == usize::MAX {
                            p
                        } else {
                            Self::intersect(&idom, &rpo_pos, p, new_idom)
                        };
                    }
                    if new_idom != usize::MAX && idom[b] != new_idom {
                        idom[b] = new_idom;
                        changed = true;
                    }
                }
            }
        }
        let mut loop_header = vec![false; nb];
        for (b, hdr) in loop_header.iter_mut().enumerate() {
            *hdr = preds[b]
                .iter()
                .any(|&p| Self::dominates_in(&idom, &rpo_pos, b, p));
        }
        Cfg {
            starts,
            block_of,
            preds,
            rpo,
            rpo_pos,
            idom,
            loop_header,
        }
    }

    /// Nearest common dominator of `a` and `b` (CHK walk).
    fn intersect(idom: &[usize], rpo_pos: &[usize], mut a: usize, mut b: usize) -> usize {
        while a != b {
            while rpo_pos[a] > rpo_pos[b] {
                a = idom[a];
            }
            while rpo_pos[b] > rpo_pos[a] {
                b = idom[b];
            }
        }
        a
    }

    fn dominates_in(idom: &[usize], rpo_pos: &[usize], a: usize, b: usize) -> bool {
        if rpo_pos[b] == usize::MAX || rpo_pos[a] == usize::MAX {
            return false;
        }
        let mut x = b;
        loop {
            if x == a {
                return true;
            }
            if x == 0 || idom[x] == usize::MAX {
                return false;
            }
            x = idom[x];
        }
    }

    /// Whether block `a` dominates block `b`.
    fn dominates(&self, a: usize, b: usize) -> bool {
        Self::dominates_in(&self.idom, &self.rpo_pos, a, b)
    }

    /// One-past-the-end instruction index of block `b`.
    fn block_end(&self, b: usize, code_len: usize) -> usize {
        if b + 1 < self.starts.len() {
            self.starts[b + 1]
        } else {
            code_len
        }
    }

    /// The natural loop of header `h`: `h` plus every block reaching a
    /// back-edge source of `h` without passing through `h`.
    fn loop_blocks(&self, h: usize) -> Vec<usize> {
        let mut inl = vec![false; self.starts.len()];
        inl[h] = true;
        let mut out = vec![h];
        let mut stack: Vec<usize> = self.preds[h]
            .iter()
            .copied()
            .filter(|&p| self.dominates(h, p))
            .collect();
        while let Some(b) = stack.pop() {
            if inl[b] {
                continue;
            }
            inl[b] = true;
            out.push(b);
            for &p in &self.preds[b] {
                if !inl[p] {
                    stack.push(p);
                }
            }
        }
        out
    }

    /// (register def mask, stored fields) across header `h`'s natural
    /// loop — what a loop-aware forward analysis must widen at `h`.
    fn loop_defs(&self, code: &[Insn], h: usize) -> (u16, Vec<FieldId>) {
        let mut mask = 0u16;
        let mut fields: Vec<FieldId> = Vec::new();
        for b in self.loop_blocks(h) {
            for insn in &code[self.starts[b]..self.block_end(b, code.len())] {
                mask |= def_mask(insn);
                if let Insn::StCtxt { field, .. } = insn {
                    if !fields.contains(field) {
                        fields.push(*field);
                    }
                }
            }
        }
        (mask, fields)
    }
}

// ---------------------------------------------------------------------
// Constant folding
// ---------------------------------------------------------------------

/// Forward constant state: per-register known constants plus context
/// fields proven to hold a constant (kept sorted by field id). The
/// field half is what lets folding see through `StCtxt`/`LdCtxt`
/// round-trips — and what [`fuse_chain`] uses to resolve a tail-call
/// target's match key at compile time.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
struct CpState {
    regs: [Option<i64>; 16],
    fields: Vec<(FieldId, i64)>,
}

impl CpState {
    fn field_const(&self, f: FieldId) -> Option<i64> {
        self.fields
            .binary_search_by_key(&f, |&(ff, _)| ff)
            .ok()
            .map(|i| self.fields[i].1)
    }

    fn set_field(&mut self, f: FieldId, v: Option<i64>) {
        match (v, self.fields.binary_search_by_key(&f, |&(ff, _)| ff)) {
            (Some(v), Ok(i)) => self.fields[i].1 = v,
            (Some(v), Err(i)) => self.fields.insert(i, (f, v)),
            (None, Ok(i)) => {
                self.fields.remove(i);
            }
            (None, Err(_)) => {}
        }
    }

    /// Lattice meet: keep only facts both states agree on.
    fn meet(&mut self, other: &CpState) {
        for r in 0..16 {
            if self.regs[r] != other.regs[r] {
                self.regs[r] = None;
            }
        }
        self.fields
            .retain(|&(f, v)| other.field_const(f) == Some(v));
    }

    /// Forward transfer over one instruction. Mirrors the rewrite
    /// rules in [`ConstFold`]; the two must agree or folding is
    /// unsound.
    fn step(&mut self, insn: &Insn) {
        match *insn {
            Insn::LdImm { dst, imm } => self.regs[dst.0 as usize] = Some(imm),
            Insn::Mov { dst, src } => self.regs[dst.0 as usize] = self.regs[src.0 as usize],
            Insn::Alu { op, dst, src } => {
                self.regs[dst.0 as usize] =
                    match (self.regs[dst.0 as usize], self.regs[src.0 as usize]) {
                        (Some(l), Some(r)) => Some(op.eval(l, r)),
                        _ => None,
                    }
            }
            Insn::AluImm { op, dst, imm } => {
                self.regs[dst.0 as usize] = self.regs[dst.0 as usize].map(|l| op.eval(l, imm))
            }
            // A load from a field proven constant is itself constant.
            Insn::LdCtxt { dst, field } => self.regs[dst.0 as usize] = self.field_const(field),
            Insn::StCtxt { field, src } => {
                let v = self.regs[src.0 as usize];
                self.set_field(field, v);
            }
            Insn::MapLookup { dst, .. }
            | Insn::ScalarVal { dst, .. }
            | Insn::DpAggregate { dst, .. } => self.regs[dst.0 as usize] = None,
            // Map mutations and helper calls report through r0.
            Insn::MapUpdate { .. } | Insn::MapDelete { .. } | Insn::Call { .. } => {
                self.regs[0] = None;
            }
            // Class to r0, confidence to r1.
            Insn::CallMl { .. } => {
                self.regs[0] = None;
                self.regs[1] = None;
            }
            Insn::Jmp { .. }
            | Insn::JmpIf { .. }
            | Insn::JmpIfImm { .. }
            | Insn::VectorLdMap { .. }
            | Insn::VectorLdCtxt { .. }
            | Insn::VectorPush { .. }
            | Insn::VectorClear { .. }
            | Insn::MatMul { .. }
            | Insn::VecMap { .. }
            | Insn::Exit
            | Insn::TailCall { .. } => {}
        }
    }
}

/// Per-block constant in-states via a reverse-postorder forward sweep
/// with loop widening: a loop header's in-state is the meet of its
/// forward predecessors, with every register defined (and field
/// stored) anywhere in the header's natural loop widened to unknown.
/// Loop-invariant constants survive the back edge; loop-carried
/// values are dropped. Unreachable blocks get `None`; a reachable but
/// not-yet-processed forward predecessor (irreducible entry) widens
/// the whole state to unknown, which is sound.
fn cp_in_states(code: &[Insn], cfg: &Cfg) -> Vec<Option<CpState>> {
    let nb = cfg.starts.len();
    let mut ins: Vec<Option<CpState>> = vec![None; nb];
    let mut outs: Vec<Option<CpState>> = vec![None; nb];
    for (pos, &b) in cfg.rpo.iter().enumerate() {
        let mut st = if pos == 0 {
            CpState::default()
        } else {
            let mut acc: Option<CpState> = None;
            let mut widen_all = false;
            for &p in &cfg.preds[b] {
                if cfg.rpo_pos[p] == usize::MAX || cfg.dominates(b, p) {
                    // Unreachable pred contributes nothing; a back
                    // edge is accounted for by header widening below.
                    continue;
                }
                match &outs[p] {
                    Some(o) => match &mut acc {
                        Some(a) => a.meet(o),
                        None => acc = Some(o.clone()),
                    },
                    None => widen_all = true,
                }
            }
            if widen_all {
                CpState::default()
            } else {
                acc.unwrap_or_default()
            }
        };
        if cfg.loop_header[b] {
            let (defs, stored) = cfg.loop_defs(code, b);
            for r in 0..16 {
                if defs & (1 << r) != 0 {
                    st.regs[r] = None;
                }
            }
            st.fields.retain(|&(f, _)| !stored.contains(&f));
        }
        ins[b] = Some(st.clone());
        for insn in &code[cfg.starts[b]..cfg.block_end(b, code.len())] {
            st.step(insn);
        }
        outs[b] = Some(st);
    }
    ins
}

/// Loop-aware constant propagation and folding over the block-level
/// constant analysis above. All rewrites are in-place (1:1), so this
/// pass never changes the instruction count; the dead definitions it
/// strands are collected by [`DeadCode`] and the decided branches by
/// [`BranchFold`].
pub struct ConstFold;

impl ConstFold {
    /// Constant-evaluates a conditional against the tracked state:
    /// `Some(taken)` when decidable.
    fn decide(cmp: CmpOp, lhs: Option<i64>, rhs: Option<i64>) -> Option<bool> {
        match (lhs, rhs) {
            (Some(l), Some(r)) => Some(cmp.eval(l, r)),
            _ => None,
        }
    }
}

impl Pass for ConstFold {
    fn name(&self) -> &'static str {
        "const-fold"
    }

    fn run(&self, code: &mut Vec<Insn>) -> bool {
        if code.is_empty() {
            return false;
        }
        let cfg = Cfg::build(code);
        let ins = cp_in_states(code, &cfg);
        let mut changed = false;
        // Indices are block offsets into `code`, rewritten in place.
        #[allow(clippy::needless_range_loop)]
        for b in 0..cfg.starts.len() {
            // Unreachable blocks are BranchFold's job.
            let Some(block_in) = &ins[b] else { continue };
            let mut st = block_in.clone();
            let end = cfg.block_end(b, code.len());
            for i in cfg.starts[b]..end {
                let next = i + 1;
                match code[i] {
                    Insn::Mov { dst, src } => {
                        if let Some(v) = st.regs[src.0 as usize] {
                            code[i] = Insn::LdImm { dst, imm: v };
                            changed = true;
                        }
                    }
                    // A load from a field the analysis proved constant
                    // folds to the constant itself — this is what
                    // makes a caller-written match key visible to the
                    // inlined callee after chain fusion.
                    Insn::LdCtxt { dst, field } => {
                        if let Some(v) = st.field_const(field) {
                            code[i] = Insn::LdImm { dst, imm: v };
                            changed = true;
                        }
                    }
                    Insn::Alu { op, dst, src } => {
                        if let Some(r) = st.regs[src.0 as usize] {
                            if let Some(l) = st.regs[dst.0 as usize] {
                                code[i] = Insn::LdImm {
                                    dst,
                                    imm: op.eval(l, r),
                                };
                            } else {
                                code[i] = Insn::AluImm { op, dst, imm: r };
                            }
                            changed = true;
                        }
                    }
                    Insn::AluImm { op, dst, imm } => {
                        if let Some(l) = st.regs[dst.0 as usize] {
                            code[i] = Insn::LdImm {
                                dst,
                                imm: op.eval(l, imm),
                            };
                            changed = true;
                        }
                    }
                    Insn::JmpIf {
                        cmp,
                        lhs,
                        rhs,
                        target,
                    } => {
                        let decided = if lhs == rhs {
                            // Same register on both sides: reflexive.
                            Some(cmp.eval(0, 0))
                        } else {
                            Self::decide(cmp, st.regs[lhs.0 as usize], st.regs[rhs.0 as usize])
                        };
                        match decided {
                            Some(true) => {
                                code[i] = Insn::Jmp { target };
                                changed = true;
                            }
                            Some(false) => {
                                code[i] = Insn::Jmp { target: next };
                                changed = true;
                            }
                            None => {
                                if let Some(r) = st.regs[rhs.0 as usize] {
                                    code[i] = Insn::JmpIfImm {
                                        cmp,
                                        lhs,
                                        imm: r,
                                        target,
                                    };
                                    changed = true;
                                }
                            }
                        }
                    }
                    Insn::JmpIfImm {
                        cmp,
                        lhs,
                        imm,
                        target,
                    } => match Self::decide(cmp, st.regs[lhs.0 as usize], Some(imm)) {
                        Some(true) => {
                            code[i] = Insn::Jmp { target };
                            changed = true;
                        }
                        Some(false) => {
                            code[i] = Insn::Jmp { target: next };
                            changed = true;
                        }
                        None => {}
                    },
                    _ => {}
                }
                // Advance over the (possibly rewritten) instruction;
                // rewrites are value-preserving so the block in-states
                // computed on the original code stay sound.
                st.step(&code[i]);
            }
        }
        changed
    }
}

// ---------------------------------------------------------------------
// Guard hoisting (dominated-guard redundancy elimination)
// ---------------------------------------------------------------------

/// A branch-derived predicate known to hold at a program point:
/// `cmp.eval(lhs, rhs) == truth`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct GuardFact {
    lhs: Reg,
    cmp: CmpOp,
    rhs: GuardRhs,
    truth: bool,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum GuardRhs {
    Imm(i64),
    Reg(Reg),
}

impl GuardFact {
    /// Whether the fact reads any register in `defs` (and is thus
    /// killed by a definition of one).
    fn mentions(&self, defs: u16) -> bool {
        defs & (1 << self.lhs.0.min(15)) != 0
            || matches!(self.rhs, GuardRhs::Reg(r) if defs & (1 << r.0.min(15)) != 0)
    }
}

/// `!cmp`: the comparison computing the logical negation.
fn negate_cmp(cmp: CmpOp) -> CmpOp {
    match cmp {
        CmpOp::Eq => CmpOp::Ne,
        CmpOp::Ne => CmpOp::Eq,
        CmpOp::Lt => CmpOp::Ge,
        CmpOp::Ge => CmpOp::Lt,
        CmpOp::Le => CmpOp::Gt,
        CmpOp::Gt => CmpOp::Le,
    }
}

/// Cap on tracked facts per program point; oldest facts are dropped
/// first. Real guard chains are short — the cap only bounds
/// pathological generated bodies.
const MAX_GUARD_FACTS: usize = 24;

fn push_fact(facts: &mut Vec<GuardFact>, f: GuardFact) {
    if facts.contains(&f) {
        return;
    }
    if facts.len() >= MAX_GUARD_FACTS {
        facts.remove(0);
    }
    facts.push(f);
}

/// Decides a conditional from the fact set: an exact match yields its
/// recorded truth, a negated-comparison match the opposite.
fn decide_from_facts(facts: &[GuardFact], lhs: Reg, cmp: CmpOp, rhs: GuardRhs) -> Option<bool> {
    for f in facts {
        if f.lhs == lhs && f.rhs == rhs {
            if f.cmp == cmp {
                return Some(f.truth);
            }
            if f.cmp == negate_cmp(cmp) {
                return Some(!f.truth);
            }
        }
    }
    None
}

/// Per-block guard-fact in-states: an edge-sensitive forward sweep in
/// reverse postorder. A conditional's taken edge carries its
/// predicate as a true fact and the fall-through edge as a false
/// fact; definitions kill facts over their registers; the meet is set
/// intersection. Loop headers widen like [`cp_in_states`]: facts over
/// registers defined inside the natural loop are dropped, so
/// loop-invariant guards survive the back edge.
fn guard_in_states(code: &[Insn], cfg: &Cfg) -> Vec<Option<Vec<GuardFact>>> {
    let nb = cfg.starts.len();
    let mut ins: Vec<Option<Vec<GuardFact>>> = vec![None; nb];
    // Per-block (taken-edge, fall-through-edge) out states.
    let mut outs: Vec<Option<(Vec<GuardFact>, Vec<GuardFact>)>> = vec![None; nb];
    // Block the last instruction jumps to / falls through to.
    let edge_blocks = |b: usize| -> (Option<usize>, Option<usize>) {
        let last = cfg.block_end(b, code.len()) - 1;
        let insn = &code[last];
        let jt = insn
            .jump_target()
            .filter(|&t| t < code.len())
            .map(|t| cfg.block_of[t]);
        let ft =
            if insn.is_terminator() || matches!(insn, Insn::Jmp { .. }) || last + 1 >= code.len() {
                None
            } else {
                Some(cfg.block_of[last + 1])
            };
        (jt, ft)
    };
    for (pos, &b) in cfg.rpo.iter().enumerate() {
        let mut facts: Vec<GuardFact> = if pos == 0 {
            Vec::new()
        } else {
            let mut acc: Option<Vec<GuardFact>> = None;
            let mut widen_all = false;
            for &p in &cfg.preds[b] {
                if cfg.rpo_pos[p] == usize::MAX || cfg.dominates(b, p) {
                    continue;
                }
                let contrib: Vec<GuardFact> = match &outs[p] {
                    Some((taken, fall)) => {
                        let (jt, ft) = edge_blocks(p);
                        match (jt == Some(b), ft == Some(b)) {
                            // Both edges land here (target == next):
                            // only facts common to both hold.
                            (true, true) => {
                                taken.iter().filter(|f| fall.contains(f)).copied().collect()
                            }
                            (true, false) => taken.clone(),
                            (false, true) => fall.clone(),
                            (false, false) => Vec::new(),
                        }
                    }
                    None => {
                        widen_all = true;
                        Vec::new()
                    }
                };
                if widen_all {
                    break;
                }
                match &mut acc {
                    Some(a) => a.retain(|f| contrib.contains(f)),
                    None => acc = Some(contrib),
                }
            }
            if widen_all {
                Vec::new()
            } else {
                acc.unwrap_or_default()
            }
        };
        if cfg.loop_header[b] {
            let (defs, _) = cfg.loop_defs(code, b);
            facts.retain(|f| !f.mentions(defs));
        }
        ins[b] = Some(facts.clone());
        let end = cfg.block_end(b, code.len());
        for insn in &code[cfg.starts[b]..end] {
            let defs = def_mask(insn);
            if defs != 0 {
                facts.retain(|f| !f.mentions(defs));
            }
        }
        let out = match code[end - 1] {
            Insn::JmpIf { cmp, lhs, rhs, .. } if lhs != rhs => {
                let mut taken = facts.clone();
                let mut fall = facts;
                push_fact(
                    &mut taken,
                    GuardFact {
                        lhs,
                        cmp,
                        rhs: GuardRhs::Reg(rhs),
                        truth: true,
                    },
                );
                push_fact(
                    &mut fall,
                    GuardFact {
                        lhs,
                        cmp,
                        rhs: GuardRhs::Reg(rhs),
                        truth: false,
                    },
                );
                (taken, fall)
            }
            Insn::JmpIfImm { cmp, lhs, imm, .. } => {
                let mut taken = facts.clone();
                let mut fall = facts;
                push_fact(
                    &mut taken,
                    GuardFact {
                        lhs,
                        cmp,
                        rhs: GuardRhs::Imm(imm),
                        truth: true,
                    },
                );
                push_fact(
                    &mut fall,
                    GuardFact {
                        lhs,
                        cmp,
                        rhs: GuardRhs::Imm(imm),
                        truth: false,
                    },
                );
                (taken, fall)
            }
            _ => (facts.clone(), facts),
        };
        outs[b] = Some(out);
    }
    ins
}

/// Dominator-based guard redundancy elimination. A conditional whose
/// predicate is implied by guards on every path from the entry — i.e.
/// decided by a dominating check whose operands are not redefined in
/// between — is rewritten into an unconditional `Jmp`, leaving the
/// earliest dominating check as the single guard for the region
/// ("hoisting" by deciding dominated duplicates). Loop-invariant
/// guards inside loop bodies are the canonical win: the pre-loop
/// check survives, the per-iteration copy folds away. All rewrites
/// are 1:1; [`BranchFold`] cleans up the decided jumps.
pub struct GuardHoist;

impl Pass for GuardHoist {
    fn name(&self) -> &'static str {
        "guard-hoist"
    }

    fn run(&self, code: &mut Vec<Insn>) -> bool {
        if code.is_empty() {
            return false;
        }
        let cfg = Cfg::build(code);
        let ins = guard_in_states(code, &cfg);
        let mut changed = false;
        // Indices are block offsets into `code`, rewritten in place.
        #[allow(clippy::needless_range_loop)]
        for b in 0..cfg.starts.len() {
            let Some(block_in) = &ins[b] else { continue };
            let mut facts = block_in.clone();
            let end = cfg.block_end(b, code.len());
            for i in cfg.starts[b]..end {
                let decided =
                    match code[i] {
                        Insn::JmpIf {
                            cmp,
                            lhs,
                            rhs,
                            target,
                        } if lhs != rhs => decide_from_facts(&facts, lhs, cmp, GuardRhs::Reg(rhs))
                            .map(|t| (t, target)),
                        Insn::JmpIfImm {
                            cmp,
                            lhs,
                            imm,
                            target,
                        } => decide_from_facts(&facts, lhs, cmp, GuardRhs::Imm(imm))
                            .map(|t| (t, target)),
                        _ => None,
                    };
                if let Some((truth, target)) = decided {
                    code[i] = Insn::Jmp {
                        target: if truth { target } else { i + 1 },
                    };
                    changed = true;
                }
                let defs = def_mask(&code[i]);
                if defs != 0 {
                    facts.retain(|f| !f.mentions(defs));
                }
            }
        }
        changed
    }
}

// ---------------------------------------------------------------------
// Context-access specialization
// ---------------------------------------------------------------------

/// Per-block context-access specialization: store-to-load forwarding
/// and redundant-load CSE. Sound because within an action body only
/// `StCtxt` mutates the context — helpers, map ops, and ML calls never
/// touch it — so a register holding a field's value stays valid until
/// that register is redefined or the field is stored again.
pub struct Specialize;

impl Pass for Specialize {
    fn name(&self) -> &'static str {
        "specialize"
    }

    fn run(&self, code: &mut Vec<Insn>) -> bool {
        let lead = leaders(code);
        let mut changed = false;
        // avail[k] = (field, reg): `reg` currently holds `ctxt[field]`.
        let mut avail: Vec<(FieldId, Reg)> = Vec::new();
        let kill_reg = |avail: &mut Vec<(FieldId, Reg)>, r: Reg| {
            avail.retain(|&(_, held)| held != r);
        };
        let kill_field = |avail: &mut Vec<(FieldId, Reg)>, f: FieldId| {
            avail.retain(|&(field, _)| field != f);
        };
        for i in 0..code.len() {
            if lead[i] {
                avail.clear();
            }
            match code[i] {
                Insn::LdCtxt { dst, field } => {
                    if let Some(&(_, held)) = avail.iter().find(|&&(f, _)| f == field) {
                        // The value is already in a register: forward
                        // it. A reload into the holding register
                        // becomes a self-move, which DeadCode removes.
                        code[i] = Insn::Mov { dst, src: held };
                        changed = true;
                        kill_reg(&mut avail, dst);
                        if held != dst {
                            avail.push((field, dst));
                        } else {
                            avail.push((field, held));
                        }
                    } else {
                        kill_reg(&mut avail, dst);
                        avail.push((field, dst));
                    }
                }
                Insn::StCtxt { field, src } => {
                    kill_field(&mut avail, field);
                    avail.push((field, src));
                }
                // Register definitions invalidate what they held.
                Insn::LdImm { dst, .. }
                | Insn::Mov { dst, .. }
                | Insn::Alu { dst, .. }
                | Insn::AluImm { dst, .. }
                | Insn::MapLookup { dst, .. }
                | Insn::ScalarVal { dst, .. }
                | Insn::DpAggregate { dst, .. } => kill_reg(&mut avail, dst),
                Insn::MapUpdate { .. } | Insn::MapDelete { .. } | Insn::Call { .. } => {
                    kill_reg(&mut avail, Reg(0));
                }
                Insn::CallMl { .. } => {
                    kill_reg(&mut avail, Reg(0));
                    kill_reg(&mut avail, Reg(1));
                }
                Insn::Jmp { .. }
                | Insn::JmpIf { .. }
                | Insn::JmpIfImm { .. }
                | Insn::VectorLdMap { .. }
                | Insn::VectorLdCtxt { .. }
                | Insn::VectorPush { .. }
                | Insn::VectorClear { .. }
                | Insn::MatMul { .. }
                | Insn::VecMap { .. }
                | Insn::Exit
                | Insn::TailCall { .. } => {}
            }
        }
        changed
    }
}

// ---------------------------------------------------------------------
// Dead-code elimination
// ---------------------------------------------------------------------

/// Global backward liveness over scalar and vector registers plus
/// per-block dead-store elimination for `StCtxt`.
pub struct DeadCode;

/// Liveness state: bit r of `regs` = scalar register r live, bit v of
/// `vregs` = vector register v live.
#[derive(Clone, Copy, PartialEq, Eq, Default)]
struct Live {
    regs: u16,
    vregs: u8,
}

impl Live {
    fn union(self, other: Live) -> Live {
        Live {
            regs: self.regs | other.regs,
            vregs: self.vregs | other.vregs,
        }
    }
    fn reg(&self, r: Reg) -> bool {
        self.regs & (1 << r.0.min(15)) != 0
    }
    fn vreg(&self, v: VReg) -> bool {
        self.vregs & (1 << v.0.min(7)) != 0
    }
    fn set_reg(&mut self, r: Reg) {
        self.regs |= 1 << r.0.min(15);
    }
    fn clear_reg(&mut self, r: Reg) {
        self.regs &= !(1 << r.0.min(15));
    }
    fn set_vreg(&mut self, v: VReg) {
        self.vregs |= 1 << v.0.min(7);
    }
    fn clear_vreg(&mut self, v: VReg) {
        self.vregs &= !(1 << v.0.min(7));
    }
}

impl DeadCode {
    /// Backward transfer: `live` is live-out, returns live-in.
    fn transfer(insn: &Insn, live: Live) -> Live {
        let mut l = live;
        match insn {
            Insn::LdImm { dst, .. } => l.clear_reg(*dst),
            Insn::Mov { dst, src } => {
                l.clear_reg(*dst);
                l.set_reg(*src);
            }
            Insn::LdCtxt { dst, .. } => l.clear_reg(*dst),
            Insn::StCtxt { src, .. } => l.set_reg(*src),
            Insn::Alu { dst, src, .. } => {
                // dst is both operand and destination.
                l.set_reg(*dst);
                l.set_reg(*src);
            }
            Insn::AluImm { dst, .. } => l.set_reg(*dst),
            Insn::Jmp { .. } => {}
            Insn::JmpIf { lhs, rhs, .. } => {
                l.set_reg(*lhs);
                l.set_reg(*rhs);
            }
            Insn::JmpIfImm { lhs, .. } => l.set_reg(*lhs),
            Insn::MapLookup { dst, key, .. } => {
                l.clear_reg(*dst);
                l.set_reg(*key);
            }
            Insn::MapUpdate { key, value, .. } => {
                l.clear_reg(Reg(0));
                l.set_reg(*key);
                l.set_reg(*value);
            }
            Insn::MapDelete { key, .. } => {
                l.clear_reg(Reg(0));
                l.set_reg(*key);
            }
            Insn::VectorLdMap { dst, .. } | Insn::VectorLdCtxt { dst, .. } => l.clear_vreg(*dst),
            Insn::VectorPush { dst, src } => {
                l.set_vreg(*dst);
                l.set_reg(*src);
            }
            Insn::VectorClear { dst } => l.clear_vreg(*dst),
            Insn::MatMul { dst, src, .. } => {
                l.clear_vreg(*dst);
                l.set_vreg(*src);
            }
            Insn::VecMap { dst, .. } => l.set_vreg(*dst),
            Insn::ScalarVal { dst, src, .. } => {
                l.clear_reg(*dst);
                l.set_vreg(*src);
            }
            Insn::CallMl { src, .. } => {
                l.clear_reg(Reg(0));
                l.clear_reg(Reg(1));
                l.set_vreg(*src);
            }
            Insn::Call { .. } => {
                // Helpers return in r0 and may read r2..r4.
                l.clear_reg(Reg(0));
                l.set_reg(Reg(2));
                l.set_reg(Reg(3));
                l.set_reg(Reg(4));
            }
            Insn::DpAggregate { dst, .. } => l.clear_reg(*dst),
            // The verdict is read from r0 at both exits.
            Insn::Exit | Insn::TailCall { .. } => {
                l = Live::default();
                l.set_reg(Reg(0));
            }
        }
        l
    }

    /// Whether removing this instruction is observable beyond its
    /// register definition. Side-effecting or possibly-faulting
    /// instructions stay: map ops (LRU lookups touch recency), vector
    /// pushes (capacity fault), `MatMul`/`VecMap`/`CallMl` (shape
    /// faults, guard counters), helpers and `DpAggregate` (RNG stream,
    /// effects, privacy ledger).
    fn pure_def(insn: &Insn) -> Option<PureDef> {
        match insn {
            Insn::LdImm { dst, .. }
            | Insn::Mov { dst, .. }
            | Insn::LdCtxt { dst, .. }
            | Insn::Alu { dst, .. }
            | Insn::AluImm { dst, .. }
            | Insn::ScalarVal { dst, .. } => Some(PureDef::Scalar(*dst)),
            Insn::VectorClear { dst } | Insn::VectorLdCtxt { dst, .. } => {
                Some(PureDef::Vector(*dst))
            }
            _ => None,
        }
    }
}

/// What a pure instruction defines (for dead-write removal).
enum PureDef {
    Scalar(Reg),
    Vector(VReg),
}

impl Pass for DeadCode {
    fn name(&self) -> &'static str {
        "dead-code"
    }

    fn run(&self, code: &mut Vec<Insn>) -> bool {
        if code.is_empty() {
            return false;
        }
        let n = code.len();
        // Backward liveness to fixpoint (handles back edges).
        let mut live_in = vec![Live::default(); n];
        loop {
            let mut stable = true;
            for i in (0..n).rev() {
                let insn = &code[i];
                let mut out = Live::default();
                if !insn.is_terminator() {
                    match insn {
                        Insn::Jmp { target } => {
                            if *target < n {
                                out = out.union(live_in[*target]);
                            }
                        }
                        Insn::JmpIf { target, .. } | Insn::JmpIfImm { target, .. } => {
                            if *target < n {
                                out = out.union(live_in[*target]);
                            }
                            if i + 1 < n {
                                out = out.union(live_in[i + 1]);
                            }
                        }
                        _ => {
                            if i + 1 < n {
                                out = out.union(live_in[i + 1]);
                            }
                        }
                    }
                }
                let inn = Self::transfer(insn, out);
                if inn != live_in[i] {
                    live_in[i] = inn;
                    stable = false;
                }
            }
            if stable {
                break;
            }
        }
        // live_out[i] recomputed from successors for the removal scan.
        let live_out = |i: usize| -> Live {
            let insn = &code[i];
            let mut out = Live::default();
            if !insn.is_terminator() {
                match insn {
                    Insn::Jmp { target } => {
                        if *target < n {
                            out = out.union(live_in[*target]);
                        }
                    }
                    Insn::JmpIf { target, .. } | Insn::JmpIfImm { target, .. } => {
                        if *target < n {
                            out = out.union(live_in[*target]);
                        }
                        if i + 1 < n {
                            out = out.union(live_in[i + 1]);
                        }
                    }
                    _ => {
                        if i + 1 < n {
                            out = out.union(live_in[i + 1]);
                        }
                    }
                }
            }
            out
        };
        let mut keep = vec![true; n];
        for i in 0..n {
            // A self-move is a no-op regardless of liveness.
            if let Insn::Mov { dst, src } = &code[i] {
                if dst == src {
                    keep[i] = false;
                    continue;
                }
            }
            if let Some(def) = DeadCode::pure_def(&code[i]) {
                let out = live_out(i);
                let dead = match def {
                    PureDef::Scalar(r) => !out.reg(r),
                    PureDef::Vector(v) => !out.vreg(v),
                };
                if dead {
                    keep[i] = false;
                }
            }
        }
        // Dead context stores: a StCtxt overwritten by another StCtxt
        // to the same field later in the same block, with no read of
        // that field (LdCtxt or a VectorLdCtxt window covering it) in
        // between. Stores that survive to the block end are observable
        // (at action exit, or by later blocks) and stay.
        let lead = leaders(code);
        for i in 0..n {
            let Insn::StCtxt { field, .. } = code[i] else {
                continue;
            };
            let mut j = i + 1;
            while j < n && !lead[j] {
                match code[j] {
                    Insn::StCtxt { field: f2, .. } if f2 == field => {
                        keep[i] = false;
                        break;
                    }
                    Insn::LdCtxt { field: f2, .. } if f2 == field => break,
                    Insn::VectorLdCtxt { base, len, .. }
                        if field.0 >= base.0 && (field.0 as u32) < base.0 as u32 + len as u32 =>
                    {
                        break;
                    }
                    ref insn if insn.is_terminator() || insn.jump_target().is_some() => break,
                    _ => {}
                }
                j += 1;
            }
        }
        compact(code, &keep)
    }
}

// ---------------------------------------------------------------------
// Branch folding and unreachable-code elimination
// ---------------------------------------------------------------------

/// Jump threading, jump-to-next removal, and unreachable-code
/// elimination with jump-target rewriting.
pub struct BranchFold;

impl BranchFold {
    /// Follows a chain of unconditional jumps from `start`, returning
    /// the final target. Cycle-guarded (a `Jmp` cycle is a verified
    /// back edge; threading stops rather than spinning).
    fn thread(code: &[Insn], start: usize) -> usize {
        let mut t = start;
        let mut hops = 0usize;
        while hops <= code.len() {
            match code.get(t) {
                Some(Insn::Jmp { target }) if *target != t => {
                    t = *target;
                    hops += 1;
                }
                _ => break,
            }
        }
        t
    }
}

impl Pass for BranchFold {
    fn name(&self) -> &'static str {
        "branch-fold"
    }

    fn run(&self, code: &mut Vec<Insn>) -> bool {
        let n = code.len();
        let mut changed = false;
        // 1. Jump threading against a snapshot of the original code,
        //    so rewrite order cannot matter. A jump that lands on a
        //    terminator becomes that terminator (Exit / TailCall are
        //    pure control, safe to duplicate).
        let snapshot = code.clone();
        for i in 0..n {
            let Some(t0) = snapshot[i].jump_target() else {
                continue;
            };
            let t = Self::thread(&snapshot, t0);
            match code[i] {
                Insn::Jmp { .. } => {
                    if let Some(term @ (Insn::Exit | Insn::TailCall { .. })) = snapshot.get(t) {
                        code[i] = term.clone();
                        changed = true;
                    } else if t != t0 {
                        code[i] = Insn::Jmp { target: t };
                        changed = true;
                    }
                }
                Insn::JmpIf { .. } | Insn::JmpIfImm { .. } if t != t0 => {
                    match &mut code[i] {
                        Insn::JmpIf { target, .. } | Insn::JmpIfImm { target, .. } => {
                            *target = t;
                        }
                        _ => unreachable!(),
                    }
                    changed = true;
                }
                _ => {}
            }
        }
        // 2. Jumps to the immediately following instruction are no-ops
        //    (comparisons are side-effect free).
        let mut keep = vec![true; n];
        for (i, insn) in code.iter().enumerate() {
            if let Some(t) = insn.jump_target() {
                if t == i + 1 {
                    keep[i] = false;
                }
            }
        }
        // 3. Unreachable-code elimination: forward reachability from
        //    instruction 0 over the post-threading CFG, treating
        //    removed jump-to-next instructions as fall-through.
        let mut reach = vec![false; n];
        let mut stack = vec![0usize];
        while let Some(i) = stack.pop() {
            if i >= n || reach[i] {
                continue;
            }
            reach[i] = true;
            let insn = &code[i];
            if !keep[i] {
                stack.push(i + 1);
                continue;
            }
            if insn.is_terminator() {
                continue;
            }
            match insn {
                Insn::Jmp { target } => stack.push(*target),
                Insn::JmpIf { target, .. } | Insn::JmpIfImm { target, .. } => {
                    stack.push(*target);
                    stack.push(i + 1);
                }
                _ => stack.push(i + 1),
            }
        }
        for i in 0..n {
            if !reach[i] {
                keep[i] = false;
            }
        }
        compact(code, &keep) || changed
    }
}

// ---------------------------------------------------------------------
// Tail-call match-chain fusion
// ---------------------------------------------------------------------

/// Hard cap on the number of chain links fused into one body. Mirrors
/// the verifier's static tail-chain bound (`MAX_TAIL_CHAIN`): a
/// verified chain can never be longer, so the cap is never the reason
/// a verified chain only partially fuses.
pub const MAX_FUSE_DEPTH: usize = 8;

/// Size budget for a fused body, measured before the post-splice
/// cleanup passes run. Fusion stops (keeping the chain fused so far)
/// rather than splice past this.
pub const MAX_FUSED_INSNS: usize = 384;

/// One statically resolved link of a fused chain: everything the
/// machine needs to synthesize the per-table bookkeeping (hit/miss
/// counters, tail-call counters, intermediate verdicts) the collapsed
/// chain no longer performs at run time.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FusedStepPlan {
    /// The calling body's verdict (`r0`) at its tail-call site —
    /// provably constant, so the machine can emit the intermediate
    /// verdict the unfused chain would have pushed.
    pub caller_verdict: i64,
    /// The table the tail call cascaded into.
    pub table: u16,
    /// Resolved entry index at fusion time (`None` = miss/default
    /// path). Diagnostics only; validity is generation-stamped by the
    /// machine, not re-checked per fire.
    pub entry: Option<u32>,
    /// The action the resolved lookup dispatched (`None` = miss with
    /// no default: the chain ends after this table's bookkeeping).
    pub action: Option<u16>,
    /// The argument the resolved dispatch carried (an entry's `arg`,
    /// or 0 on the miss/default path). Together with `action` this is
    /// the dispatch identity baked into the fused body — the machine's
    /// cheap revalidation path compares it against a re-resolution
    /// after entry churn.
    pub arg: i64,
}

/// The result of fusing a tail-call chain rooted at one action.
#[derive(Clone, Debug)]
pub struct FusePlan {
    /// The fused, re-optimized body (caller + inlined callees).
    pub action: Action,
    /// The statically resolved links, in chain order.
    pub steps: Vec<FusedStepPlan>,
    /// Per step, the constant key the link's lookup resolved with —
    /// `None` when the table was empty at fusion time (resolved by
    /// emptiness, key irrelevant). Kept so the machine can re-resolve
    /// a mutated link against live entries and keep the compiled body
    /// when the dispatch it baked in is unchanged.
    pub step_keys: Vec<Option<Vec<u64>>>,
}

/// Whether a callee body may be inlined into a fused chain without
/// changing abort semantics. In the unfused chain a callee fault
/// aborts only the callee — the caller's verdict and effects already
/// landed. A fused body aborts as a whole, so callees containing
/// possibly-faulting instructions (vector capacity, tensor shape,
/// model arity, privacy-budget exhaustion) are not inlined. Fuel
/// exhaustion is excluded by construction: the machine only installs
/// a fused body whose re-verified worst case fits the chain's
/// combined budget.
fn fusable_callee(callee: &Action) -> bool {
    !callee.code.iter().any(|i| {
        matches!(
            i,
            Insn::VectorPush { .. }
                | Insn::MatMul { .. }
                | Insn::VecMap { .. }
                | Insn::CallMl { .. }
                | Insn::DpAggregate { .. }
        )
    })
}

/// The constant state just before instruction `site`.
fn cp_state_at(code: &[Insn], site: usize) -> Option<CpState> {
    let cfg = Cfg::build(code);
    let ins = cp_in_states(code, &cfg);
    let b = *cfg.block_of.get(site)?;
    let mut st = ins[b].clone()?;
    for insn in &code[cfg.starts[b]..site] {
        st.step(insn);
    }
    Some(st)
}

/// Splices `callee` into `cur` at the tail-call site: the `TailCall`
/// becomes a `Jmp` to an appended prologue that re-establishes the
/// callee's entry state (all scalar registers zeroed, the resolved
/// entry's `arg` in `r9`, all vector registers cleared — dead ones are
/// collected by the cleanup passes) followed by the callee body with
/// jump targets shifted. Loop bounds combine as the max: the verifier
/// re-derives the true worst case from the fused CFG.
fn splice(cur: &Action, site: usize, callee: &Action, arg: i64) -> Action {
    let mut code = cur.code.clone();
    code[site] = Insn::Jmp { target: code.len() };
    for r in 0..NUM_REGS {
        code.push(Insn::LdImm {
            dst: Reg(r),
            imm: if Reg(r) == ARG_REG { arg } else { 0 },
        });
    }
    for v in 0..NUM_VREGS {
        code.push(Insn::VectorClear { dst: VReg(v) });
    }
    let body_off = code.len();
    for insn in &callee.code {
        let mut insn = insn.clone();
        if let Insn::Jmp { target } | Insn::JmpIf { target, .. } | Insn::JmpIfImm { target, .. } =
            &mut insn
        {
            *target += body_off;
        }
        code.push(insn);
    }
    let loop_bound = match (cur.loop_bound, callee.loop_bound) {
        (None, None) => None,
        (a, b) => Some(a.unwrap_or(0).max(b.unwrap_or(0))),
    };
    Action {
        name: cur.name.clone(),
        code,
        loop_bound,
    }
}

/// Tail-call match-chain fusion: collapses a statically resolvable
/// match chain rooted at `action` into one body.
///
/// Per link, three conditions must hold on the optimized body so far:
/// the body has exactly one `TailCall` (post-optimization all code is
/// reachable), the caller's verdict `r0` at that site is provably
/// constant (so the machine can synthesize the intermediate verdict
/// the unfused chain would push), and the target table's lookup is
/// statically resolvable — the table is empty (miss/default path
/// regardless of key), or every key field was stored a provable
/// constant on the way to the call. A resolved hit inlines the
/// entry's action with the entry's `arg`; a resolved miss inlines the
/// default action (or terminates the chain with an `Exit` when there
/// is none). The fused body is re-optimized after every splice, which
/// is what folds the next link's key stores into resolvable
/// constants. Fusion stops at the first unresolvable link (the
/// trailing `TailCall` stays and the machine redirects at run time),
/// at a callee [`fusable_callee`] rejects, or at the depth/size
/// budget.
///
/// Resolution bakes the *current* table contents into code: the
/// caller owns invalidation. The machine stamps every plan with its
/// table generation and re-specializes on any ctrl mutation
/// (`InsertEntry` / `RemoveEntry` / `UpdateModel` / `SetOptLevel`);
/// a stale stamp falls back to the unfused body.
///
/// Returns `None` when nothing fused (no resolvable link).
pub fn fuse_chain(
    action: &Action,
    actions: &[Action],
    tables: &[Table],
    level: OptLevel,
) -> Option<FusePlan> {
    if level == OptLevel::O0 {
        return None;
    }
    // Optimization never introduces a `TailCall`, so a body without
    // one can never fuse — skip the pipeline run entirely. This keeps
    // re-specialization after ctrl churn from re-optimizing every
    // leaf action just to rediscover there is no chain to collapse.
    if !action
        .code
        .iter()
        .any(|i| matches!(i, Insn::TailCall { .. }))
    {
        return None;
    }
    let mut cur = optimize(action, level).action;
    let mut steps: Vec<FusedStepPlan> = Vec::new();
    let mut step_keys: Vec<Option<Vec<u64>>> = Vec::new();
    while steps.len() < MAX_FUSE_DEPTH {
        // Post-optimization all remaining code is reachable, so a
        // plain scan finds the live tail-call sites.
        let mut sites = cur
            .code
            .iter()
            .enumerate()
            .filter_map(|(i, insn)| match insn {
                Insn::TailCall { table } => Some((i, table.0 as usize)),
                _ => None,
            });
        let Some((site, ti)) = sites.next() else {
            break;
        };
        if sites.next().is_some() {
            break; // More than one live chain continuation.
        }
        let Some(st) = cp_state_at(&cur.code, site) else {
            break;
        };
        let Some(caller_verdict) = st.regs[0] else {
            break;
        };
        let Some(t) = tables.get(ti) else { break };
        // Resolve the lookup this tail call would perform.
        let (entry, dispatch, key) = if t.is_empty() {
            (None, t.def().default_action.map(|a| (a, 0i64)), None)
        } else {
            let mut key = Vec::with_capacity(t.def().key_fields.len());
            for f in &t.def().key_fields {
                match st.field_const(*f) {
                    Some(v) => key.push(v as u64),
                    None => break,
                }
            }
            if key.len() != t.def().key_fields.len() {
                break; // Key not statically known.
            }
            match t.resolve_indexed(&key) {
                Some((ei, e)) => (Some(ei as u32), Some((e.action, e.arg)), Some(key)),
                None => (None, t.def().default_action.map(|a| (a, 0i64)), Some(key)),
            }
        };
        match dispatch {
            None => {
                // Miss with no default: the chain ends. The tail call
                // still performed its table bookkeeping, then the
                // pipeline finished with the caller's verdict.
                let mut code = cur.code.clone();
                code[site] = Insn::Exit;
                steps.push(FusedStepPlan {
                    caller_verdict,
                    table: ti as u16,
                    entry,
                    action: None,
                    arg: 0,
                });
                step_keys.push(key);
                cur = optimize(
                    &Action {
                        name: cur.name.clone(),
                        code,
                        loop_bound: cur.loop_bound,
                    },
                    level,
                )
                .action;
                break;
            }
            Some((aid, arg)) => {
                let Some(callee) = actions.get(aid.0 as usize) else {
                    break;
                };
                if !fusable_callee(callee) {
                    break;
                }
                let spliced = splice(&cur, site, callee, arg);
                if spliced.code.len() > MAX_FUSED_INSNS {
                    break;
                }
                steps.push(FusedStepPlan {
                    caller_verdict,
                    table: ti as u16,
                    entry,
                    action: Some(aid.0),
                    arg,
                });
                step_keys.push(key);
                cur = optimize(&spliced, level).action;
            }
        }
    }
    if steps.is_empty() {
        None
    } else {
        Some(FusePlan {
            action: cur,
            steps,
            step_keys,
        })
    }
}

// ---------------------------------------------------------------------
// Optimizer statistics
// ---------------------------------------------------------------------

/// Cumulative per-program optimizer statistics, summed over a
/// program's action compiles and its chain-fusion outcome. Recomputed
/// from scratch when `SetOptLevel` recompiles; the fusion half is
/// refreshed on every re-specialization.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OptStats {
    /// Instructions across all action bodies before optimization.
    pub insns_before: u64,
    /// Instructions across all compiled bodies after optimization.
    pub insns_after: u64,
    /// Fixpoint rounds summed over all action compiles.
    pub rounds: u64,
    /// Compiles whose pass pipeline hit `MAX_FIXPOINT_ROUNDS` while
    /// still firing (converged silently-partially).
    pub fixpoint_cap_hits: u64,
    /// [`ConstFold`] firings.
    pub const_fold_fires: u64,
    /// [`GuardHoist`] firings.
    pub guard_hoist_fires: u64,
    /// [`Specialize`] firings.
    pub specialize_fires: u64,
    /// [`DeadCode`] firings.
    pub dead_code_fires: u64,
    /// [`BranchFold`] firings.
    pub branch_fold_fires: u64,
    /// Actions currently installed with a fused chain body.
    pub fused_chains: u64,
    /// Chain links collapsed across those fused bodies.
    pub fused_links: u64,
}

impl OptStats {
    /// Folds one action's pipeline report into the totals.
    pub fn record(&mut self, insns_before: usize, opt: &Optimized) {
        self.insns_before += insns_before as u64;
        self.insns_after += opt.action.code.len() as u64;
        self.rounds += opt.rounds as u64;
        if opt.capped {
            self.fixpoint_cap_hits += 1;
        }
        for name in &opt.fired {
            match *name {
                "const-fold" => self.const_fold_fires += 1,
                "guard-hoist" => self.guard_hoist_fires += 1,
                "specialize" => self.specialize_fires += 1,
                "dead-code" => self.dead_code_fires += 1,
                "branch-fold" => self.branch_fold_fires += 1,
                _ => {}
            }
        }
    }

    /// Saturating element-wise merge (cross-shard aggregation).
    pub fn merge(&mut self, other: &OptStats) {
        self.insns_before = self.insns_before.saturating_add(other.insns_before);
        self.insns_after = self.insns_after.saturating_add(other.insns_after);
        self.rounds = self.rounds.saturating_add(other.rounds);
        self.fixpoint_cap_hits = self
            .fixpoint_cap_hits
            .saturating_add(other.fixpoint_cap_hits);
        self.const_fold_fires = self.const_fold_fires.saturating_add(other.const_fold_fires);
        self.guard_hoist_fires = self
            .guard_hoist_fires
            .saturating_add(other.guard_hoist_fires);
        self.specialize_fires = self.specialize_fires.saturating_add(other.specialize_fires);
        self.dead_code_fires = self.dead_code_fires.saturating_add(other.dead_code_fires);
        self.branch_fold_fires = self
            .branch_fold_fires
            .saturating_add(other.branch_fold_fires);
        self.fused_chains = self.fused_chains.saturating_add(other.fused_chains);
        self.fused_links = self.fused_links.saturating_add(other.fused_links);
    }
}

rkd_testkit::impl_json_struct!(OptStats {
    insns_before,
    insns_after,
    rounds,
    fixpoint_cap_hits,
    const_fold_fires,
    guard_hoist_fires,
    specialize_fires,
    dead_code_fires,
    branch_fold_fires,
    fused_chains,
    fused_links
});

rkd_testkit::impl_json_unit_enum!(OptLevel { O0, O1, O2 });

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bytecode::AluOp;
    use crate::ctxt::Ctxt;
    use crate::dp::PrivacyLedger;
    use crate::interp::{run_action, ActionOutcome, ExecEnv};
    use crate::maps::{MapDef, MapInstance, MapKind};
    use crate::prog::{PrivacyPolicy, ProgramBuilder};
    use crate::table::MatchKind;
    use crate::verifier::{reverify_action, verify};
    use rkd_testkit::prop::Gen;
    use rkd_testkit::rng::{Rng, SeedableRng, SliceRandom, StdRng};

    const ALU_OPS: [AluOp; 12] = [
        AluOp::Add,
        AluOp::Sub,
        AluOp::Mul,
        AluOp::Div,
        AluOp::Mod,
        AluOp::And,
        AluOp::Or,
        AluOp::Xor,
        AluOp::Shl,
        AluOp::Shr,
        AluOp::Min,
        AluOp::Max,
    ];
    const CMP_OPS: [CmpOp; 6] = [
        CmpOp::Eq,
        CmpOp::Ne,
        CmpOp::Lt,
        CmpOp::Le,
        CmpOp::Gt,
        CmpOp::Ge,
    ];

    /// Random instruction from the safe subset the differential suites
    /// use, extended with context loads/stores so the specialization
    /// pass sees real traffic. Field 0 is readonly, field 1 scratch.
    fn gen_insn(g: &mut impl Rng) -> Insn {
        match g.gen_range(0u8..11) {
            0 => Insn::LdImm {
                dst: Reg(g.gen_range(0u8..8)),
                imm: g.gen_range(-1000i64..1000),
            },
            1 => Insn::Mov {
                dst: Reg(g.gen_range(0u8..8)),
                src: Reg(g.gen_range(0u8..8)),
            },
            2 => Insn::Alu {
                op: *ALU_OPS.choose(g).expect("nonempty"),
                dst: Reg(g.gen_range(0u8..8)),
                src: Reg(g.gen_range(0u8..8)),
            },
            3 => Insn::AluImm {
                op: *ALU_OPS.choose(g).expect("nonempty"),
                dst: Reg(g.gen_range(0u8..8)),
                imm: g.gen_range(-100i64..100),
            },
            4 => Insn::JmpIfImm {
                cmp: *CMP_OPS.choose(g).expect("nonempty"),
                lhs: Reg(g.gen_range(0u8..8)),
                imm: g.gen_range(-50i64..50),
                target: g.gen_range(0usize..64),
            },
            5 => Insn::MapUpdate {
                map: crate::maps::MapId(g.gen_range(0u16..2)),
                key: Reg(g.gen_range(0u8..8)),
                value: Reg(g.gen_range(0u8..8)),
            },
            6 => Insn::MapLookup {
                dst: Reg(g.gen_range(0u8..8)),
                map: crate::maps::MapId(g.gen_range(0u16..2)),
                key: Reg(g.gen_range(0u8..8)),
                default: g.gen_range(-5i64..5),
            },
            7 => Insn::VectorPush {
                dst: VReg(0),
                src: Reg(g.gen_range(0u8..8)),
            },
            8 => Insn::LdCtxt {
                dst: Reg(g.gen_range(0u8..8)),
                field: FieldId(g.gen_range(0u16..2)),
            },
            9 => Insn::StCtxt {
                field: FieldId(1),
                src: Reg(g.gen_range(0u8..8)),
            },
            _ => Insn::ScalarVal {
                dst: Reg(g.gen_range(0u8..8)),
                src: VReg(0),
                idx: g.gen_range(0u16..4),
            },
        }
    }

    /// Prologue-initialized, forward-jump-patched action (mirrors the
    /// integration harness in `tests/common`).
    fn make_action(raw: Vec<Insn>) -> Action {
        let mut code: Vec<Insn> = (0..8u8)
            .map(|r| Insn::LdImm {
                dst: Reg(r),
                imm: r as i64,
            })
            .collect();
        code.push(Insn::VectorClear { dst: VReg(0) });
        let body_start = code.len();
        let body_len = raw.len();
        for (i, mut insn) in raw.into_iter().enumerate() {
            if let Insn::JmpIfImm { target, .. } = &mut insn {
                let lo = i + 1;
                let span = (body_len - lo).max(1);
                *target = body_start + lo + (*target % span);
            }
            code.push(insn);
        }
        code.push(Insn::LdImm {
            dst: Reg(0),
            imm: 0,
        });
        code.push(Insn::Exit);
        Action::new("generated", code)
    }

    /// Routes a generated action through the real verifier; `None`
    /// when rejected (the properties only cover admitted programs).
    fn admit(action: &Action) -> Option<u64> {
        let mut b = ProgramBuilder::new("opt-prop");
        let ro = b.field_readonly("ro");
        b.field_scratch("scratch");
        b.map("h", MapKind::Hash, 32);
        b.map("r", MapKind::RingBuf, 8);
        let act = b.action(action.clone());
        b.table("t", "hook", &[ro], MatchKind::Exact, Some(act), 4);
        verify(b.build()).ok().map(|v| v.worst_case_insns()[0])
    }

    struct Fx {
        ctxt: Ctxt,
        maps: Vec<MapInstance>,
        rng: StdRng,
        ledger: PrivacyLedger,
    }

    impl Fx {
        fn new() -> Fx {
            let hash = MapInstance::new(&MapDef {
                name: "h".into(),
                kind: MapKind::Hash,
                capacity: 32,
                shared: false,
                per_cpu: false,
            })
            .unwrap();
            let ring = MapInstance::new(&MapDef {
                name: "r".into(),
                kind: MapKind::RingBuf,
                capacity: 8,
                shared: false,
                per_cpu: false,
            })
            .unwrap();
            Fx {
                ctxt: Ctxt::from_values(vec![7, 3]),
                maps: vec![hash, ring],
                rng: StdRng::seed_from_u64(99),
                ledger: PrivacyLedger::new(10_000),
            }
        }

        fn run(&mut self, action: &Action, fuel: u64, arg: i64) -> ActionOutcome {
            let tensors = Vec::new();
            let models = Vec::new();
            let mut env = ExecEnv {
                ctxt: &mut self.ctxt,
                maps: &mut self.maps,
                tensors: &tensors,
                models: &models,
                tick: 5,
                rng: &mut self.rng,
                ledger: &mut self.ledger,
                privacy: PrivacyPolicy::default(),
                ml_stats: &mut [],
                time_ml: false,
            };
            run_action(action, fuel, arg, &mut env).expect("admitted action terminates")
        }
    }

    /// Interprets `original` and `rewritten` on identical fixtures and
    /// asserts identical observable behaviour (the rewritten body may
    /// execute fewer instructions, never more).
    fn assert_same_semantics(original: &Action, rewritten: &Action, fuel: u64, arg: i64) {
        let mut fa = Fx::new();
        let a = fa.run(original, fuel, arg);
        let mut fb = Fx::new();
        let b = fb.run(rewritten, fuel, arg);
        assert_eq!(a.verdict, b.verdict, "verdict diverged");
        assert_eq!(a.effects, b.effects, "effects diverged");
        assert_eq!(a.tail_call, b.tail_call, "tail call diverged");
        assert_eq!(a.guard_trips, b.guard_trips, "guard trips diverged");
        assert!(
            b.insns_executed <= a.insns_executed,
            "optimization increased executed instructions ({} -> {})",
            a.insns_executed,
            b.insns_executed
        );
        assert_eq!(fa.ctxt, fb.ctxt, "context diverged");
        for (x, y) in fa.maps.iter_mut().zip(fb.maps.iter_mut()) {
            assert_eq!(
                x.aggregate_sum(),
                y.aggregate_sum(),
                "map contents diverged"
            );
            assert_eq!(x.len(), y.len(), "map size diverged");
        }
    }

    fn gen_admitted(g: &mut Gen) -> Option<(Action, u64, i64)> {
        let len = g.scaled_len(0, 48);
        let raw: Vec<_> = (0..len).map(|_| gen_insn(g)).collect();
        let arg = g.gen_range(-1000i64..1000);
        let action = make_action(raw);
        admit(&action).map(|fuel| (action, fuel, arg))
    }

    fn single_pass_preserves(g: &mut Gen, pass: &dyn Pass) {
        let Some((action, fuel, arg)) = gen_admitted(g) else {
            return;
        };
        let mut code = action.code.clone();
        pass.run(&mut code);
        assert!(code.len() <= action.code.len(), "pass grew the body");
        let rewritten = Action {
            name: action.name.clone(),
            code,
            loop_bound: action.loop_bound,
        };
        assert_same_semantics(&action, &rewritten, fuel, arg);
    }

    rkd_testkit::prop_check!(const_fold_preserves_semantics, cases = 256, |g| {
        single_pass_preserves(g, &ConstFold);
    });

    rkd_testkit::prop_check!(specialize_preserves_semantics, cases = 256, |g| {
        single_pass_preserves(g, &Specialize);
    });

    rkd_testkit::prop_check!(dead_code_preserves_semantics, cases = 256, |g| {
        single_pass_preserves(g, &DeadCode);
    });

    rkd_testkit::prop_check!(branch_fold_preserves_semantics, cases = 256, |g| {
        single_pass_preserves(g, &BranchFold);
    });

    rkd_testkit::prop_check!(pipeline_preserves_and_reverifies, cases = 256, |g| {
        let Some((action, fuel, arg)) = gen_admitted(g) else {
            return;
        };
        let opt = optimize(&action, OptLevel::O2);
        assert_same_semantics(&action, &opt.action, fuel, arg);
        // Meta-safety: pipeline output must re-pass the verifier.
        assert!(
            admit(&opt.action).is_some(),
            "optimized body failed re-verification"
        );
    });

    rkd_testkit::prop_check!(pipeline_is_idempotent, cases = 256, |g| {
        let Some((action, _, _)) = gen_admitted(g) else {
            return;
        };
        let once = optimize(&action, OptLevel::O2);
        let twice = optimize(&once.action, OptLevel::O2);
        assert!(
            twice.fired.is_empty(),
            "second pipeline run fired {:?}",
            twice.fired
        );
        assert_eq!(once.action.code, twice.action.code);
    });

    rkd_testkit::prop_check!(pipeline_reaches_fixpoint_within_bound, cases = 256, |g| {
        let Some((action, _, _)) = gen_admitted(g) else {
            return;
        };
        let opt = optimize(&action, OptLevel::O2);
        // The last round must be a clean no-change round strictly
        // inside the bound — hitting the bound means no fixpoint.
        assert!(
            opt.rounds < MAX_FIXPOINT_ROUNDS,
            "pipeline did not reach fixpoint in {} rounds",
            MAX_FIXPOINT_ROUNDS
        );
    });

    rkd_testkit::prop_check!(pipeline_never_grows_instruction_count, cases = 256, |g| {
        let Some((action, _, _)) = gen_admitted(g) else {
            return;
        };
        let opt = optimize(&action, OptLevel::O2);
        assert!(opt.action.code.len() <= action.code.len());
    });

    #[test]
    fn opt_levels_order_and_default() {
        assert_eq!(OptLevel::default(), OptLevel::O2);
        assert!(passes_for(OptLevel::O0).is_empty());
        assert_eq!(passes_for(OptLevel::O1).len(), 4);
        assert_eq!(passes_for(OptLevel::O2).len(), 5);
    }

    #[test]
    fn ctxt_writes_unions_store_targets() {
        let a = Action::new(
            "w",
            vec![
                Insn::LdImm {
                    dst: Reg(0),
                    imm: 1,
                },
                Insn::StCtxt {
                    field: FieldId(3),
                    src: Reg(0),
                },
                Insn::StCtxt {
                    field: FieldId(1),
                    src: Reg(0),
                },
                Insn::StCtxt {
                    field: FieldId(3),
                    src: Reg(0),
                },
                Insn::Exit,
            ],
        );
        assert_eq!(ctxt_writes(&a), vec![FieldId(3), FieldId(1)]);
    }

    #[test]
    fn loop_bound_and_back_edges_survive_optimization() {
        // A verified counting loop: the optimizer must preserve the
        // loop (r1 is live through the back edge) and its bound.
        let a = Action::with_loop_bound(
            "loop",
            vec![
                Insn::LdImm {
                    dst: Reg(0),
                    imm: 0,
                },
                Insn::LdImm {
                    dst: Reg(1),
                    imm: 10,
                },
                Insn::AluImm {
                    op: AluOp::Sub,
                    dst: Reg(1),
                    imm: 1,
                },
                Insn::AluImm {
                    op: AluOp::Add,
                    dst: Reg(0),
                    imm: 2,
                },
                Insn::JmpIfImm {
                    cmp: CmpOp::Gt,
                    lhs: Reg(1),
                    imm: 0,
                    target: 2,
                },
                Insn::Exit,
            ],
            16,
        );
        let fuel = admit(&a).expect("loop admits");
        let opt = optimize(&a, OptLevel::O2);
        assert_eq!(opt.action.loop_bound, Some(16));
        assert_same_semantics(&a, &opt.action, fuel, 0);
        let mut fx = Fx::new();
        assert_eq!(fx.run(&opt.action, fuel, 0).verdict, 20);
    }

    #[test]
    fn reverify_catches_broken_pass_output() {
        // A deliberately-broken pass that strips the terminator; the
        // re-verifier must reject its output (hard compile-time error
        // in the install path).
        struct StripExit;
        impl Pass for StripExit {
            fn name(&self) -> &'static str {
                "strip-exit"
            }
            fn run(&self, code: &mut Vec<Insn>) -> bool {
                let before = code.len();
                code.retain(|i| !matches!(i, Insn::Exit));
                code.len() != before
            }
        }
        let a = Action::new(
            "victim",
            vec![
                Insn::LdImm {
                    dst: Reg(0),
                    imm: 1,
                },
                Insn::Exit,
            ],
        );
        let mut b = ProgramBuilder::new("broken");
        let ro = b.field_readonly("ro");
        let act = b.action(a.clone());
        b.table("t", "hook", &[ro], MatchKind::Exact, Some(act), 4);
        let prog = b.build();
        let broken = optimize_with(&a, &[&StripExit], MAX_FIXPOINT_ROUNDS);
        assert!(reverify_action(0, &broken.action, &prog).is_err());
        // The honest pipeline's output re-verifies.
        let good = optimize(&a, OptLevel::O2);
        assert!(reverify_action(0, &good.action, &prog).is_ok());
    }

    rkd_testkit::prop_check!(guard_hoist_preserves_semantics, cases = 256, |g| {
        single_pass_preserves(g, &GuardHoist);
    });

    /// A deliberately non-convergent pass: forces `LdImm r7` to a fixed
    /// immediate. Two of these with different targets oscillate forever.
    struct FlipTo(i64);
    impl Pass for FlipTo {
        fn name(&self) -> &'static str {
            "flip"
        }
        fn run(&self, code: &mut Vec<Insn>) -> bool {
            let mut changed = false;
            for insn in code.iter_mut() {
                if let Insn::LdImm { dst: Reg(7), imm } = insn {
                    if *imm != self.0 {
                        *imm = self.0;
                        changed = true;
                    }
                }
            }
            changed
        }
    }

    /// Satellite: an oscillating pass pair burns the whole round budget
    /// without converging; the driver reports `capped` (surfaced as the
    /// `opt_fixpoint_cap_hits` counter) instead of looping forever. A
    /// convergent pipeline over the same body reports no cap.
    #[test]
    fn oscillating_passes_hit_the_round_cap_and_are_counted() {
        let a = Action::new(
            "osc",
            vec![
                Insn::LdImm {
                    dst: Reg(7),
                    imm: 0,
                },
                Insn::LdImm {
                    dst: Reg(0),
                    imm: 0,
                },
                Insn::Exit,
            ],
        );
        let opt = optimize_with(&a, &[&FlipTo(1), &FlipTo(0)], 6);
        assert_eq!(opt.rounds, 6, "every round must have fired a pass");
        assert!(opt.capped);
        let mut stats = OptStats::default();
        stats.record(a.code.len(), &opt);
        assert_eq!(stats.fixpoint_cap_hits, 1);
        let clean = optimize(&a, OptLevel::O2);
        assert!(!clean.capped, "convergent pipelines never report a cap");
        let mut cs = OptStats::default();
        cs.record(a.code.len(), &clean);
        assert_eq!(cs.fixpoint_cap_hits, 0);
    }

    fn fuse_table(name: &str, key: &[FieldId], default: Option<crate::table::ActionId>) -> Table {
        Table::new(crate::table::TableDef {
            name: name.into(),
            hook: "h".into(),
            key_fields: key.to_vec(),
            kind: MatchKind::Exact,
            default_action: default,
            max_entries: 8,
        })
    }

    /// Chain fixture for the planner tests: a0 stores `k := 3` and
    /// tail-calls t1 (keyed on `k`, one entry at 3 → a1); a1 tail-calls
    /// t2 (empty, default a2); a2 is the leaf.
    fn fuse_fixture() -> (Vec<Action>, Vec<Table>) {
        let k = FieldId(1);
        let a0 = Action::new(
            "root",
            vec![
                Insn::LdImm {
                    dst: Reg(1),
                    imm: 3,
                },
                Insn::StCtxt {
                    field: k,
                    src: Reg(1),
                },
                Insn::LdImm {
                    dst: Reg(0),
                    imm: 10,
                },
                Insn::TailCall {
                    table: crate::table::TableId(1),
                },
            ],
        );
        let a1 = Action::new(
            "mid",
            vec![
                Insn::LdImm {
                    dst: Reg(0),
                    imm: 20,
                },
                Insn::TailCall {
                    table: crate::table::TableId(2),
                },
            ],
        );
        let a2 = Action::new(
            "leaf",
            vec![
                Insn::LdImm {
                    dst: Reg(0),
                    imm: 42,
                },
                Insn::Exit,
            ],
        );
        let t0 = fuse_table("t0", &[FieldId(0)], Some(crate::table::ActionId(0)));
        let mut t1 = fuse_table("t1", &[k], None);
        t1.insert(crate::table::Entry {
            key: crate::table::MatchKey::Exact(vec![3]),
            priority: 0,
            action: crate::table::ActionId(1),
            arg: 5,
        })
        .unwrap();
        let t2 = fuse_table("t2", &[k], Some(crate::table::ActionId(2)));
        (vec![a0, a1, a2], vec![t0, t1, t2])
    }

    /// Tentpole planner contract: a statically resolvable chain fuses
    /// end to end — constant-folded key stores resolve keyed lookups,
    /// empty tables resolve to their default — and the fused body
    /// carries no live `TailCall`.
    #[test]
    fn fuse_chain_resolves_static_links() {
        let (actions, tables) = fuse_fixture();
        let plan = fuse_chain(&actions[0], &actions, &tables, OptLevel::O2)
            .expect("statically resolvable chain must fuse");
        assert_eq!(plan.steps.len(), 2);
        assert_eq!(plan.steps[0].caller_verdict, 10);
        assert_eq!(plan.steps[0].table, 1);
        assert_eq!(plan.steps[0].entry, Some(0), "keyed hit on entry 0");
        assert_eq!(plan.steps[0].action, Some(1));
        assert_eq!(plan.steps[1].caller_verdict, 20);
        assert_eq!(plan.steps[1].table, 2);
        assert_eq!(plan.steps[1].entry, None, "empty table resolves as miss");
        assert_eq!(plan.steps[1].action, Some(2));
        assert!(
            !plan
                .action
                .code
                .iter()
                .any(|i| matches!(i, Insn::TailCall { .. })),
            "fully fused body must not tail-call: {:?}",
            plan.action.code
        );
        assert!(fuse_chain(&actions[2], &actions, &tables, OptLevel::O2).is_none());
        assert!(
            fuse_chain(&actions[0], &actions, &tables, OptLevel::O0).is_none(),
            "O0 never fuses"
        );
    }

    /// A key that is not provably constant at the call site defeats
    /// fusion of that link (the planner must not guess), as does a
    /// model call in a callee (its guard bookkeeping cannot be
    /// synthesized).
    #[test]
    fn fuse_chain_rejects_runtime_keys() {
        let (mut actions, tables) = fuse_fixture();
        // Root now stores a runtime ctxt value into the key field.
        actions[0] = Action::new(
            "root",
            vec![
                Insn::LdCtxt {
                    dst: Reg(1),
                    field: FieldId(0),
                },
                Insn::StCtxt {
                    field: FieldId(1),
                    src: Reg(1),
                },
                Insn::LdImm {
                    dst: Reg(0),
                    imm: 10,
                },
                Insn::TailCall {
                    table: crate::table::TableId(1),
                },
            ],
        );
        assert!(
            fuse_chain(&actions[0], &actions, &tables, OptLevel::O2).is_none(),
            "runtime key into a populated table must defeat fusion"
        );
    }
}
