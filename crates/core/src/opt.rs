//! Bytecode optimizing-pass pipeline.
//!
//! §3.1 compiles table matches and actions into RMT bytecode; this
//! module is the optimizer that sits between the verifier and
//! [`crate::jit::CompiledAction::compile`]. It is a classic fixpoint
//! driver over small [`Pass`] structs: each pass rewrites an action
//! body in place (or removes instructions), the driver re-runs the
//! whole pipeline until no pass fires, and a hard iteration bound
//! ([`MAX_FIXPOINT_ROUNDS`]) caps the loop so a buggy pass can never
//! spin the control plane.
//!
//! The passes:
//!
//! - [`ConstFold`] — per-block constant propagation reusing
//!   [`crate::bytecode::AluOp::eval`] / [`CmpOp::eval`] as the single
//!   source of truth
//!   for arithmetic and comparison semantics (wrapping, div/mod-by-zero
//!   = 0, masked shifts). Folds `Alu` → `AluImm` → `LdImm`, `Mov`-of-
//!   constant → `LdImm`, and decides constant conditional jumps.
//! - [`Specialize`] — per-block context-access specialization:
//!   store-to-load forwarding (`StCtxt f, r` … `LdCtxt d, f` becomes
//!   `Mov d, r`) and redundant-load CSE (a second `LdCtxt` of a field
//!   whose value is still held in a register becomes a `Mov`). The
//!   schema's writability split makes this sound: nothing but `StCtxt`
//!   mutates the context inside an action. The per-hook half of
//!   specialization — baking the installed tables' kinds and the
//!   consumed-field projection (the decision-cache key) into the fire
//!   path — lives in [`crate::machine`]: each hook precomputes whether
//!   any installed action can write a consumed field, and cached
//!   decisions on write-free hooks replay without re-extracting keys.
//! - [`DeadCode`] — global backward liveness over scalar and vector
//!   registers; removes pure dead writes (`LdImm`, `Mov`, `Alu`,
//!   `AluImm`, `LdCtxt`, `ScalarVal`, `VectorClear`, `VectorLdCtxt`)
//!   and dead context stores overwritten before any read in the same
//!   block. `StCtxt` is observable at action exit, so a store is dead
//!   only when another store to the same field lands before the block
//!   ends. Side-effecting instructions are never removed — including
//!   `MapLookup`, whose LRU-recency touch is visible in eviction
//!   order, and `Call`/`DpAggregate`, which consume the program's RNG
//!   stream.
//! - [`BranchFold`] — jump threading (a jump whose target is a `Jmp`
//!   retargets to the end of the chain; a jump landing on a terminator
//!   becomes that terminator), removal of jumps to the immediately
//!   following instruction, and unreachable-code elimination with
//!   jump-target rewriting.
//!
//! Two invariants hold for every pass and are property-tested:
//! semantics of verified bodies are preserved bit-for-bit (verdict,
//! effects, context, map state), and the instruction count never
//! grows. The optimizer runs behind an [`OptLevel`] knob on
//! [`crate::prog::ProgramBuilder`] (default on; `O0` is the retained
//! oracle path), and every optimized action is re-verified before
//! install — a failure is a hard [`crate::error::VmError::Verify`]
//! at compile time, never a silently-installed body.

use crate::bytecode::{Action, CmpOp, Insn, Reg, VReg};
use crate::ctxt::FieldId;

/// Hard bound on fixpoint rounds: the driver re-runs the pass list at
/// most this many times. Each round either fires a pass (strictly
/// descending a finite measure) or terminates the loop, so real
/// pipelines converge in a handful of rounds; the bound exists so a
/// buggy pass cannot spin.
pub const MAX_FIXPOINT_ROUNDS: usize = 16;

/// Optimization level for action compilation.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum OptLevel {
    /// No optimization: the JIT compiles exactly what the verifier
    /// admitted. Retained as the oracle path for differential testing.
    O0,
    /// Generic passes: constant folding, dead-code elimination, branch
    /// folding + unreachable-code elimination.
    O1,
    /// `O1` plus context-access specialization. The default.
    #[default]
    O2,
}

/// One optimization pass over an action body.
///
/// Implementations must preserve the semantics of verifier-admitted
/// bodies and must never grow the instruction count; the driver
/// asserts the latter after every run.
pub trait Pass {
    /// Short stable name (diagnostics, golden tests).
    fn name(&self) -> &'static str;
    /// Rewrites `code` in place; returns `true` iff anything changed.
    fn run(&self, code: &mut Vec<Insn>) -> bool;
}

/// The result of running the pipeline over one action.
#[derive(Clone, Debug)]
pub struct Optimized {
    /// The optimized action (same name and loop bound, new body).
    pub action: Action,
    /// Fixpoint rounds taken (including the final no-change round).
    pub rounds: usize,
    /// Names of the passes that fired, in firing order.
    pub fired: Vec<&'static str>,
}

/// Returns the pass list for a level (`O0` is empty).
pub fn passes_for(level: OptLevel) -> Vec<Box<dyn Pass>> {
    match level {
        OptLevel::O0 => Vec::new(),
        OptLevel::O1 => vec![
            Box::new(ConstFold),
            Box::new(DeadCode),
            Box::new(BranchFold),
        ],
        OptLevel::O2 => vec![
            Box::new(ConstFold),
            Box::new(Specialize),
            Box::new(DeadCode),
            Box::new(BranchFold),
        ],
    }
}

/// Runs the standard pipeline for `level` to fixpoint.
pub fn optimize(action: &Action, level: OptLevel) -> Optimized {
    let passes = passes_for(level);
    let refs: Vec<&dyn Pass> = passes.iter().map(|p| p.as_ref()).collect();
    optimize_with(action, &refs, MAX_FIXPOINT_ROUNDS)
}

/// Runs an explicit pass list to fixpoint with an explicit round
/// bound. This is the seam the broken-pass meta-safety tests drive;
/// production callers use [`optimize`].
///
/// # Panics
///
/// Panics if a pass grows the instruction count — that is a pass bug,
/// not an input condition.
pub fn optimize_with(action: &Action, passes: &[&dyn Pass], max_rounds: usize) -> Optimized {
    let mut code = action.code.clone();
    let mut fired = Vec::new();
    let mut rounds = 0;
    while rounds < max_rounds {
        rounds += 1;
        let mut any = false;
        for p in passes {
            let before = code.len();
            if p.run(&mut code) {
                any = true;
                fired.push(p.name());
            }
            assert!(
                code.len() <= before,
                "pass {} grew the instruction count ({} -> {})",
                p.name(),
                before,
                code.len()
            );
        }
        if !any {
            break;
        }
    }
    Optimized {
        action: Action {
            name: action.name.clone(),
            code,
            loop_bound: action.loop_bound,
        },
        rounds,
        fired,
    }
}

/// The set of fields an action body can write (its `StCtxt` targets).
/// The machine unions this across a program's actions to decide, per
/// hook, whether cached decisions can replay without re-extracting
/// match keys (see the decision-cache notes in [`crate::machine`]).
pub fn ctxt_writes(action: &Action) -> Vec<FieldId> {
    let mut out: Vec<FieldId> = Vec::new();
    for insn in &action.code {
        if let Insn::StCtxt { field, .. } = insn {
            if !out.contains(field) {
                out.push(*field);
            }
        }
    }
    out
}

// ---------------------------------------------------------------------
// Shared CFG helpers
// ---------------------------------------------------------------------

/// Marks basic-block leaders: instruction 0, every jump target, and
/// every instruction following a jump or terminator.
fn leaders(code: &[Insn]) -> Vec<bool> {
    let mut lead = vec![false; code.len()];
    if !code.is_empty() {
        lead[0] = true;
    }
    for (i, insn) in code.iter().enumerate() {
        if let Some(t) = insn.jump_target() {
            if t < code.len() {
                lead[t] = true;
            }
            if i + 1 < code.len() {
                lead[i + 1] = true;
            }
        } else if insn.is_terminator() && i + 1 < code.len() {
            lead[i + 1] = true;
        }
    }
    lead
}

/// Removes instructions where `keep[i]` is false, rewriting every jump
/// target through the position map. A target pointing at a removed
/// instruction lands on the next kept one — exactly the fall-through
/// semantics of the (pure, dead, or unreachable) instruction removed.
/// Returns `true` if anything was removed.
fn compact(code: &mut Vec<Insn>, keep: &[bool]) -> bool {
    debug_assert_eq!(code.len(), keep.len());
    if keep.iter().all(|&k| k) {
        return false;
    }
    let mut newpos = vec![0usize; code.len() + 1];
    let mut n = 0usize;
    for i in 0..code.len() {
        newpos[i] = n;
        if keep[i] {
            n += 1;
        }
    }
    newpos[code.len()] = n;
    let mut out = Vec::with_capacity(n);
    for (i, insn) in code.iter().enumerate() {
        if !keep[i] {
            continue;
        }
        let mut insn = insn.clone();
        match &mut insn {
            Insn::Jmp { target } | Insn::JmpIf { target, .. } | Insn::JmpIfImm { target, .. } => {
                *target = newpos[*target]
            }
            _ => {}
        }
        out.push(insn);
    }
    *code = out;
    true
}

// ---------------------------------------------------------------------
// Constant folding
// ---------------------------------------------------------------------

/// Per-block constant propagation and folding. All rewrites are
/// in-place (1:1), so this pass never changes the instruction count;
/// the dead definitions it strands are collected by [`DeadCode`] and
/// the decided branches by [`BranchFold`].
pub struct ConstFold;

impl ConstFold {
    /// Constant-evaluates a conditional against the tracked state:
    /// `Some(taken)` when decidable.
    fn decide(cmp: CmpOp, lhs: Option<i64>, rhs: Option<i64>) -> Option<bool> {
        match (lhs, rhs) {
            (Some(l), Some(r)) => Some(cmp.eval(l, r)),
            _ => None,
        }
    }
}

impl Pass for ConstFold {
    fn name(&self) -> &'static str {
        "const-fold"
    }

    fn run(&self, code: &mut Vec<Insn>) -> bool {
        let lead = leaders(code);
        let mut changed = false;
        // regs[r] = Some(v) when r provably holds v at this point of
        // the current block.
        let mut regs: [Option<i64>; 16] = [None; 16];
        for i in 0..code.len() {
            if lead[i] {
                regs = [None; 16];
            }
            let next = i + 1;
            match code[i] {
                Insn::LdImm { dst, imm } => regs[dst.0 as usize] = Some(imm),
                Insn::Mov { dst, src } => {
                    if let Some(v) = regs[src.0 as usize] {
                        code[i] = Insn::LdImm { dst, imm: v };
                        changed = true;
                    }
                    regs[dst.0 as usize] = regs[src.0 as usize];
                }
                Insn::Alu { op, dst, src } => {
                    if let Some(r) = regs[src.0 as usize] {
                        if let Some(l) = regs[dst.0 as usize] {
                            let v = op.eval(l, r);
                            code[i] = Insn::LdImm { dst, imm: v };
                            regs[dst.0 as usize] = Some(v);
                        } else {
                            code[i] = Insn::AluImm { op, dst, imm: r };
                            regs[dst.0 as usize] = None;
                        }
                        changed = true;
                    } else {
                        regs[dst.0 as usize] = None;
                    }
                }
                Insn::AluImm { op, dst, imm } => {
                    if let Some(l) = regs[dst.0 as usize] {
                        let v = op.eval(l, imm);
                        code[i] = Insn::LdImm { dst, imm: v };
                        regs[dst.0 as usize] = Some(v);
                        changed = true;
                    } else {
                        regs[dst.0 as usize] = None;
                    }
                }
                Insn::JmpIf {
                    cmp,
                    lhs,
                    rhs,
                    target,
                } => {
                    let decided = if lhs == rhs {
                        // Same register on both sides: reflexive.
                        Some(cmp.eval(0, 0))
                    } else {
                        Self::decide(cmp, regs[lhs.0 as usize], regs[rhs.0 as usize])
                    };
                    match decided {
                        Some(true) => {
                            code[i] = Insn::Jmp { target };
                            changed = true;
                        }
                        Some(false) => {
                            code[i] = Insn::Jmp { target: next };
                            changed = true;
                        }
                        None => {
                            if let Some(r) = regs[rhs.0 as usize] {
                                code[i] = Insn::JmpIfImm {
                                    cmp,
                                    lhs,
                                    imm: r,
                                    target,
                                };
                                changed = true;
                            }
                        }
                    }
                }
                Insn::JmpIfImm {
                    cmp,
                    lhs,
                    imm,
                    target,
                } => match Self::decide(cmp, regs[lhs.0 as usize], Some(imm)) {
                    Some(true) => {
                        code[i] = Insn::Jmp { target };
                        changed = true;
                    }
                    Some(false) => {
                        code[i] = Insn::Jmp { target: next };
                        changed = true;
                    }
                    None => {}
                },
                // Everything below may define registers with unknown
                // values; clobber the tracked state accordingly.
                Insn::LdCtxt { dst, .. }
                | Insn::MapLookup { dst, .. }
                | Insn::ScalarVal { dst, .. }
                | Insn::DpAggregate { dst, .. } => regs[dst.0 as usize] = None,
                // Map mutations and helper calls report through r0.
                Insn::MapUpdate { .. } | Insn::MapDelete { .. } | Insn::Call { .. } => {
                    regs[0] = None;
                }
                // Class to r0, confidence to r1.
                Insn::CallMl { .. } => {
                    regs[0] = None;
                    regs[1] = None;
                }
                Insn::StCtxt { .. }
                | Insn::Jmp { .. }
                | Insn::VectorLdMap { .. }
                | Insn::VectorLdCtxt { .. }
                | Insn::VectorPush { .. }
                | Insn::VectorClear { .. }
                | Insn::MatMul { .. }
                | Insn::VecMap { .. }
                | Insn::Exit
                | Insn::TailCall { .. } => {}
            }
        }
        changed
    }
}

// ---------------------------------------------------------------------
// Context-access specialization
// ---------------------------------------------------------------------

/// Per-block context-access specialization: store-to-load forwarding
/// and redundant-load CSE. Sound because within an action body only
/// `StCtxt` mutates the context — helpers, map ops, and ML calls never
/// touch it — so a register holding a field's value stays valid until
/// that register is redefined or the field is stored again.
pub struct Specialize;

impl Pass for Specialize {
    fn name(&self) -> &'static str {
        "specialize"
    }

    fn run(&self, code: &mut Vec<Insn>) -> bool {
        let lead = leaders(code);
        let mut changed = false;
        // avail[k] = (field, reg): `reg` currently holds `ctxt[field]`.
        let mut avail: Vec<(FieldId, Reg)> = Vec::new();
        let kill_reg = |avail: &mut Vec<(FieldId, Reg)>, r: Reg| {
            avail.retain(|&(_, held)| held != r);
        };
        let kill_field = |avail: &mut Vec<(FieldId, Reg)>, f: FieldId| {
            avail.retain(|&(field, _)| field != f);
        };
        for i in 0..code.len() {
            if lead[i] {
                avail.clear();
            }
            match code[i] {
                Insn::LdCtxt { dst, field } => {
                    if let Some(&(_, held)) = avail.iter().find(|&&(f, _)| f == field) {
                        // The value is already in a register: forward
                        // it. A reload into the holding register
                        // becomes a self-move, which DeadCode removes.
                        code[i] = Insn::Mov { dst, src: held };
                        changed = true;
                        kill_reg(&mut avail, dst);
                        if held != dst {
                            avail.push((field, dst));
                        } else {
                            avail.push((field, held));
                        }
                    } else {
                        kill_reg(&mut avail, dst);
                        avail.push((field, dst));
                    }
                }
                Insn::StCtxt { field, src } => {
                    kill_field(&mut avail, field);
                    avail.push((field, src));
                }
                // Register definitions invalidate what they held.
                Insn::LdImm { dst, .. }
                | Insn::Mov { dst, .. }
                | Insn::Alu { dst, .. }
                | Insn::AluImm { dst, .. }
                | Insn::MapLookup { dst, .. }
                | Insn::ScalarVal { dst, .. }
                | Insn::DpAggregate { dst, .. } => kill_reg(&mut avail, dst),
                Insn::MapUpdate { .. } | Insn::MapDelete { .. } | Insn::Call { .. } => {
                    kill_reg(&mut avail, Reg(0));
                }
                Insn::CallMl { .. } => {
                    kill_reg(&mut avail, Reg(0));
                    kill_reg(&mut avail, Reg(1));
                }
                Insn::Jmp { .. }
                | Insn::JmpIf { .. }
                | Insn::JmpIfImm { .. }
                | Insn::VectorLdMap { .. }
                | Insn::VectorLdCtxt { .. }
                | Insn::VectorPush { .. }
                | Insn::VectorClear { .. }
                | Insn::MatMul { .. }
                | Insn::VecMap { .. }
                | Insn::Exit
                | Insn::TailCall { .. } => {}
            }
        }
        changed
    }
}

// ---------------------------------------------------------------------
// Dead-code elimination
// ---------------------------------------------------------------------

/// Global backward liveness over scalar and vector registers plus
/// per-block dead-store elimination for `StCtxt`.
pub struct DeadCode;

/// Liveness state: bit r of `regs` = scalar register r live, bit v of
/// `vregs` = vector register v live.
#[derive(Clone, Copy, PartialEq, Eq, Default)]
struct Live {
    regs: u16,
    vregs: u8,
}

impl Live {
    fn union(self, other: Live) -> Live {
        Live {
            regs: self.regs | other.regs,
            vregs: self.vregs | other.vregs,
        }
    }
    fn reg(&self, r: Reg) -> bool {
        self.regs & (1 << r.0.min(15)) != 0
    }
    fn vreg(&self, v: VReg) -> bool {
        self.vregs & (1 << v.0.min(7)) != 0
    }
    fn set_reg(&mut self, r: Reg) {
        self.regs |= 1 << r.0.min(15);
    }
    fn clear_reg(&mut self, r: Reg) {
        self.regs &= !(1 << r.0.min(15));
    }
    fn set_vreg(&mut self, v: VReg) {
        self.vregs |= 1 << v.0.min(7);
    }
    fn clear_vreg(&mut self, v: VReg) {
        self.vregs &= !(1 << v.0.min(7));
    }
}

impl DeadCode {
    /// Backward transfer: `live` is live-out, returns live-in.
    fn transfer(insn: &Insn, live: Live) -> Live {
        let mut l = live;
        match insn {
            Insn::LdImm { dst, .. } => l.clear_reg(*dst),
            Insn::Mov { dst, src } => {
                l.clear_reg(*dst);
                l.set_reg(*src);
            }
            Insn::LdCtxt { dst, .. } => l.clear_reg(*dst),
            Insn::StCtxt { src, .. } => l.set_reg(*src),
            Insn::Alu { dst, src, .. } => {
                // dst is both operand and destination.
                l.set_reg(*dst);
                l.set_reg(*src);
            }
            Insn::AluImm { dst, .. } => l.set_reg(*dst),
            Insn::Jmp { .. } => {}
            Insn::JmpIf { lhs, rhs, .. } => {
                l.set_reg(*lhs);
                l.set_reg(*rhs);
            }
            Insn::JmpIfImm { lhs, .. } => l.set_reg(*lhs),
            Insn::MapLookup { dst, key, .. } => {
                l.clear_reg(*dst);
                l.set_reg(*key);
            }
            Insn::MapUpdate { key, value, .. } => {
                l.clear_reg(Reg(0));
                l.set_reg(*key);
                l.set_reg(*value);
            }
            Insn::MapDelete { key, .. } => {
                l.clear_reg(Reg(0));
                l.set_reg(*key);
            }
            Insn::VectorLdMap { dst, .. } | Insn::VectorLdCtxt { dst, .. } => l.clear_vreg(*dst),
            Insn::VectorPush { dst, src } => {
                l.set_vreg(*dst);
                l.set_reg(*src);
            }
            Insn::VectorClear { dst } => l.clear_vreg(*dst),
            Insn::MatMul { dst, src, .. } => {
                l.clear_vreg(*dst);
                l.set_vreg(*src);
            }
            Insn::VecMap { dst, .. } => l.set_vreg(*dst),
            Insn::ScalarVal { dst, src, .. } => {
                l.clear_reg(*dst);
                l.set_vreg(*src);
            }
            Insn::CallMl { src, .. } => {
                l.clear_reg(Reg(0));
                l.clear_reg(Reg(1));
                l.set_vreg(*src);
            }
            Insn::Call { .. } => {
                // Helpers return in r0 and may read r2..r4.
                l.clear_reg(Reg(0));
                l.set_reg(Reg(2));
                l.set_reg(Reg(3));
                l.set_reg(Reg(4));
            }
            Insn::DpAggregate { dst, .. } => l.clear_reg(*dst),
            // The verdict is read from r0 at both exits.
            Insn::Exit | Insn::TailCall { .. } => {
                l = Live::default();
                l.set_reg(Reg(0));
            }
        }
        l
    }

    /// Whether removing this instruction is observable beyond its
    /// register definition. Side-effecting or possibly-faulting
    /// instructions stay: map ops (LRU lookups touch recency), vector
    /// pushes (capacity fault), `MatMul`/`VecMap`/`CallMl` (shape
    /// faults, guard counters), helpers and `DpAggregate` (RNG stream,
    /// effects, privacy ledger).
    fn pure_def(insn: &Insn) -> Option<PureDef> {
        match insn {
            Insn::LdImm { dst, .. }
            | Insn::Mov { dst, .. }
            | Insn::LdCtxt { dst, .. }
            | Insn::Alu { dst, .. }
            | Insn::AluImm { dst, .. }
            | Insn::ScalarVal { dst, .. } => Some(PureDef::Scalar(*dst)),
            Insn::VectorClear { dst } | Insn::VectorLdCtxt { dst, .. } => {
                Some(PureDef::Vector(*dst))
            }
            _ => None,
        }
    }
}

/// What a pure instruction defines (for dead-write removal).
enum PureDef {
    Scalar(Reg),
    Vector(VReg),
}

impl Pass for DeadCode {
    fn name(&self) -> &'static str {
        "dead-code"
    }

    fn run(&self, code: &mut Vec<Insn>) -> bool {
        if code.is_empty() {
            return false;
        }
        let n = code.len();
        // Backward liveness to fixpoint (handles back edges).
        let mut live_in = vec![Live::default(); n];
        loop {
            let mut stable = true;
            for i in (0..n).rev() {
                let insn = &code[i];
                let mut out = Live::default();
                if !insn.is_terminator() {
                    match insn {
                        Insn::Jmp { target } => {
                            if *target < n {
                                out = out.union(live_in[*target]);
                            }
                        }
                        Insn::JmpIf { target, .. } | Insn::JmpIfImm { target, .. } => {
                            if *target < n {
                                out = out.union(live_in[*target]);
                            }
                            if i + 1 < n {
                                out = out.union(live_in[i + 1]);
                            }
                        }
                        _ => {
                            if i + 1 < n {
                                out = out.union(live_in[i + 1]);
                            }
                        }
                    }
                }
                let inn = Self::transfer(insn, out);
                if inn != live_in[i] {
                    live_in[i] = inn;
                    stable = false;
                }
            }
            if stable {
                break;
            }
        }
        // live_out[i] recomputed from successors for the removal scan.
        let live_out = |i: usize| -> Live {
            let insn = &code[i];
            let mut out = Live::default();
            if !insn.is_terminator() {
                match insn {
                    Insn::Jmp { target } => {
                        if *target < n {
                            out = out.union(live_in[*target]);
                        }
                    }
                    Insn::JmpIf { target, .. } | Insn::JmpIfImm { target, .. } => {
                        if *target < n {
                            out = out.union(live_in[*target]);
                        }
                        if i + 1 < n {
                            out = out.union(live_in[i + 1]);
                        }
                    }
                    _ => {
                        if i + 1 < n {
                            out = out.union(live_in[i + 1]);
                        }
                    }
                }
            }
            out
        };
        let mut keep = vec![true; n];
        for i in 0..n {
            // A self-move is a no-op regardless of liveness.
            if let Insn::Mov { dst, src } = &code[i] {
                if dst == src {
                    keep[i] = false;
                    continue;
                }
            }
            if let Some(def) = DeadCode::pure_def(&code[i]) {
                let out = live_out(i);
                let dead = match def {
                    PureDef::Scalar(r) => !out.reg(r),
                    PureDef::Vector(v) => !out.vreg(v),
                };
                if dead {
                    keep[i] = false;
                }
            }
        }
        // Dead context stores: a StCtxt overwritten by another StCtxt
        // to the same field later in the same block, with no read of
        // that field (LdCtxt or a VectorLdCtxt window covering it) in
        // between. Stores that survive to the block end are observable
        // (at action exit, or by later blocks) and stay.
        let lead = leaders(code);
        for i in 0..n {
            let Insn::StCtxt { field, .. } = code[i] else {
                continue;
            };
            let mut j = i + 1;
            while j < n && !lead[j] {
                match code[j] {
                    Insn::StCtxt { field: f2, .. } if f2 == field => {
                        keep[i] = false;
                        break;
                    }
                    Insn::LdCtxt { field: f2, .. } if f2 == field => break,
                    Insn::VectorLdCtxt { base, len, .. }
                        if field.0 >= base.0 && (field.0 as u32) < base.0 as u32 + len as u32 =>
                    {
                        break;
                    }
                    ref insn if insn.is_terminator() || insn.jump_target().is_some() => break,
                    _ => {}
                }
                j += 1;
            }
        }
        compact(code, &keep)
    }
}

// ---------------------------------------------------------------------
// Branch folding and unreachable-code elimination
// ---------------------------------------------------------------------

/// Jump threading, jump-to-next removal, and unreachable-code
/// elimination with jump-target rewriting.
pub struct BranchFold;

impl BranchFold {
    /// Follows a chain of unconditional jumps from `start`, returning
    /// the final target. Cycle-guarded (a `Jmp` cycle is a verified
    /// back edge; threading stops rather than spinning).
    fn thread(code: &[Insn], start: usize) -> usize {
        let mut t = start;
        let mut hops = 0usize;
        while hops <= code.len() {
            match code.get(t) {
                Some(Insn::Jmp { target }) if *target != t => {
                    t = *target;
                    hops += 1;
                }
                _ => break,
            }
        }
        t
    }
}

impl Pass for BranchFold {
    fn name(&self) -> &'static str {
        "branch-fold"
    }

    fn run(&self, code: &mut Vec<Insn>) -> bool {
        let n = code.len();
        let mut changed = false;
        // 1. Jump threading against a snapshot of the original code,
        //    so rewrite order cannot matter. A jump that lands on a
        //    terminator becomes that terminator (Exit / TailCall are
        //    pure control, safe to duplicate).
        let snapshot = code.clone();
        for i in 0..n {
            let Some(t0) = snapshot[i].jump_target() else {
                continue;
            };
            let t = Self::thread(&snapshot, t0);
            match code[i] {
                Insn::Jmp { .. } => {
                    if let Some(term @ (Insn::Exit | Insn::TailCall { .. })) = snapshot.get(t) {
                        code[i] = term.clone();
                        changed = true;
                    } else if t != t0 {
                        code[i] = Insn::Jmp { target: t };
                        changed = true;
                    }
                }
                Insn::JmpIf { .. } | Insn::JmpIfImm { .. } if t != t0 => {
                    match &mut code[i] {
                        Insn::JmpIf { target, .. } | Insn::JmpIfImm { target, .. } => {
                            *target = t;
                        }
                        _ => unreachable!(),
                    }
                    changed = true;
                }
                _ => {}
            }
        }
        // 2. Jumps to the immediately following instruction are no-ops
        //    (comparisons are side-effect free).
        let mut keep = vec![true; n];
        for (i, insn) in code.iter().enumerate() {
            if let Some(t) = insn.jump_target() {
                if t == i + 1 {
                    keep[i] = false;
                }
            }
        }
        // 3. Unreachable-code elimination: forward reachability from
        //    instruction 0 over the post-threading CFG, treating
        //    removed jump-to-next instructions as fall-through.
        let mut reach = vec![false; n];
        let mut stack = vec![0usize];
        while let Some(i) = stack.pop() {
            if i >= n || reach[i] {
                continue;
            }
            reach[i] = true;
            let insn = &code[i];
            if !keep[i] {
                stack.push(i + 1);
                continue;
            }
            if insn.is_terminator() {
                continue;
            }
            match insn {
                Insn::Jmp { target } => stack.push(*target),
                Insn::JmpIf { target, .. } | Insn::JmpIfImm { target, .. } => {
                    stack.push(*target);
                    stack.push(i + 1);
                }
                _ => stack.push(i + 1),
            }
        }
        for i in 0..n {
            if !reach[i] {
                keep[i] = false;
            }
        }
        compact(code, &keep) || changed
    }
}

rkd_testkit::impl_json_unit_enum!(OptLevel { O0, O1, O2 });

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bytecode::AluOp;
    use crate::ctxt::Ctxt;
    use crate::dp::PrivacyLedger;
    use crate::interp::{run_action, ActionOutcome, ExecEnv};
    use crate::maps::{MapDef, MapInstance, MapKind};
    use crate::prog::{PrivacyPolicy, ProgramBuilder};
    use crate::table::MatchKind;
    use crate::verifier::{reverify_action, verify};
    use rkd_testkit::prop::Gen;
    use rkd_testkit::rng::{Rng, SeedableRng, SliceRandom, StdRng};

    const ALU_OPS: [AluOp; 12] = [
        AluOp::Add,
        AluOp::Sub,
        AluOp::Mul,
        AluOp::Div,
        AluOp::Mod,
        AluOp::And,
        AluOp::Or,
        AluOp::Xor,
        AluOp::Shl,
        AluOp::Shr,
        AluOp::Min,
        AluOp::Max,
    ];
    const CMP_OPS: [CmpOp; 6] = [
        CmpOp::Eq,
        CmpOp::Ne,
        CmpOp::Lt,
        CmpOp::Le,
        CmpOp::Gt,
        CmpOp::Ge,
    ];

    /// Random instruction from the safe subset the differential suites
    /// use, extended with context loads/stores so the specialization
    /// pass sees real traffic. Field 0 is readonly, field 1 scratch.
    fn gen_insn(g: &mut impl Rng) -> Insn {
        match g.gen_range(0u8..11) {
            0 => Insn::LdImm {
                dst: Reg(g.gen_range(0u8..8)),
                imm: g.gen_range(-1000i64..1000),
            },
            1 => Insn::Mov {
                dst: Reg(g.gen_range(0u8..8)),
                src: Reg(g.gen_range(0u8..8)),
            },
            2 => Insn::Alu {
                op: *ALU_OPS.choose(g).expect("nonempty"),
                dst: Reg(g.gen_range(0u8..8)),
                src: Reg(g.gen_range(0u8..8)),
            },
            3 => Insn::AluImm {
                op: *ALU_OPS.choose(g).expect("nonempty"),
                dst: Reg(g.gen_range(0u8..8)),
                imm: g.gen_range(-100i64..100),
            },
            4 => Insn::JmpIfImm {
                cmp: *CMP_OPS.choose(g).expect("nonempty"),
                lhs: Reg(g.gen_range(0u8..8)),
                imm: g.gen_range(-50i64..50),
                target: g.gen_range(0usize..64),
            },
            5 => Insn::MapUpdate {
                map: crate::maps::MapId(g.gen_range(0u16..2)),
                key: Reg(g.gen_range(0u8..8)),
                value: Reg(g.gen_range(0u8..8)),
            },
            6 => Insn::MapLookup {
                dst: Reg(g.gen_range(0u8..8)),
                map: crate::maps::MapId(g.gen_range(0u16..2)),
                key: Reg(g.gen_range(0u8..8)),
                default: g.gen_range(-5i64..5),
            },
            7 => Insn::VectorPush {
                dst: VReg(0),
                src: Reg(g.gen_range(0u8..8)),
            },
            8 => Insn::LdCtxt {
                dst: Reg(g.gen_range(0u8..8)),
                field: FieldId(g.gen_range(0u16..2)),
            },
            9 => Insn::StCtxt {
                field: FieldId(1),
                src: Reg(g.gen_range(0u8..8)),
            },
            _ => Insn::ScalarVal {
                dst: Reg(g.gen_range(0u8..8)),
                src: VReg(0),
                idx: g.gen_range(0u16..4),
            },
        }
    }

    /// Prologue-initialized, forward-jump-patched action (mirrors the
    /// integration harness in `tests/common`).
    fn make_action(raw: Vec<Insn>) -> Action {
        let mut code: Vec<Insn> = (0..8u8)
            .map(|r| Insn::LdImm {
                dst: Reg(r),
                imm: r as i64,
            })
            .collect();
        code.push(Insn::VectorClear { dst: VReg(0) });
        let body_start = code.len();
        let body_len = raw.len();
        for (i, mut insn) in raw.into_iter().enumerate() {
            if let Insn::JmpIfImm { target, .. } = &mut insn {
                let lo = i + 1;
                let span = (body_len - lo).max(1);
                *target = body_start + lo + (*target % span);
            }
            code.push(insn);
        }
        code.push(Insn::LdImm {
            dst: Reg(0),
            imm: 0,
        });
        code.push(Insn::Exit);
        Action::new("generated", code)
    }

    /// Routes a generated action through the real verifier; `None`
    /// when rejected (the properties only cover admitted programs).
    fn admit(action: &Action) -> Option<u64> {
        let mut b = ProgramBuilder::new("opt-prop");
        let ro = b.field_readonly("ro");
        b.field_scratch("scratch");
        b.map("h", MapKind::Hash, 32);
        b.map("r", MapKind::RingBuf, 8);
        let act = b.action(action.clone());
        b.table("t", "hook", &[ro], MatchKind::Exact, Some(act), 4);
        verify(b.build()).ok().map(|v| v.worst_case_insns()[0])
    }

    struct Fx {
        ctxt: Ctxt,
        maps: Vec<MapInstance>,
        rng: StdRng,
        ledger: PrivacyLedger,
    }

    impl Fx {
        fn new() -> Fx {
            let hash = MapInstance::new(&MapDef {
                name: "h".into(),
                kind: MapKind::Hash,
                capacity: 32,
                shared: false,
                per_cpu: false,
            })
            .unwrap();
            let ring = MapInstance::new(&MapDef {
                name: "r".into(),
                kind: MapKind::RingBuf,
                capacity: 8,
                shared: false,
                per_cpu: false,
            })
            .unwrap();
            Fx {
                ctxt: Ctxt::from_values(vec![7, 3]),
                maps: vec![hash, ring],
                rng: StdRng::seed_from_u64(99),
                ledger: PrivacyLedger::new(10_000),
            }
        }

        fn run(&mut self, action: &Action, fuel: u64, arg: i64) -> ActionOutcome {
            let tensors = Vec::new();
            let models = Vec::new();
            let mut env = ExecEnv {
                ctxt: &mut self.ctxt,
                maps: &mut self.maps,
                tensors: &tensors,
                models: &models,
                tick: 5,
                rng: &mut self.rng,
                ledger: &mut self.ledger,
                privacy: PrivacyPolicy::default(),
                ml_stats: &mut [],
                time_ml: false,
            };
            run_action(action, fuel, arg, &mut env).expect("admitted action terminates")
        }
    }

    /// Interprets `original` and `rewritten` on identical fixtures and
    /// asserts identical observable behaviour (the rewritten body may
    /// execute fewer instructions, never more).
    fn assert_same_semantics(original: &Action, rewritten: &Action, fuel: u64, arg: i64) {
        let mut fa = Fx::new();
        let a = fa.run(original, fuel, arg);
        let mut fb = Fx::new();
        let b = fb.run(rewritten, fuel, arg);
        assert_eq!(a.verdict, b.verdict, "verdict diverged");
        assert_eq!(a.effects, b.effects, "effects diverged");
        assert_eq!(a.tail_call, b.tail_call, "tail call diverged");
        assert_eq!(a.guard_trips, b.guard_trips, "guard trips diverged");
        assert!(
            b.insns_executed <= a.insns_executed,
            "optimization increased executed instructions ({} -> {})",
            a.insns_executed,
            b.insns_executed
        );
        assert_eq!(fa.ctxt, fb.ctxt, "context diverged");
        for (x, y) in fa.maps.iter_mut().zip(fb.maps.iter_mut()) {
            assert_eq!(
                x.aggregate_sum(),
                y.aggregate_sum(),
                "map contents diverged"
            );
            assert_eq!(x.len(), y.len(), "map size diverged");
        }
    }

    fn gen_admitted(g: &mut Gen) -> Option<(Action, u64, i64)> {
        let len = g.scaled_len(0, 48);
        let raw: Vec<_> = (0..len).map(|_| gen_insn(g)).collect();
        let arg = g.gen_range(-1000i64..1000);
        let action = make_action(raw);
        admit(&action).map(|fuel| (action, fuel, arg))
    }

    fn single_pass_preserves(g: &mut Gen, pass: &dyn Pass) {
        let Some((action, fuel, arg)) = gen_admitted(g) else {
            return;
        };
        let mut code = action.code.clone();
        pass.run(&mut code);
        assert!(code.len() <= action.code.len(), "pass grew the body");
        let rewritten = Action {
            name: action.name.clone(),
            code,
            loop_bound: action.loop_bound,
        };
        assert_same_semantics(&action, &rewritten, fuel, arg);
    }

    rkd_testkit::prop_check!(const_fold_preserves_semantics, cases = 256, |g| {
        single_pass_preserves(g, &ConstFold);
    });

    rkd_testkit::prop_check!(specialize_preserves_semantics, cases = 256, |g| {
        single_pass_preserves(g, &Specialize);
    });

    rkd_testkit::prop_check!(dead_code_preserves_semantics, cases = 256, |g| {
        single_pass_preserves(g, &DeadCode);
    });

    rkd_testkit::prop_check!(branch_fold_preserves_semantics, cases = 256, |g| {
        single_pass_preserves(g, &BranchFold);
    });

    rkd_testkit::prop_check!(pipeline_preserves_and_reverifies, cases = 256, |g| {
        let Some((action, fuel, arg)) = gen_admitted(g) else {
            return;
        };
        let opt = optimize(&action, OptLevel::O2);
        assert_same_semantics(&action, &opt.action, fuel, arg);
        // Meta-safety: pipeline output must re-pass the verifier.
        assert!(
            admit(&opt.action).is_some(),
            "optimized body failed re-verification"
        );
    });

    rkd_testkit::prop_check!(pipeline_is_idempotent, cases = 256, |g| {
        let Some((action, _, _)) = gen_admitted(g) else {
            return;
        };
        let once = optimize(&action, OptLevel::O2);
        let twice = optimize(&once.action, OptLevel::O2);
        assert!(
            twice.fired.is_empty(),
            "second pipeline run fired {:?}",
            twice.fired
        );
        assert_eq!(once.action.code, twice.action.code);
    });

    rkd_testkit::prop_check!(pipeline_reaches_fixpoint_within_bound, cases = 256, |g| {
        let Some((action, _, _)) = gen_admitted(g) else {
            return;
        };
        let opt = optimize(&action, OptLevel::O2);
        // The last round must be a clean no-change round strictly
        // inside the bound — hitting the bound means no fixpoint.
        assert!(
            opt.rounds < MAX_FIXPOINT_ROUNDS,
            "pipeline did not reach fixpoint in {} rounds",
            MAX_FIXPOINT_ROUNDS
        );
    });

    rkd_testkit::prop_check!(pipeline_never_grows_instruction_count, cases = 256, |g| {
        let Some((action, _, _)) = gen_admitted(g) else {
            return;
        };
        let opt = optimize(&action, OptLevel::O2);
        assert!(opt.action.code.len() <= action.code.len());
    });

    #[test]
    fn opt_levels_order_and_default() {
        assert_eq!(OptLevel::default(), OptLevel::O2);
        assert!(passes_for(OptLevel::O0).is_empty());
        assert_eq!(passes_for(OptLevel::O1).len(), 3);
        assert_eq!(passes_for(OptLevel::O2).len(), 4);
    }

    #[test]
    fn ctxt_writes_unions_store_targets() {
        let a = Action::new(
            "w",
            vec![
                Insn::LdImm {
                    dst: Reg(0),
                    imm: 1,
                },
                Insn::StCtxt {
                    field: FieldId(3),
                    src: Reg(0),
                },
                Insn::StCtxt {
                    field: FieldId(1),
                    src: Reg(0),
                },
                Insn::StCtxt {
                    field: FieldId(3),
                    src: Reg(0),
                },
                Insn::Exit,
            ],
        );
        assert_eq!(ctxt_writes(&a), vec![FieldId(3), FieldId(1)]);
    }

    #[test]
    fn loop_bound_and_back_edges_survive_optimization() {
        // A verified counting loop: the optimizer must preserve the
        // loop (r1 is live through the back edge) and its bound.
        let a = Action::with_loop_bound(
            "loop",
            vec![
                Insn::LdImm {
                    dst: Reg(0),
                    imm: 0,
                },
                Insn::LdImm {
                    dst: Reg(1),
                    imm: 10,
                },
                Insn::AluImm {
                    op: AluOp::Sub,
                    dst: Reg(1),
                    imm: 1,
                },
                Insn::AluImm {
                    op: AluOp::Add,
                    dst: Reg(0),
                    imm: 2,
                },
                Insn::JmpIfImm {
                    cmp: CmpOp::Gt,
                    lhs: Reg(1),
                    imm: 0,
                    target: 2,
                },
                Insn::Exit,
            ],
            16,
        );
        let fuel = admit(&a).expect("loop admits");
        let opt = optimize(&a, OptLevel::O2);
        assert_eq!(opt.action.loop_bound, Some(16));
        assert_same_semantics(&a, &opt.action, fuel, 0);
        let mut fx = Fx::new();
        assert_eq!(fx.run(&opt.action, fuel, 0).verdict, 20);
    }

    #[test]
    fn reverify_catches_broken_pass_output() {
        // A deliberately-broken pass that strips the terminator; the
        // re-verifier must reject its output (hard compile-time error
        // in the install path).
        struct StripExit;
        impl Pass for StripExit {
            fn name(&self) -> &'static str {
                "strip-exit"
            }
            fn run(&self, code: &mut Vec<Insn>) -> bool {
                let before = code.len();
                code.retain(|i| !matches!(i, Insn::Exit));
                code.len() != before
            }
        }
        let a = Action::new(
            "victim",
            vec![
                Insn::LdImm {
                    dst: Reg(0),
                    imm: 1,
                },
                Insn::Exit,
            ],
        );
        let mut b = ProgramBuilder::new("broken");
        let ro = b.field_readonly("ro");
        let act = b.action(a.clone());
        b.table("t", "hook", &[ro], MatchKind::Exact, Some(act), 4);
        let prog = b.build();
        let broken = optimize_with(&a, &[&StripExit], MAX_FIXPOINT_ROUNDS);
        assert!(reverify_action(0, &broken.action, &prog).is_err());
        // The honest pipeline's output re-verifies.
        let good = optimize(&a, OptLevel::O2);
        assert!(reverify_action(0, &good.action, &prog).is_ok());
    }
}
