//! Bounded lock-free single-producer/single-consumer ingress ring.
//!
//! The sharded datapath's ingress path ([`crate::shard`]) moves every
//! event batch from the driver thread to a shard worker. `std::sync::
//! mpsc` pays an allocation and a lock-shaped handoff per message;
//! this ring replaces it with the classic bounded SPSC design kernels
//! use for per-CPU work queues:
//!
//! - **Storage** — a power-of-two slot array. Head and tail are
//!   *monotonic* `u64` counters (never wrapped to the buffer index
//!   until the actual slot access), so "empty" is `head == tail`,
//!   "full" is `tail - head == capacity`, and a capacity-1 ring works
//!   with no special cases.
//! - **Cache-line padding** — head and tail live on their own 64-byte
//!   lines ([`CachePadded`]) so the producer's tail stores never
//!   false-share with the consumer's head stores.
//! - **Memory ordering** — exactly two Acquire/Release pairs carry
//!   all synchronization. The producer writes a slot, then publishes
//!   with `tail.store(Release)`; the consumer observes via
//!   `tail.load(Acquire)`, so the slot write *happens-before* the
//!   slot read. Symmetrically the consumer retires slots with
//!   `head.store(Release)` and the producer reuses them only after
//!   `head.load(Acquire)`, so the read happens-before the overwrite.
//!   SPSC suffices per shard because each ring has exactly one
//!   producer (the driver holds the unique [`Producer`]) and one
//!   consumer (the shard worker holds the unique [`Consumer`]) — no
//!   CAS loops, no ABA, each cursor has a single writer.
//! - **Batch reserve/commit** — [`Producer::push_deferred`] writes
//!   slots without publishing; one [`Producer::publish`] makes the
//!   whole run visible with a single Release store and at most one
//!   wakeup. [`Consumer::pop_run`] symmetrically drains a run of
//!   messages with one Acquire load and retires it with one Release
//!   store, which is what lets the shard worker amortize the
//!   control-plane epoch check over an entire ingress batch.
//! - **Spin-then-park wakeup** — an empty consumer spins briefly
//!   (ingress is bursty; the next batch is usually nanoseconds away),
//!   then advertises `sleeping` and parks. The producer checks the
//!   flag *after* publishing and unparks. The store-load race between
//!   "consumer: set sleeping, re-check tail" and "producer: publish
//!   tail, check sleeping" is closed with `SeqCst` on the flag plus
//!   the consumer re-checking the ring between advertising and
//!   parking; `park_timeout` bounds the cost of the theoretical
//!   missed-wakeup window to one tick.
//!
//! This module is the one place in `rkd-core` that uses `unsafe`
//! (slot storage is `UnsafeCell<MaybeUninit<T>>`); the crate is
//! otherwise `deny(unsafe_code)`. Every unsafe block carries its
//! invariant, and the whole protocol is property-tested (wrap, full,
//! capacity-1, cross-thread FIFO) in this file and stress-tested by
//! the shard suite.
#![allow(unsafe_code)]

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::Thread;
use std::time::{Duration, Instant};

/// Pads (and aligns) a value to a 64-byte cache line so the two ring
/// cursors never share a line.
#[repr(align(64))]
struct CachePadded<T>(T);

/// Spins before the consumer considers parking. Ingress is bursty:
/// when the driver is active the next message lands within the spin
/// budget and the park syscall is never paid.
const SPIN_BUDGET: u32 = 128;
/// `yield_now` rounds between spinning and parking (lets a same-CPU
/// producer run — the common case on the 1-CPU CI host).
const YIELD_BUDGET: u32 = 16;
/// Backstop for the theoretical missed-wakeup window: a parked
/// consumer re-checks the ring at least this often.
const PARK_TIMEOUT: Duration = Duration::from_millis(1);

/// State shared by the two endpoints. Slot ownership protocol:
/// slot `i` (indices modulo capacity) is writable by the producer iff
/// `head + capacity > tail` and readable by the consumer iff
/// `head < tail`; the Acquire/Release pairs on `head`/`tail` order
/// every access (see the module docs).
struct Shared<T> {
    buf: Box<[UnsafeCell<MaybeUninit<T>>]>,
    mask: u64,
    /// Consumer cursor: slots below it have been consumed. Written
    /// only by the consumer (Release), read by the producer (Acquire).
    head: CachePadded<AtomicU64>,
    /// Producer cursor: slots below it are initialized. Written only
    /// by the producer (Release), read by the consumer (Acquire).
    tail: CachePadded<AtomicU64>,
    /// Consumer advertises it is about to park (SeqCst on both sides
    /// — see the wakeup protocol in the module docs).
    sleeping: AtomicBool,
    /// Producer endpoint dropped: the consumer drains what remains
    /// and then reads this as end-of-stream.
    closed: AtomicBool,
    /// Consumer endpoint dropped: pushes fail fast instead of
    /// filling a ring nobody will drain.
    consumer_gone: AtomicBool,
    /// Thread to unpark; registered by the consumer before its first
    /// park. Locked by the producer only when `sleeping` was seen
    /// set, so it is never on the fast path.
    waiter: Mutex<Option<Thread>>,
    /// Messages pushed (producer-written, Relaxed — telemetry).
    pushed: AtomicU64,
    /// Times the producer found the ring full (telemetry).
    full_stalls: AtomicU64,
    /// Times the consumer parked (telemetry).
    parks: AtomicU64,
}

// SAFETY: `Shared<T>` is a channel: items of `T` are moved from the
// producer thread to the consumer thread through the slots, so `T:
// Send` is required and sufficient. The `UnsafeCell` slots are not
// accessed concurrently: the head/tail protocol (single writer per
// cursor, Acquire/Release pairs documented on the struct) gives each
// slot exactly one owner at a time.
unsafe impl<T: Send> Send for Shared<T> {}
// SAFETY: as above — shared `&Shared<T>` access from the two
// endpoint threads only touches a slot when the cursor protocol
// grants that endpoint exclusive ownership of it.
unsafe impl<T: Send> Sync for Shared<T> {}

impl<T> Drop for Shared<T> {
    fn drop(&mut self) {
        // Both endpoints are gone (`Arc` strong count reached zero),
        // so plain loads are fully synchronized by the `Arc` drop.
        let head = self.head.0.load(Ordering::Relaxed);
        let tail = self.tail.0.load(Ordering::Relaxed);
        for i in head..tail {
            let slot = &self.buf[(i & self.mask) as usize];
            // SAFETY: slots in `head..tail` were initialized by the
            // producer and never consumed; `&mut self` proves no
            // endpoint can race this drain.
            unsafe { (*slot.get()).assume_init_drop() };
        }
    }
}

/// Error returned by [`Producer::push`]; the rejected message is
/// handed back in both cases.
#[derive(Debug)]
pub enum PushError<T> {
    /// The ring is at capacity; retry after the consumer drains.
    Full(T),
    /// The consumer endpoint was dropped; the message can never be
    /// delivered.
    Disconnected(T),
}

/// The write endpoint. Exactly one exists per ring; dropping it
/// closes the stream (the consumer drains what remains, then sees
/// end-of-stream).
pub struct Producer<T> {
    shared: Arc<Shared<T>>,
    /// Local tail — the producer is the only writer, so it never
    /// reloads its own cursor.
    tail: u64,
    /// Cached head: refreshed (Acquire) only when the ring looks
    /// full, so the fast path does no cross-core load at all.
    head_cache: u64,
    /// Slots written since the last publish (deferred batch).
    unpublished: u64,
}

impl<T> Producer<T> {
    /// Ring capacity (power of two).
    pub fn capacity(&self) -> usize {
        self.shared.buf.len()
    }

    /// Messages currently buffered (approximate under concurrency).
    pub fn depth(&self) -> u64 {
        self.tail
            .saturating_sub(self.shared.head.0.load(Ordering::Relaxed))
    }

    /// A cloneable telemetry handle on this ring (depth and the
    /// stall/park counters) that does not borrow the endpoint.
    pub fn observer(&self) -> Observer<T> {
        Observer {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Writes a message into its slot *without publishing it* — the
    /// reserve half of batch reserve/commit. Call
    /// [`Producer::publish`] to make every deferred message visible
    /// with one Release store and at most one consumer wakeup.
    pub fn push_deferred(&mut self, item: T) -> Result<(), PushError<T>> {
        if self.shared.consumer_gone.load(Ordering::Acquire) {
            return Err(PushError::Disconnected(item));
        }
        let cap = self.shared.buf.len() as u64;
        if self.tail.wrapping_sub(self.head_cache) >= cap {
            self.head_cache = self.shared.head.0.load(Ordering::Acquire);
            if self.tail.wrapping_sub(self.head_cache) >= cap {
                self.shared.full_stalls.fetch_add(1, Ordering::Relaxed);
                return Err(PushError::Full(item));
            }
        }
        let slot = &self.shared.buf[(self.tail & self.shared.mask) as usize];
        // SAFETY: `tail - head <= capacity` was just established, so
        // this slot's previous occupant (if any) was consumed; the
        // producer has exclusive write ownership until the Release
        // store in `publish` hands it to the consumer.
        unsafe { (*slot.get()).write(item) };
        self.tail += 1;
        self.unpublished += 1;
        Ok(())
    }

    /// Publishes every deferred message (commit half of
    /// reserve/commit): one Release store of the tail, then one
    /// wakeup if the consumer advertised it was parking.
    pub fn publish(&mut self) {
        if self.unpublished == 0 {
            return;
        }
        self.shared
            .pushed
            .fetch_add(self.unpublished, Ordering::Relaxed);
        self.unpublished = 0;
        self.shared.tail.0.store(self.tail, Ordering::Release);
        self.wake();
    }

    /// Pushes and publishes one message.
    pub fn push(&mut self, item: T) -> Result<(), PushError<T>> {
        self.push_deferred(item)?;
        self.publish();
        Ok(())
    }

    /// Pushes one message, spinning (with `yield_now`) while the ring
    /// is full. Errors only if the consumer endpoint is gone.
    pub fn push_wait(&mut self, item: T) -> Result<(), T> {
        let mut item = item;
        loop {
            match self.push(item) {
                Ok(()) => return Ok(()),
                Err(PushError::Disconnected(it)) => return Err(it),
                Err(PushError::Full(it)) => {
                    item = it;
                    std::hint::spin_loop();
                    std::thread::yield_now();
                }
            }
        }
    }

    /// Unparks the consumer if (and only if) it advertised that it is
    /// parking. SeqCst pairs with the consumer's advertise-then-
    /// re-check sequence so either the producer sees `sleeping` or
    /// the consumer's re-check sees the new tail.
    fn wake(&self) {
        if self.shared.sleeping.swap(false, Ordering::SeqCst) {
            if let Some(t) = self
                .shared
                .waiter
                .lock()
                .expect("spsc waiter poisoned")
                .as_ref()
            {
                t.unpark();
            }
        }
    }
}

impl<T> Drop for Producer<T> {
    fn drop(&mut self) {
        // Anything written-but-unpublished is still handed over:
        // `Shared::drop` would leak-free reclaim it anyway, but the
        // consumer draining it preserves "every accepted message is
        // delivered or dropped with the ring", never silently lost
        // while the consumer is still live.
        self.publish();
        self.shared.closed.store(true, Ordering::Release);
        self.wake();
    }
}

/// The read endpoint. Exactly one exists per ring.
pub struct Consumer<T> {
    shared: Arc<Shared<T>>,
    /// Local head — the consumer is the only writer of this cursor.
    head: u64,
    /// Cached tail: refreshed (Acquire) when the cache is exhausted.
    tail_cache: u64,
}

impl<T> Consumer<T> {
    /// Ring capacity (power of two).
    pub fn capacity(&self) -> usize {
        self.shared.buf.len()
    }

    /// Messages currently visible to the consumer.
    pub fn len(&self) -> usize {
        self.shared
            .tail
            .0
            .load(Ordering::Acquire)
            .saturating_sub(self.head) as usize
    }

    /// True if no published message is pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Pops one message if any is published.
    pub fn try_pop(&mut self) -> Option<T> {
        if self.head == self.tail_cache {
            self.tail_cache = self.shared.tail.0.load(Ordering::Acquire);
            if self.head == self.tail_cache {
                return None;
            }
        }
        let slot = &self.shared.buf[(self.head & self.shared.mask) as usize];
        // SAFETY: `head < tail` (Acquire on tail ordered after the
        // producer's slot write), so the slot is initialized and the
        // consumer owns it until the Release store below recycles it.
        let item = unsafe { (*slot.get()).assume_init_read() };
        self.head += 1;
        self.shared.head.0.store(self.head, Ordering::Release);
        Some(item)
    }

    /// Drains up to `max` published messages into `out` with one
    /// Acquire load and one Release store — the batch half of the
    /// protocol that lets the shard worker run its control-plane
    /// epoch check once per run instead of once per message. Returns
    /// the number of messages appended.
    pub fn pop_run(&mut self, max: usize, out: &mut Vec<T>) -> usize {
        if self.head == self.tail_cache {
            self.tail_cache = self.shared.tail.0.load(Ordering::Acquire);
        }
        let avail = self.tail_cache.saturating_sub(self.head);
        let n = avail.min(max as u64);
        if n == 0 {
            return 0;
        }
        out.reserve(n as usize);
        for i in 0..n {
            let slot = &self.shared.buf[((self.head + i) & self.shared.mask) as usize];
            // SAFETY: `head + i < tail_cache <= tail`, so every slot
            // in the run is initialized (ordered by the Acquire load
            // of tail) and owned by the consumer until the single
            // Release store below.
            out.push(unsafe { (*slot.get()).assume_init_read() });
        }
        self.head += n;
        self.shared.head.0.store(self.head, Ordering::Release);
        n as usize
    }

    /// Like [`Consumer::pop_run`], but blocks (spin, then yield, then
    /// park) until at least one message is available or the producer
    /// endpoint is dropped and the ring is fully drained — in which
    /// case it returns 0, the end-of-stream signal.
    pub fn pop_run_wait(&mut self, max: usize, out: &mut Vec<T>) -> usize {
        self.pop_run_wait_timed(max, out).0
    }

    /// [`Consumer::pop_run_wait`] plus a wait measurement: how many
    /// nanoseconds the consumer spent idle (spinning, yielding,
    /// parking) before messages arrived — 0 when messages were
    /// already published. The clock is read lazily on the first empty
    /// poll, so the loaded fast path pays nothing; the span layer
    /// turns nonzero waits into `IngressPark` spans.
    pub fn pop_run_wait_timed(&mut self, max: usize, out: &mut Vec<T>) -> (usize, u64) {
        let mut spins = 0u32;
        let mut yields = 0u32;
        let mut wait_start: Option<Instant> = None;
        let waited = |start: Option<Instant>| start.map_or(0, |t0| t0.elapsed().as_nanos() as u64);
        loop {
            let n = self.pop_run(max, out);
            if n > 0 {
                return (n, waited(wait_start));
            }
            if self.shared.closed.load(Ordering::Acquire) {
                // The close raced a final publish: one more look at
                // the ring (the producer published before closing).
                return (self.pop_run(max, out), waited(wait_start));
            }
            if wait_start.is_none() {
                wait_start = Some(Instant::now());
            }
            if spins < SPIN_BUDGET {
                spins += 1;
                std::hint::spin_loop();
            } else if yields < YIELD_BUDGET {
                yields += 1;
                std::thread::yield_now();
            } else {
                self.park();
                spins = 0;
                yields = 0;
            }
        }
    }

    /// Advertise-recheck-park. The SeqCst store of `sleeping`
    /// followed by a SeqCst re-check of the tail pairs with the
    /// producer's publish-then-SeqCst-swap: either the producer's
    /// swap sees `sleeping == true` (and unparks), or this re-check
    /// sees the published tail (and skips the park). `park_timeout`
    /// bounds any window the argument misses.
    fn park(&mut self) {
        {
            let mut w = self.shared.waiter.lock().expect("spsc waiter poisoned");
            if w.is_none() {
                *w = Some(std::thread::current());
            }
        }
        self.shared.sleeping.store(true, Ordering::SeqCst);
        let published = self.shared.tail.0.load(Ordering::SeqCst);
        if published != self.head || self.shared.closed.load(Ordering::SeqCst) {
            self.shared.sleeping.store(false, Ordering::SeqCst);
            return;
        }
        self.shared.parks.fetch_add(1, Ordering::Relaxed);
        std::thread::park_timeout(PARK_TIMEOUT);
        self.shared.sleeping.store(false, Ordering::SeqCst);
    }
}

impl<T> Drop for Consumer<T> {
    fn drop(&mut self) {
        self.shared.consumer_gone.store(true, Ordering::Release);
        // Remaining items are reclaimed by `Shared::drop` once the
        // producer endpoint is gone too.
    }
}

/// Cloneable telemetry view of one ring (no endpoint borrow): feeds
/// the per-shard queue-depth counters in the merged obs snapshot.
pub struct Observer<T> {
    shared: Arc<Shared<T>>,
}

impl<T> Clone for Observer<T> {
    fn clone(&self) -> Self {
        Observer {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Observer<T> {
    /// Published-but-unconsumed messages (approximate under
    /// concurrency; exact when the ring is quiesced).
    pub fn depth(&self) -> u64 {
        let tail = self.shared.tail.0.load(Ordering::Acquire);
        tail.saturating_sub(self.shared.head.0.load(Ordering::Acquire))
    }

    /// Messages ever published.
    pub fn pushed(&self) -> u64 {
        self.shared.pushed.load(Ordering::Relaxed)
    }

    /// Times the producer found the ring full.
    pub fn full_stalls(&self) -> u64 {
        self.shared.full_stalls.load(Ordering::Relaxed)
    }

    /// Times the consumer parked waiting for ingress.
    pub fn parks(&self) -> u64 {
        self.shared.parks.load(Ordering::Relaxed)
    }
}

/// Creates a bounded SPSC ring holding at least `capacity` messages
/// (rounded up to a power of two, minimum 1).
pub fn ring<T>(capacity: usize) -> (Producer<T>, Consumer<T>) {
    let cap = capacity.max(1).next_power_of_two();
    let buf: Box<[UnsafeCell<MaybeUninit<T>>]> = (0..cap)
        .map(|_| UnsafeCell::new(MaybeUninit::uninit()))
        .collect();
    let shared = Arc::new(Shared {
        buf,
        mask: (cap - 1) as u64,
        head: CachePadded(AtomicU64::new(0)),
        tail: CachePadded(AtomicU64::new(0)),
        sleeping: AtomicBool::new(false),
        closed: AtomicBool::new(false),
        consumer_gone: AtomicBool::new(false),
        waiter: Mutex::new(None),
        pushed: AtomicU64::new(0),
        full_stalls: AtomicU64::new(0),
        parks: AtomicU64::new(0),
    });
    (
        Producer {
            shared: Arc::clone(&shared),
            tail: 0,
            head_cache: 0,
            unpublished: 0,
        },
        Consumer {
            shared,
            head: 0,
            tail_cache: 0,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use rkd_testkit::prop_check;
    use rkd_testkit::rng::{Rng, SeedableRng, StdRng};
    use rkd_testkit::stress::run_threads;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn fifo_and_wraparound() {
        let (mut tx, mut rx) = ring::<u64>(4);
        assert_eq!(tx.capacity(), 4);
        let mut next = 0u64;
        let mut expect = 0u64;
        // Many laps around a tiny ring: every index wraps repeatedly.
        for _ in 0..1000 {
            for _ in 0..3 {
                tx.push(next).unwrap();
                next += 1;
            }
            let mut out = Vec::new();
            rx.pop_run(usize::MAX, &mut out);
            for v in out {
                assert_eq!(v, expect);
                expect += 1;
            }
        }
        assert_eq!(expect, next);
    }

    #[test]
    fn full_ring_rejects_then_recovers() {
        let (mut tx, mut rx) = ring::<u32>(2);
        tx.push(1).unwrap();
        tx.push(2).unwrap();
        match tx.push(3) {
            Err(PushError::Full(3)) => {}
            other => panic!("expected Full(3), got {other:?}"),
        }
        assert_eq!(tx.observer().full_stalls(), 1);
        assert_eq!(rx.try_pop(), Some(1));
        tx.push(3).unwrap();
        assert_eq!(rx.try_pop(), Some(2));
        assert_eq!(rx.try_pop(), Some(3));
        assert_eq!(rx.try_pop(), None);
    }

    #[test]
    fn capacity_one_ping_pong_across_threads() {
        let (tx, rx) = ring::<u64>(1);
        assert_eq!(tx.capacity(), 1);
        let tx = Mutex::new(Some(tx));
        let rx = Mutex::new(Some(rx));
        const N: u64 = 20_000;
        run_threads(2, |who| {
            if who == 0 {
                let mut tx = tx.lock().unwrap().take().unwrap();
                for i in 0..N {
                    tx.push_wait(i).unwrap();
                }
            } else {
                let mut rx = rx.lock().unwrap().take().unwrap();
                let mut out = Vec::new();
                let mut expect = 0u64;
                while expect < N {
                    out.clear();
                    let n = rx.pop_run_wait(64, &mut out);
                    assert!(n > 0, "closed before all messages arrived");
                    for v in &out {
                        assert_eq!(*v, expect);
                        expect += 1;
                    }
                }
            }
        });
    }

    #[test]
    fn deferred_pushes_invisible_until_publish() {
        let (mut tx, mut rx) = ring::<u32>(8);
        tx.push_deferred(1).unwrap();
        tx.push_deferred(2).unwrap();
        assert!(rx.is_empty());
        assert_eq!(rx.try_pop(), None);
        tx.publish();
        assert_eq!(rx.len(), 2);
        assert_eq!(rx.try_pop(), Some(1));
        assert_eq!(rx.try_pop(), Some(2));
    }

    #[test]
    fn producer_drop_flushes_then_closes() {
        let (mut tx, mut rx) = ring::<u32>(8);
        tx.push(7).unwrap();
        tx.push_deferred(8).unwrap(); // unpublished at drop time
        drop(tx);
        let mut out = Vec::new();
        assert_eq!(rx.pop_run_wait(16, &mut out), 2);
        assert_eq!(out, vec![7, 8]);
        assert_eq!(rx.pop_run_wait(16, &mut out), 0, "end of stream");
    }

    #[test]
    fn consumer_drop_disconnects_producer() {
        let (mut tx, rx) = ring::<u32>(4);
        drop(rx);
        match tx.push(1) {
            Err(PushError::Disconnected(1)) => {}
            other => panic!("expected Disconnected, got {other:?}"),
        }
        assert!(tx.push_wait(2).is_err());
    }

    /// Every accepted message is dropped exactly once, whether it was
    /// consumed or still in flight when the endpoints died.
    #[test]
    fn in_flight_items_dropped_exactly_once() {
        #[derive(Debug)]
        struct Counted(Arc<AtomicUsize>);
        impl Drop for Counted {
            fn drop(&mut self) {
                self.0.fetch_add(1, Ordering::Relaxed);
            }
        }
        let drops = Arc::new(AtomicUsize::new(0));
        let (mut tx, mut rx) = ring::<Counted>(8);
        for _ in 0..6 {
            tx.push(Counted(Arc::clone(&drops))).unwrap();
        }
        // Consume two, leave four in the ring.
        drop(rx.try_pop());
        drop(rx.try_pop());
        assert_eq!(drops.load(Ordering::Relaxed), 2);
        drop(tx);
        drop(rx);
        assert_eq!(drops.load(Ordering::Relaxed), 6);
    }

    // Cross-thread FIFO under randomized batch sizes and ring
    // capacities — the wrap/full/empty edges all get exercised by
    // the skewed sizes.
    prop_check!(prop_cross_thread_fifo_random_batches, cases = 24, |g| {
        {
            let mut rng = StdRng::seed_from_u64(g.gen_range(0..u64::MAX));
            let cap = 1usize << (rng.next_u64() % 6); // 1..=32
            let total = 2_000 + (rng.next_u64() % 3_000);
            let (tx, rx) = ring::<u64>(cap);
            let tx = Mutex::new(Some(tx));
            let rx = Mutex::new(Some(rx));
            let batch_seed = rng.next_u64();
            run_threads(2, |who| {
                if who == 0 {
                    let mut tx = tx.lock().unwrap().take().unwrap();
                    let mut rng = StdRng::seed_from_u64(batch_seed);
                    let mut sent = 0u64;
                    while sent < total {
                        // Random-size deferred runs exercise
                        // reserve/commit batching under contention.
                        let run = 1 + rng.next_u64() % 7;
                        for _ in 0..run {
                            if sent >= total {
                                break;
                            }
                            let mut v = sent;
                            loop {
                                match tx.push_deferred(v) {
                                    Ok(()) => break,
                                    Err(PushError::Full(back)) => {
                                        v = back;
                                        tx.publish();
                                        std::thread::yield_now();
                                    }
                                    Err(PushError::Disconnected(_)) => {
                                        panic!("consumer died early")
                                    }
                                }
                            }
                            sent += 1;
                        }
                        tx.publish();
                    }
                } else {
                    let mut rx = rx.lock().unwrap().take().unwrap();
                    let mut rng = StdRng::seed_from_u64(batch_seed ^ 0xDEAD);
                    let mut out = Vec::new();
                    let mut expect = 0u64;
                    while expect < total {
                        out.clear();
                        let max = 1 + (rng.next_u64() % 16) as usize;
                        let n = rx.pop_run_wait(max, &mut out);
                        assert!(n > 0, "closed early at {expect}/{total}");
                        assert!(n <= max);
                        for v in &out {
                            assert_eq!(*v, expect, "FIFO violated");
                            expect += 1;
                        }
                    }
                }
            });
        }
    });

    #[test]
    fn observer_reports_depth_and_counters() {
        let (mut tx, mut rx) = ring::<u32>(8);
        let obs = tx.observer();
        assert_eq!(obs.depth(), 0);
        tx.push(1).unwrap();
        tx.push(2).unwrap();
        assert_eq!(obs.depth(), 2);
        assert_eq!(obs.pushed(), 2);
        rx.try_pop();
        assert_eq!(obs.depth(), 1);
    }
}
