//! The RMT bytecode instruction set.
//!
//! §3.1–3.2: table matches and actions "are compiled into RMT bytecode
//! instructions, such as memory accesses (e.g., `RMT_LD_CTXT`) and
//! compute instructions (e.g., `RMT_MATCH_CTXT`). An action may modify
//! the execution context … using instructions like `RMT_ST_CTXT`, or it
//! may call into an ML model using CALL instructions," and actions use
//! "a dedicated ML instruction set (e.g., `RMT_VECTOR_LD`,
//! `RMT_MAT_MUL`, `RMT_SCALAR_VAL`), which is patterned after hardware
//! ISA for neural processors."
//!
//! The machine model: 16 scalar registers (`r0..r15`, `i64`), 4 vector
//! registers (`v0..v3`, variable-length `Fix` vectors), the execution
//! context ([`crate::ctxt::Ctxt`]), program maps, a weight-tensor pool,
//! and the ML model zoo. Table matching itself (`RMT_MATCH_CTXT`) is
//! performed by the pipeline dispatcher, not inside action bodies.
//!
//! Calling conventions:
//! - entry argument (`Entry::arg`) arrives in `r9`;
//! - helper calls read arguments from `r2..r4` and return in `r0`;
//! - `CallMl` reads features from a vector register and returns the
//!   predicted class in `r0` and a Q16.16 confidence in `r1`.

use crate::ctxt::FieldId;
use crate::maps::MapId;
use crate::table::TableId;

/// Number of scalar registers.
pub const NUM_REGS: u8 = 16;
/// Number of vector registers.
pub const NUM_VREGS: u8 = 4;
/// Register receiving the matched entry's argument.
pub const ARG_REG: Reg = Reg(9);
/// Register receiving scalar results (`r0`).
pub const RET_REG: Reg = Reg(0);
/// Register receiving ML confidence (`r1`).
pub const CONF_REG: Reg = Reg(1);
/// Maximum vector length a program may build (bounds `RMT_VECTOR_LD`).
pub const MAX_VECTOR_LEN: usize = 256;

/// A scalar register index (`0..NUM_REGS`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Reg(pub u8);

/// A vector register index (`0..NUM_VREGS`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct VReg(pub u8);

/// Identifies a weight tensor in the program's tensor pool.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct TensorSlot(pub u16);

/// Identifies an ML model in the program's model zoo.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct ModelSlot(pub u16);

/// Scalar ALU operations. Division and modulo by zero are defined to
/// produce 0 (like eBPF), never a fault.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AluOp {
    /// Wrapping addition.
    Add,
    /// Wrapping subtraction.
    Sub,
    /// Wrapping multiplication.
    Mul,
    /// Division (0 if divisor is 0).
    Div,
    /// Modulo (0 if divisor is 0).
    Mod,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise xor.
    Xor,
    /// Left shift (by `rhs & 63`).
    Shl,
    /// Arithmetic right shift (by `rhs & 63`).
    Shr,
    /// Minimum.
    Min,
    /// Maximum.
    Max,
}

impl AluOp {
    /// Evaluates the operation on two scalars.
    pub fn eval(self, lhs: i64, rhs: i64) -> i64 {
        match self {
            AluOp::Add => lhs.wrapping_add(rhs),
            AluOp::Sub => lhs.wrapping_sub(rhs),
            AluOp::Mul => lhs.wrapping_mul(rhs),
            AluOp::Div => {
                if rhs == 0 {
                    0
                } else {
                    lhs.wrapping_div(rhs)
                }
            }
            AluOp::Mod => {
                if rhs == 0 {
                    0
                } else {
                    lhs.wrapping_rem(rhs)
                }
            }
            AluOp::And => lhs & rhs,
            AluOp::Or => lhs | rhs,
            AluOp::Xor => lhs ^ rhs,
            AluOp::Shl => lhs.wrapping_shl(rhs as u32 & 63),
            AluOp::Shr => lhs.wrapping_shr(rhs as u32 & 63),
            AluOp::Min => lhs.min(rhs),
            AluOp::Max => lhs.max(rhs),
        }
    }
}

/// Comparison operators for conditional jumps.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Signed less than.
    Lt,
    /// Signed less or equal.
    Le,
    /// Signed greater than.
    Gt,
    /// Signed greater or equal.
    Ge,
}

impl CmpOp {
    /// Evaluates the comparison.
    pub fn eval(self, lhs: i64, rhs: i64) -> bool {
        match self {
            CmpOp::Eq => lhs == rhs,
            CmpOp::Ne => lhs != rhs,
            CmpOp::Lt => lhs < rhs,
            CmpOp::Le => lhs <= rhs,
            CmpOp::Gt => lhs > rhs,
            CmpOp::Ge => lhs >= rhs,
        }
    }
}

/// Unary elementwise vector operations.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum VecUnary {
    /// Elementwise ReLU.
    Relu,
    /// Elementwise logistic sigmoid.
    Sigmoid,
}

/// Constrained helper functions available to actions.
///
/// §3.1: "an RMT program has access to a constrained set of kernel
/// functions that are dedicated to learning and inference." Helpers take
/// arguments in `r2..r4` and return in `r0`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Helper {
    /// Returns the machine's monotonic tick in `r0`.
    GetTick,
    /// Returns a deterministic pseudo-random `i64` in `r0` (xorshift;
    /// used for exploration policies).
    Rand,
    /// Emits a prefetch request for `r3` pages starting at page `r2`.
    /// Subject to rate-limit guards.
    EmitPrefetch,
    /// Emits a task-migration decision (`r2 != 0` = migrate).
    EmitMigrate,
    /// Emits a generic resource hint (`kind = r2, a = r3, b = r4`);
    /// subject to rate-limit guards.
    EmitHint,
}

impl Helper {
    /// Stable helper name used in verifier diagnostics.
    pub fn name(self) -> &'static str {
        match self {
            Helper::GetTick => "get_tick",
            Helper::Rand => "rand",
            Helper::EmitPrefetch => "emit_prefetch",
            Helper::EmitMigrate => "emit_migrate",
            Helper::EmitHint => "emit_hint",
        }
    }

    /// Whether the helper emits a resource-consuming effect (the class
    /// the verifier's interference pass rate-limits).
    pub fn emits_resource(self) -> bool {
        matches!(self, Helper::EmitPrefetch | Helper::EmitHint)
    }
}

/// One RMT bytecode instruction.
#[derive(Clone, Debug, PartialEq)]
pub enum Insn {
    /// `dst = imm`.
    LdImm {
        /// Destination register.
        dst: Reg,
        /// Immediate value.
        imm: i64,
    },
    /// `dst = src`.
    Mov {
        /// Destination register.
        dst: Reg,
        /// Source register.
        src: Reg,
    },
    /// `RMT_LD_CTXT`: `dst = ctxt[field]`.
    LdCtxt {
        /// Destination register.
        dst: Reg,
        /// Context field to read.
        field: FieldId,
    },
    /// `RMT_ST_CTXT`: `ctxt[field] = src` (field must be writable).
    StCtxt {
        /// Context field to write.
        field: FieldId,
        /// Source register.
        src: Reg,
    },
    /// `dst = op(dst, src)`.
    Alu {
        /// Operation.
        op: AluOp,
        /// Destination (and left operand).
        dst: Reg,
        /// Right operand.
        src: Reg,
    },
    /// `dst = op(dst, imm)`.
    AluImm {
        /// Operation.
        op: AluOp,
        /// Destination (and left operand).
        dst: Reg,
        /// Immediate right operand.
        imm: i64,
    },
    /// Unconditional jump to instruction index `target`.
    Jmp {
        /// Target instruction index.
        target: usize,
    },
    /// Conditional jump: if `cmp(lhs, rhs)` then go to `target`.
    JmpIf {
        /// Comparison.
        cmp: CmpOp,
        /// Left operand register.
        lhs: Reg,
        /// Right operand register.
        rhs: Reg,
        /// Target instruction index.
        target: usize,
    },
    /// Conditional jump against an immediate.
    JmpIfImm {
        /// Comparison.
        cmp: CmpOp,
        /// Left operand register.
        lhs: Reg,
        /// Immediate right operand.
        imm: i64,
        /// Target instruction index.
        target: usize,
    },
    /// Map lookup: `dst = map[key]`, or `default` when absent.
    MapLookup {
        /// Destination register.
        dst: Reg,
        /// Map to query.
        map: MapId,
        /// Register holding the key.
        key: Reg,
        /// Value used when the key is absent.
        default: i64,
    },
    /// Map update: `map[key] = value` (kind-specific semantics; see
    /// [`crate::maps::MapInstance::update`]). Full-map errors are
    /// reported in `r0` (0 = ok, 1 = failed) rather than faulting.
    MapUpdate {
        /// Map to update.
        map: MapId,
        /// Register holding the key.
        key: Reg,
        /// Register holding the value.
        value: Reg,
    },
    /// Map delete; `r0 = 1` if something was removed else 0.
    MapDelete {
        /// Map to delete from.
        map: MapId,
        /// Register holding the key.
        key: Reg,
    },
    /// `RMT_VECTOR_LD` (ring form): loads a ring-buffer map's window
    /// into a vector register as fixed-point integers, oldest first.
    VectorLdMap {
        /// Destination vector register.
        dst: VReg,
        /// Ring-buffer map to snapshot.
        map: MapId,
    },
    /// `RMT_VECTOR_LD` (context form): loads `len` consecutive context
    /// fields starting at `base` into a vector register.
    VectorLdCtxt {
        /// Destination vector register.
        dst: VReg,
        /// First context field.
        base: FieldId,
        /// Number of fields.
        len: u16,
    },
    /// Appends `src` (as an integer, converted to fixed point) to a
    /// vector register; bounded by [`MAX_VECTOR_LEN`].
    VectorPush {
        /// Vector register to extend.
        dst: VReg,
        /// Scalar register appended.
        src: Reg,
    },
    /// Clears a vector register to length 0.
    VectorClear {
        /// Vector register to clear.
        dst: VReg,
    },
    /// `RMT_MAT_MUL`: `dst = tensors[tensor] * src` (matrix-vector).
    MatMul {
        /// Destination vector register.
        dst: VReg,
        /// Weight tensor in the program pool.
        tensor: TensorSlot,
        /// Input vector register.
        src: VReg,
    },
    /// Elementwise unary vector operation in place.
    VecMap {
        /// Operation.
        op: VecUnary,
        /// Vector register operated on.
        dst: VReg,
    },
    /// `RMT_SCALAR_VAL`: `dst = round(src[idx])` as an integer; 0 when
    /// `idx` is out of range.
    ScalarVal {
        /// Destination scalar register.
        dst: Reg,
        /// Source vector register.
        src: VReg,
        /// Element index.
        idx: u16,
    },
    /// `CALL` into an ML model: features from `src`, class to `r0`,
    /// confidence (Q16.16 raw) to `r1`.
    CallMl {
        /// Model slot to consult.
        model: ModelSlot,
        /// Feature vector register.
        src: VReg,
    },
    /// `CALL` into a constrained helper.
    Call {
        /// Helper invoked.
        helper: Helper,
    },
    /// Differentially private aggregate read of a map's sum; charges
    /// the program's privacy budget. `dst` receives the noised sum.
    DpAggregate {
        /// Destination register.
        dst: Reg,
        /// Map whose values are summed.
        map: MapId,
    },
    /// `EXIT`: leave the RMT action and "enter regular kernel
    /// execution"; the pipeline proceeds to the next table. `r0` is the
    /// action's verdict.
    Exit,
    /// `TAIL_CALL`: cascade into another table's lookup/action with the
    /// current context; the pipeline ends after the chain completes.
    TailCall {
        /// Table to cascade into.
        table: TableId,
    },
}

impl Insn {
    /// Returns `true` for instructions that terminate the action.
    pub fn is_terminator(&self) -> bool {
        matches!(self, Insn::Exit | Insn::TailCall { .. })
    }

    /// Branch targets, if this is a jump.
    pub fn jump_target(&self) -> Option<usize> {
        match self {
            Insn::Jmp { target } => Some(*target),
            Insn::JmpIf { target, .. } => Some(*target),
            Insn::JmpIfImm { target, .. } => Some(*target),
            _ => None,
        }
    }
}

/// A named action: a straight bytecode body.
#[derive(Clone, Debug, PartialEq)]
pub struct Action {
    /// Action name (diagnostics and control plane).
    pub name: String,
    /// The instruction body.
    pub code: Vec<Insn>,
    /// If the body contains backward jumps, the declared maximum total
    /// loop iterations; `None` means loops are forbidden and any back
    /// edge is rejected by the verifier.
    pub loop_bound: Option<u32>,
}

impl Action {
    /// Creates a loop-free action.
    pub fn new(name: &str, code: Vec<Insn>) -> Action {
        Action {
            name: name.to_string(),
            code,
            loop_bound: None,
        }
    }

    /// Creates an action whose loops iterate at most `bound` times in
    /// total.
    pub fn with_loop_bound(name: &str, code: Vec<Insn>, bound: u32) -> Action {
        Action {
            name: name.to_string(),
            code,
            loop_bound: Some(bound),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alu_eval_matrix() {
        assert_eq!(AluOp::Add.eval(2, 3), 5);
        assert_eq!(AluOp::Sub.eval(2, 3), -1);
        assert_eq!(AluOp::Mul.eval(-4, 3), -12);
        assert_eq!(AluOp::Div.eval(7, 2), 3);
        assert_eq!(AluOp::Div.eval(7, 0), 0);
        assert_eq!(AluOp::Mod.eval(7, 4), 3);
        assert_eq!(AluOp::Mod.eval(7, 0), 0);
        assert_eq!(AluOp::And.eval(0b1100, 0b1010), 0b1000);
        assert_eq!(AluOp::Or.eval(0b1100, 0b1010), 0b1110);
        assert_eq!(AluOp::Xor.eval(0b1100, 0b1010), 0b0110);
        assert_eq!(AluOp::Shl.eval(1, 4), 16);
        assert_eq!(AluOp::Shr.eval(-16, 2), -4);
        assert_eq!(AluOp::Min.eval(3, -5), -5);
        assert_eq!(AluOp::Max.eval(3, -5), 3);
    }

    #[test]
    fn alu_wrapping_behavior() {
        assert_eq!(AluOp::Add.eval(i64::MAX, 1), i64::MIN);
        assert_eq!(AluOp::Shl.eval(1, 64), 1); // Shift masked to 0.
        assert_eq!(AluOp::Div.eval(i64::MIN, -1), i64::MIN); // Wrapping div.
    }

    #[test]
    fn cmp_eval_matrix() {
        assert!(CmpOp::Eq.eval(1, 1));
        assert!(CmpOp::Ne.eval(1, 2));
        assert!(CmpOp::Lt.eval(-1, 0));
        assert!(CmpOp::Le.eval(0, 0));
        assert!(CmpOp::Gt.eval(5, 4));
        assert!(CmpOp::Ge.eval(5, 5));
        assert!(!CmpOp::Lt.eval(0, -1));
    }

    #[test]
    fn helper_metadata() {
        assert_eq!(Helper::EmitPrefetch.name(), "emit_prefetch");
        assert!(Helper::EmitPrefetch.emits_resource());
        assert!(Helper::EmitHint.emits_resource());
        assert!(!Helper::GetTick.emits_resource());
        assert!(!Helper::EmitMigrate.emits_resource());
    }

    #[test]
    fn insn_classification() {
        assert!(Insn::Exit.is_terminator());
        assert!(Insn::TailCall { table: TableId(0) }.is_terminator());
        assert!(!Insn::LdImm {
            dst: Reg(0),
            imm: 0
        }
        .is_terminator());
        assert_eq!(Insn::Jmp { target: 7 }.jump_target(), Some(7));
        assert_eq!(
            Insn::JmpIfImm {
                cmp: CmpOp::Eq,
                lhs: Reg(0),
                imm: 0,
                target: 3
            }
            .jump_target(),
            Some(3)
        );
        assert_eq!(Insn::Exit.jump_target(), None);
    }

    #[test]
    fn action_constructors() {
        let a = Action::new("a", vec![Insn::Exit]);
        assert_eq!(a.loop_bound, None);
        let b = Action::with_loop_bound("b", vec![Insn::Exit], 10);
        assert_eq!(b.loop_bound, Some(10));
    }
}

rkd_testkit::impl_json_newtype!(Reg(u8));
rkd_testkit::impl_json_newtype!(VReg(u8));
rkd_testkit::impl_json_newtype!(TensorSlot(u16));
rkd_testkit::impl_json_newtype!(ModelSlot(u16));

rkd_testkit::impl_json_unit_enum!(AluOp {
    Add,
    Sub,
    Mul,
    Div,
    Mod,
    And,
    Or,
    Xor,
    Shl,
    Shr,
    Min,
    Max,
});

rkd_testkit::impl_json_unit_enum!(CmpOp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge
});

rkd_testkit::impl_json_unit_enum!(VecUnary { Relu, Sigmoid });

rkd_testkit::impl_json_unit_enum!(Helper {
    GetTick,
    Rand,
    EmitPrefetch,
    EmitMigrate,
    EmitHint,
});

rkd_testkit::impl_json_enum!(Insn {
    LdImm { dst, imm },
    Mov { dst, src },
    LdCtxt { dst, field },
    StCtxt { field, src },
    Alu { op, dst, src },
    AluImm { op, dst, imm },
    Jmp { target },
    JmpIf { cmp, lhs, rhs, target },
    JmpIfImm { cmp, lhs, imm, target },
    MapLookup { dst, map, key, default },
    MapUpdate { map, key, value },
    MapDelete { map, key },
    VectorLdMap { dst, map },
    VectorLdCtxt { dst, base, len },
    VectorPush { dst, src },
    VectorClear { dst },
    MatMul { dst, tensor, src },
    VecMap { op, dst },
    ScalarVal { dst, src, idx },
    CallMl { model, src },
    Call { helper },
    DpAggregate { dst, map },
    Exit,
    TailCall { table },
});

rkd_testkit::impl_json_struct!(Action {
    name,
    code,
    loop_bound
});
