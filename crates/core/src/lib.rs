//! # rkd-core — the in-kernel RMT virtual machine
//!
//! The primary contribution of *"Toward Reconfigurable Kernel Datapaths
//! with Learned Optimizations"* (HotOS '21): a reconfigurable-match-
//! table virtual machine that lets learned policies be installed into
//! kernel datapaths safely.
//!
//! The lifecycle mirrors the paper's Figure 1:
//!
//! 1. Build an [`prog::RmtProgram`] — tables at kernel hook points,
//!    match/action entries over the execution context
//!    ([`ctxt::Ctxt`]), bytecode actions ([`bytecode`]), eBPF-style
//!    maps ([`maps`]), and ML models ([`prog::ModelSpec`]).
//! 2. Admit it through the verifier (`rmt_verify()` →
//!    [`verifier::verify`]), which checks well-formedness, bounded
//!    execution, model cost budgets, interference guards, and privacy.
//! 3. Install it ([`ctrl::syscall_rmt`] /
//!    [`machine::RmtMachine::install`]) in interpreted ([`interp`]) or
//!    JIT-compiled ([`jit`]) mode.
//! 4. Kernel hooks fire ([`machine::RmtMachine::fire`]); actions match
//!    context, consult models, and emit effects; the control plane
//!    retunes entries and hot-swaps models as workloads drift.
//!
//! # Examples
//!
//! ```
//! use rkd_core::bytecode::{Action, Insn, Reg};
//! use rkd_core::ctxt::Ctxt;
//! use rkd_core::machine::{ExecMode, RmtMachine};
//! use rkd_core::prog::ProgramBuilder;
//! use rkd_core::table::MatchKind;
//! use rkd_core::verifier::verify;
//!
//! let mut b = ProgramBuilder::new("hello");
//! let pid = b.field_readonly("pid");
//! let act = b.action(Action::new(
//!     "ret1",
//!     vec![Insn::LdImm { dst: Reg(0), imm: 1 }, Insn::Exit],
//! ));
//! b.table("t", "my_hook", &[pid], MatchKind::Exact, Some(act), 16);
//! let verified = verify(b.build()).unwrap();
//!
//! let mut vm = RmtMachine::new();
//! vm.install(verified, ExecMode::Jit).unwrap();
//! let mut ctxt = Ctxt::from_values(vec![42]);
//! assert_eq!(vm.fire("my_hook", &mut ctxt).verdict(), Some(1));
//! ```

#![warn(missing_docs)]
// `deny`, not `forbid`: the SPSC ingress ring ([`spsc`]) is the one
// audited exception (slot storage is `UnsafeCell<MaybeUninit<T>>`)
// and opts in with a module-scoped allow; everything else stays
// unsafe-free.
#![deny(unsafe_code)]

pub mod bytecode;
pub mod ctrl;
pub mod ctxt;
pub mod dp;
pub mod error;
pub mod guard;
pub mod interp;
pub mod jit;
pub mod journal;
pub mod machine;
pub mod maps;
pub mod obs;
pub mod opt;
pub mod prog;
pub mod shard;
pub mod snapshot;
pub mod spsc;
pub mod table;
pub mod verifier;

pub use error::{VerifyError, VmError};
pub use machine::RmtMachine;
