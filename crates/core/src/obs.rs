//! Datapath observability: latency histograms, machine counters, and a
//! bounded trace ring.
//!
//! §3.1 puts monitoring maps and a control-plane API at the center of
//! the learned-datapath loop — the control plane "relies on past
//! prediction accuracy to detect workload changes". That loop needs a
//! measurement substrate before it can optimize anything, and the
//! substrate itself must be cheap enough to leave on: everything here
//! is integer-only, fixed-size, and allocation-free on the hot path.
//!
//! Three primitives, all always-compiled (runtime-configurable, never
//! feature-gated):
//!
//! - [`Log2Hist`] — power-of-two bucketed latency histograms (the
//!   kernel's classic `bcc`/`bpftrace` `hist()` shape), fed with
//!   per-hook and per-program `fire()` latencies by
//!   [`crate::machine::RmtMachine`].
//! - [`MachineCounters`] — machine-wide event counters (fires, table
//!   hits/misses, aborts, guard trips, rate-limit drops, tail calls,
//!   tail-chain overflows, and decision-cache
//!   hits/misses/invalidations) complementing the per-program
//!   [`crate::machine::ProgStats`].
//! - [`TraceRing`] — a bounded ring of [`TraceEvent`]s with an
//!   explicit `dropped` counter: when the ring is full the oldest
//!   event is overwritten *and counted* — events are never lost
//!   silently.
//!
//! Snapshots ([`ObsSnapshot`]) serialize through the hermetic
//! `rkd-testkit` JSON codec for offline analysis; the control plane
//! exposes them via `CtrlRequest::{HookStats, TraceRead, ObsReset}`.

use std::collections::VecDeque;

/// Number of log2 buckets in a [`Log2Hist`] (covers the full `u64`
/// range: bucket 0 holds the value 0, bucket `i` holds
/// `[2^(i-1), 2^i)`, and the last bucket absorbs everything above).
pub const LOG2_BUCKETS: usize = 64;

/// A log2-bucketed histogram of `u64` samples (latencies in
/// nanoseconds, sizes, counts — any non-negative integer measure).
///
/// Recording is branch-light integer arithmetic: one `leading_zeros`,
/// one array increment, and four counter updates. No allocation ever.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Log2Hist {
    /// Bucket counters; see [`LOG2_BUCKETS`] for the bucket layout.
    counts: [u64; LOG2_BUCKETS],
    /// Total number of recorded samples.
    count: u64,
    /// Saturating sum of all recorded samples.
    sum: u64,
    /// Smallest recorded sample (`u64::MAX` when empty).
    min: u64,
    /// Largest recorded sample (0 when empty).
    max: u64,
}

impl Default for Log2Hist {
    fn default() -> Log2Hist {
        Log2Hist::new()
    }
}

impl Log2Hist {
    /// Creates an empty histogram.
    pub const fn new() -> Log2Hist {
        Log2Hist {
            counts: [0; LOG2_BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// The bucket index a value lands in.
    #[inline]
    pub fn bucket_of(value: u64) -> usize {
        ((64 - value.leading_zeros()) as usize).min(LOG2_BUCKETS - 1)
    }

    /// Inclusive lower bound of a bucket.
    pub fn bucket_floor(index: usize) -> u64 {
        match index {
            0 => 0,
            i => 1u64 << (i - 1),
        }
    }

    /// Inclusive upper bound of a bucket.
    pub fn bucket_ceil(index: usize) -> u64 {
        if index + 1 >= LOG2_BUCKETS {
            u64::MAX
        } else {
            (1u64 << index) - 1
        }
    }

    /// Records one sample.
    #[inline]
    pub fn record(&mut self, value: u64) {
        self.counts[Self::bucket_of(value)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        if value < self.min {
            self.min = value;
        }
        if value > self.max {
            self.max = value;
        }
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Saturating sum of recorded samples.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest recorded sample, if any.
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest recorded sample, if any.
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Integer mean of recorded samples (0 when empty).
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }

    /// The raw bucket counters.
    pub fn buckets(&self) -> &[u64; LOG2_BUCKETS] {
        &self.counts
    }

    /// Approximate percentile (`p` in 0..=100): the inclusive upper
    /// bound of the bucket where the cumulative count first reaches
    /// `p%` of the samples, clamped into `[min, max]`. Returns 0 for an
    /// empty histogram.
    pub fn percentile(&self, p: u64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        // ceil(count * p / 100), computed in u128 to dodge overflow.
        let rank = ((self.count as u128 * p.min(100) as u128).div_ceil(100)).max(1) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Self::bucket_ceil(i).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Log2Hist) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Clears all samples.
    pub fn reset(&mut self) {
        *self = Log2Hist::new();
    }
}

/// Machine-wide datapath counters, updated on every
/// [`crate::machine::RmtMachine::fire`]. All are cumulative since the
/// last [`crate::machine::RmtMachine::obs_reset`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MachineCounters {
    /// Hook firings that reached at least one installed program.
    pub fires: u64,
    /// Hook firings on hooks with no listeners (context assembly the
    /// embedding kernel could have skipped — see
    /// [`crate::machine::RmtMachine::hook_armed`]).
    pub fires_unarmed: u64,
    /// Table lookups that matched an entry.
    pub table_hits: u64,
    /// Table lookups that missed (default action or skip).
    pub table_misses: u64,
    /// Actions absorbed after a fault or privacy exhaustion.
    pub aborts: u64,
    /// Model-guard rails tripped.
    pub guard_trips: u64,
    /// Resource effects dropped by program rate limiters.
    pub rate_limit_drops: u64,
    /// Tail calls followed.
    pub tail_calls: u64,
    /// Pipelines terminated because the dynamic tail-call chain
    /// exceeded [`crate::machine::MAX_TAIL_CHAIN`].
    pub tail_chain_overflows: u64,
    /// Hook firings fully served from the megaflow-style decision
    /// cache (every table's match resolution replayed and validated).
    pub decision_cache_hits: u64,
    /// Cache-eligible firings that had to resolve at least one table
    /// lookup live (cold key, divergence, or stale generation).
    pub decision_cache_misses: u64,
    /// Subset of `decision_cache_misses` caused by a control-plane
    /// table/model mutation bumping the generation counter.
    pub decision_cache_invalidations: u64,
    /// Cached decisions evicted by the per-hook capacity bound.
    pub decision_cache_evictions: u64,
    /// Firings that skipped the cache because the hook's live tables
    /// are all exact-match (one hash probe — the cache cannot win).
    pub decision_cache_bypasses: u64,
}

/// What happened, for one [`TraceEvent`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceKind {
    /// A program finished its pipeline for one hook firing
    /// (`info` = last verdict, `i64::MIN` if no action ran). Only
    /// recorded when [`ObsConfig::trace_fires`] is on — per-fire
    /// tracing floods the ring on hot paths.
    Fire,
    /// An action faulted and was absorbed (`info` = table index).
    Abort,
    /// A tail call redirected the pipeline (`info` = target table).
    TailCall,
    /// The tail-call chain overflowed and the pipeline was terminated
    /// (`info` = table index that overflowed).
    TailChainOverflow,
    /// A resource effect was dropped by the rate limiter
    /// (`info` = table index).
    RateLimitDrop,
    /// One or more model guards tripped during an action
    /// (`info` = trip count).
    GuardTrip,
    /// A model was hot-swapped (`info` = model slot).
    ModelSwap,
    /// A program was installed (`info` = program id).
    Install,
    /// A program was removed (`info` = program id).
    Remove,
}

/// One datapath event in the [`TraceRing`]. Fixed-size and
/// integer-only so pushes never allocate.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// Machine tick when the event occurred.
    pub tick: u64,
    /// Program the event belongs to (0 for machine-level events).
    pub prog: u32,
    /// Event kind.
    pub kind: TraceKind,
    /// Kind-specific payload (see [`TraceKind`]).
    pub info: i64,
}

/// A bounded FIFO of [`TraceEvent`]s. When full, pushing overwrites
/// the oldest event and increments [`TraceRing::dropped`] — loss is
/// explicit, never silent.
#[derive(Clone, Debug)]
pub struct TraceRing {
    capacity: usize,
    events: VecDeque<TraceEvent>,
    dropped: u64,
}

impl TraceRing {
    /// Creates a ring holding at most `capacity` events (minimum 1).
    pub fn new(capacity: usize) -> TraceRing {
        let capacity = capacity.max(1);
        TraceRing {
            capacity,
            events: VecDeque::with_capacity(capacity),
            dropped: 0,
        }
    }

    /// Appends an event, evicting (and counting) the oldest if full.
    pub fn push(&mut self, event: TraceEvent) {
        if self.events.len() >= self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(event);
    }

    /// Removes and returns up to `max` events, oldest first.
    pub fn drain(&mut self, max: usize) -> Vec<TraceEvent> {
        let n = max.min(self.events.len());
        self.events.drain(..n).collect()
    }

    /// Events currently buffered.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the ring holds no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Cumulative events overwritten before being read.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Ring capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Clears buffered events and the dropped counter.
    pub fn reset(&mut self) {
        self.events.clear();
        self.dropped = 0;
    }

    /// Changes the capacity, evicting (and counting) oldest events if
    /// the new capacity is smaller than the current backlog.
    pub fn set_capacity(&mut self, capacity: usize) {
        self.capacity = capacity.max(1);
        while self.events.len() > self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
    }
}

/// Runtime configuration of the observability layer. The layer is
/// always compiled in; these knobs trade detail for overhead at run
/// time.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ObsConfig {
    /// Measure `fire()` latency into the per-hook/per-program
    /// histograms. Off leaves only the integer counters.
    pub timing: bool,
    /// Sample 1 in `2^sample_shift` firings for latency timing
    /// (0 = every firing). Sampling bounds clock-read overhead on very
    /// hot hooks; histograms remain statistically faithful. The default
    /// of 3 (1 in 8) keeps measured `fire()` overhead around 1% on
    /// microsecond-scale actions, where per-firing timing costs ~10%
    /// (two clock reads); drop to 0 for exact per-fire latency.
    pub sample_shift: u32,
    /// Trace every program pipeline completion ([`TraceKind::Fire`]).
    /// Off (default) traces only notable events — aborts, overflows,
    /// drops, guard trips, control-plane changes.
    pub trace_fires: bool,
    /// Trace ring capacity (events).
    pub trace_capacity: usize,
}

impl Default for ObsConfig {
    fn default() -> ObsConfig {
        ObsConfig {
            timing: true,
            sample_shift: 3,
            trace_fires: false,
            trace_capacity: 1024,
        }
    }
}

/// Machine-level observability state (owned by
/// [`crate::machine::RmtMachine`]; per-hook and per-program histograms
/// live next to their subjects to keep the hot path lookup-free).
#[derive(Clone, Debug)]
pub struct Obs {
    /// Active configuration.
    pub(crate) cfg: ObsConfig,
    /// Machine-wide counters.
    pub(crate) counters: MachineCounters,
    /// Datapath event ring.
    pub(crate) ring: TraceRing,
}

impl Obs {
    /// Creates the layer with the given configuration.
    pub fn new(cfg: ObsConfig) -> Obs {
        Obs {
            cfg,
            counters: MachineCounters::default(),
            ring: TraceRing::new(cfg.trace_capacity),
        }
    }
}

/// Per-hook statistics snapshot (control-plane `HookStats` payload).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HookStats {
    /// Hook name.
    pub hook: String,
    /// Firings of this hook since the last reset (armed only).
    pub fires: u64,
    /// Whole-fire latency histogram (nanoseconds).
    pub hist: Log2Hist,
}

/// Per-program latency snapshot.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ProgHist {
    /// Program id.
    pub prog: u32,
    /// Per-pipeline-run latency histogram (nanoseconds).
    pub hist: Log2Hist,
}

/// Drained slice of the trace ring (control-plane `TraceRead` payload).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceSnapshot {
    /// Drained events, oldest first.
    pub events: Vec<TraceEvent>,
    /// Cumulative dropped count at read time (not reset by reads).
    pub dropped: u64,
}

/// Full observability snapshot, serializable for offline analysis via
/// [`crate::snapshot::to_json_string`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ObsSnapshot {
    /// Machine tick at snapshot time.
    pub tick: u64,
    /// Machine-wide counters.
    pub counters: MachineCounters,
    /// Per-hook stats, sorted by hook name.
    pub hooks: Vec<HookStats>,
    /// Per-program latency histograms, sorted by program id.
    pub programs: Vec<ProgHist>,
    /// Trace events dropped so far.
    pub trace_dropped: u64,
    /// Trace events currently buffered (unread).
    pub trace_pending: u64,
}

rkd_testkit::impl_json_struct!(Log2Hist {
    counts,
    count,
    sum,
    min,
    max
});

rkd_testkit::impl_json_struct!(MachineCounters {
    fires,
    fires_unarmed,
    table_hits,
    table_misses,
    aborts,
    guard_trips,
    rate_limit_drops,
    tail_calls,
    tail_chain_overflows,
    decision_cache_hits,
    decision_cache_misses,
    decision_cache_invalidations,
    decision_cache_evictions,
    decision_cache_bypasses
});

rkd_testkit::impl_json_unit_enum!(TraceKind {
    Fire,
    Abort,
    TailCall,
    TailChainOverflow,
    RateLimitDrop,
    GuardTrip,
    ModelSwap,
    Install,
    Remove,
});

rkd_testkit::impl_json_struct!(TraceEvent {
    tick,
    prog,
    kind,
    info
});

rkd_testkit::impl_json_struct!(HookStats { hook, fires, hist });

rkd_testkit::impl_json_struct!(ProgHist { prog, hist });

rkd_testkit::impl_json_struct!(TraceSnapshot { events, dropped });

rkd_testkit::impl_json_struct!(ObsSnapshot {
    tick,
    counters,
    hooks,
    programs,
    trace_dropped,
    trace_pending
});

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_layout_covers_u64() {
        assert_eq!(Log2Hist::bucket_of(0), 0);
        assert_eq!(Log2Hist::bucket_of(1), 1);
        assert_eq!(Log2Hist::bucket_of(2), 2);
        assert_eq!(Log2Hist::bucket_of(3), 2);
        assert_eq!(Log2Hist::bucket_of(4), 3);
        assert_eq!(Log2Hist::bucket_of(u64::MAX), LOG2_BUCKETS - 1);
        for i in 0..LOG2_BUCKETS {
            assert!(Log2Hist::bucket_floor(i) <= Log2Hist::bucket_ceil(i));
            // Every bucket's bounds map back to a bucket no later than i
            // (the last bucket absorbs the truncated top).
            assert!(Log2Hist::bucket_of(Log2Hist::bucket_floor(i)) <= i);
        }
    }

    #[test]
    fn record_tracks_count_sum_min_max() {
        let mut h = Log2Hist::new();
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
        assert_eq!(h.mean(), 0);
        for v in [3u64, 100, 7, 0, 250] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 360);
        assert_eq!(h.min(), Some(0));
        assert_eq!(h.max(), Some(250));
        assert_eq!(h.mean(), 72);
        assert_eq!(h.buckets().iter().sum::<u64>(), 5);
    }

    #[test]
    fn percentile_is_monotone_and_bounded() {
        let mut h = Log2Hist::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let p50 = h.percentile(50);
        let p99 = h.percentile(99);
        assert!(p50 <= p99);
        assert!(p99 <= h.max().unwrap());
        assert!(p50 >= h.min().unwrap());
        // p50 of uniform 1..=1000 lands in the bucket holding 500.
        assert!((256..=1023).contains(&p50), "p50 = {p50}");
        assert_eq!(Log2Hist::new().percentile(50), 0);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = Log2Hist::new();
        let mut b = Log2Hist::new();
        a.record(5);
        b.record(500);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.min(), Some(5));
        assert_eq!(a.max(), Some(500));
        a.reset();
        assert_eq!(a.count(), 0);
    }

    fn ev(info: i64) -> TraceEvent {
        TraceEvent {
            tick: 1,
            prog: 1,
            kind: TraceKind::Abort,
            info,
        }
    }

    #[test]
    fn trace_ring_counts_every_drop() {
        let mut r = TraceRing::new(3);
        assert!(r.is_empty());
        for i in 0..5 {
            r.push(ev(i));
        }
        assert_eq!(r.len(), 3);
        assert_eq!(r.dropped(), 2, "the two evicted events are counted");
        let drained = r.drain(2);
        assert_eq!(drained.iter().map(|e| e.info).collect::<Vec<_>>(), [2, 3]);
        assert_eq!(r.len(), 1);
        assert_eq!(r.dropped(), 2, "draining is not dropping");
        r.reset();
        assert_eq!((r.len(), r.dropped()), (0, 0));
    }

    #[test]
    fn trace_ring_shrink_counts_evictions() {
        let mut r = TraceRing::new(4);
        for i in 0..4 {
            r.push(ev(i));
        }
        r.set_capacity(2);
        assert_eq!(r.len(), 2);
        assert_eq!(r.dropped(), 2);
        assert_eq!(r.capacity(), 2);
        // Zero capacity clamps to 1.
        let z = TraceRing::new(0);
        assert_eq!(z.capacity(), 1);
    }

    #[test]
    fn snapshots_round_trip_json() {
        let mut hist = Log2Hist::new();
        hist.record(42);
        hist.record(7_000);
        let snap = ObsSnapshot {
            tick: 9,
            counters: MachineCounters {
                fires: 2,
                table_hits: 1,
                table_misses: 1,
                ..MachineCounters::default()
            },
            hooks: vec![HookStats {
                hook: "h".into(),
                fires: 2,
                hist: hist.clone(),
            }],
            programs: vec![ProgHist { prog: 1, hist }],
            trace_dropped: 3,
            trace_pending: 0,
        };
        let json = rkd_testkit::json::to_string(&snap);
        let back: ObsSnapshot = rkd_testkit::json::from_str(&json).unwrap();
        assert_eq!(back, snap);

        let trace = TraceSnapshot {
            events: vec![
                ev(3),
                TraceEvent {
                    tick: 2,
                    prog: 7,
                    kind: TraceKind::TailChainOverflow,
                    info: -1,
                },
            ],
            dropped: 1,
        };
        let json = rkd_testkit::json::to_string(&trace);
        let back: TraceSnapshot = rkd_testkit::json::from_str(&json).unwrap();
        assert_eq!(back, trace);
    }
}
