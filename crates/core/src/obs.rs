//! Datapath observability: latency histograms, machine counters, and a
//! bounded trace ring.
//!
//! §3.1 puts monitoring maps and a control-plane API at the center of
//! the learned-datapath loop — the control plane "relies on past
//! prediction accuracy to detect workload changes". That loop needs a
//! measurement substrate before it can optimize anything, and the
//! substrate itself must be cheap enough to leave on: everything here
//! is integer-only, fixed-size, and allocation-free on the hot path.
//!
//! Five primitives, all always-compiled (runtime-configurable, never
//! feature-gated):
//!
//! - [`Log2Hist`] — power-of-two bucketed latency histograms (the
//!   kernel's classic `bcc`/`bpftrace` `hist()` shape), fed with
//!   per-hook and per-program `fire()` latencies by
//!   [`crate::machine::RmtMachine`].
//! - [`MachineCounters`] — machine-wide event counters (fires, table
//!   hits/misses, aborts, guard trips, rate-limit drops, tail calls,
//!   tail-chain overflows, and decision-cache
//!   hits/misses/invalidations) complementing the per-program
//!   [`crate::machine::ProgStats`].
//! - [`TraceRing`] — a bounded ring of [`TraceEvent`]s with an
//!   explicit `dropped` counter: when the ring is full the oldest
//!   event is overwritten *and counted* — events are never lost
//!   silently.
//! - [`ModelStats`] — per-(program, model-slot) prediction telemetry:
//!   predictions served, a per-class histogram, a sampled
//!   inference-latency [`Log2Hist`], and — once the control plane
//!   feeds ground truth back via `CtrlRequest::ReportOutcome` — an
//!   integer confusion matrix plus windowed prequential accuracy with
//!   a latched `drift_suspected` flag.
//! - [`FlightRecorder`] — a bounded ring of periodic downsampled
//!   [`FlightFrame`]s (counters + per-hook p50/p99 + per-model rolling
//!   accuracy) captured every N fires, so post-hoc "when did it
//!   regress" questions are answerable without external tooling.
//!
//! Snapshots ([`ObsSnapshot`]) serialize through the hermetic
//! `rkd-testkit` JSON codec for offline analysis; the control plane
//! exposes them via `CtrlRequest::{HookStats, TraceRead, ObsReset,
//! ReportOutcome, QueryModelStats, FlightRead}`. The [`export`]
//! submodule renders snapshots as Prometheus text exposition format
//! and JSON, optionally over a one-shot loopback HTTP responder.

pub mod export;
pub mod span;

use std::collections::VecDeque;

/// Number of log2 buckets in a [`Log2Hist`] (covers the full `u64`
/// range: bucket 0 holds the value 0, bucket `i` holds
/// `[2^(i-1), 2^i)`, and the last bucket absorbs everything above).
pub const LOG2_BUCKETS: usize = 64;

/// A log2-bucketed histogram of `u64` samples (latencies in
/// nanoseconds, sizes, counts — any non-negative integer measure).
///
/// Recording is branch-light integer arithmetic: one `leading_zeros`,
/// one array increment, and four counter updates. No allocation ever.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Log2Hist {
    /// Bucket counters; see [`LOG2_BUCKETS`] for the bucket layout.
    counts: [u64; LOG2_BUCKETS],
    /// Total number of recorded samples.
    count: u64,
    /// Saturating sum of all recorded samples.
    sum: u64,
    /// Smallest recorded sample (`u64::MAX` when empty).
    min: u64,
    /// Largest recorded sample (0 when empty).
    max: u64,
}

impl Default for Log2Hist {
    fn default() -> Log2Hist {
        Log2Hist::new()
    }
}

impl Log2Hist {
    /// Creates an empty histogram.
    pub const fn new() -> Log2Hist {
        Log2Hist {
            counts: [0; LOG2_BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// The bucket index a value lands in.
    #[inline]
    pub fn bucket_of(value: u64) -> usize {
        ((64 - value.leading_zeros()) as usize).min(LOG2_BUCKETS - 1)
    }

    /// Inclusive lower bound of a bucket.
    pub fn bucket_floor(index: usize) -> u64 {
        match index {
            0 => 0,
            i => 1u64 << (i - 1),
        }
    }

    /// Inclusive upper bound of a bucket.
    pub fn bucket_ceil(index: usize) -> u64 {
        if index + 1 >= LOG2_BUCKETS {
            u64::MAX
        } else {
            (1u64 << index) - 1
        }
    }

    /// Records one sample. All counters saturate: a histogram that has
    /// absorbed `u64::MAX` samples (possible on merged, long-lived
    /// shard telemetry) pins at the ceiling instead of wrapping — or
    /// panicking in debug builds — like `sum` always did.
    #[inline]
    pub fn record(&mut self, value: u64) {
        let bucket = &mut self.counts[Self::bucket_of(value)];
        *bucket = bucket.saturating_add(1);
        self.count = self.count.saturating_add(1);
        self.sum = self.sum.saturating_add(value);
        if value < self.min {
            self.min = value;
        }
        if value > self.max {
            self.max = value;
        }
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Saturating sum of recorded samples.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest recorded sample, if any.
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest recorded sample, if any.
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Integer mean of recorded samples (0 when empty).
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }

    /// The raw bucket counters.
    pub fn buckets(&self) -> &[u64; LOG2_BUCKETS] {
        &self.counts
    }

    /// Approximate percentile (`p` in 0..=100): the inclusive upper
    /// bound (the bucket **ceiling**, never the floor) of the bucket
    /// where the cumulative count first reaches `p%` of the samples,
    /// clamped into `[min, max]`.
    ///
    /// Pinned edge cases:
    ///
    /// - empty histogram → 0, for every `p`;
    /// - `p == 0` → the rank is clamped up to 1, so this returns the
    ///   ceiling of the first occupied bucket (clamped to `min` from
    ///   below) — an approximation of the minimum, not 0;
    /// - `p >= 100` → `p` saturates at 100 and the result is exactly
    ///   [`Log2Hist::max`] (the last occupied bucket's ceiling clamps
    ///   down to `max`);
    /// - all samples in one bucket → every `p` returns the same value
    ///   (the bucket ceiling clamped into `[min, max]`); if all
    ///   samples are equal, that value is exact.
    pub fn percentile(&self, p: u64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        if p >= 100 {
            // Exactly `max` by contract — and the only answer that
            // stays right once bucket counters have saturated at
            // u64::MAX, where cumulative ranks stop being meaningful
            // at the tail.
            return self.max;
        }
        // ceil(count * p / 100), computed in u128 to dodge overflow.
        let rank = ((self.count as u128 * p.min(100) as u128).div_ceil(100)).max(1) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen = seen.saturating_add(c);
            if seen >= rank {
                return Self::bucket_ceil(i).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Merges another histogram into this one. Saturating, like
    /// [`Log2Hist::record`]: repeated cross-shard merges of long-lived
    /// histograms must pin at the ceiling, never wrap.
    pub fn merge(&mut self, other: &Log2Hist) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a = a.saturating_add(*b);
        }
        self.count = self.count.saturating_add(other.count);
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Clears all samples.
    pub fn reset(&mut self) {
        *self = Log2Hist::new();
    }
}

/// Machine-wide datapath counters, updated on every
/// [`crate::machine::RmtMachine::fire`]. All are cumulative since the
/// last [`crate::machine::RmtMachine::obs_reset`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MachineCounters {
    /// Hook firings that reached at least one installed program.
    pub fires: u64,
    /// Hook firings on hooks with no listeners (context assembly the
    /// embedding kernel could have skipped — see
    /// [`crate::machine::RmtMachine::hook_armed`]).
    pub fires_unarmed: u64,
    /// Table lookups that matched an entry.
    pub table_hits: u64,
    /// Table lookups that missed (default action or skip).
    pub table_misses: u64,
    /// Actions absorbed after a fault or privacy exhaustion.
    pub aborts: u64,
    /// Model-guard rails tripped.
    pub guard_trips: u64,
    /// Resource effects dropped by program rate limiters.
    pub rate_limit_drops: u64,
    /// Tail calls followed.
    pub tail_calls: u64,
    /// Pipelines terminated because the dynamic tail-call chain
    /// exceeded [`crate::machine::MAX_TAIL_CHAIN`].
    pub tail_chain_overflows: u64,
    /// Hook firings fully served from the megaflow-style decision
    /// cache (every table's match resolution replayed and validated).
    pub decision_cache_hits: u64,
    /// Cache-eligible firings that had to resolve at least one table
    /// lookup live (cold key, divergence, or stale generation).
    pub decision_cache_misses: u64,
    /// Subset of `decision_cache_misses` caused by a control-plane
    /// table/model mutation bumping the generation counter.
    pub decision_cache_invalidations: u64,
    /// Cached decisions evicted by the per-hook capacity bound.
    pub decision_cache_evictions: u64,
    /// Firings that skipped the cache because the hook's live tables
    /// are all exact-match (one hash probe — the cache cannot win).
    pub decision_cache_bypasses: u64,
    /// Optimizing compiles whose pass pipeline was still firing when
    /// the fixpoint round budget ran out (the optimizer installed the
    /// last consistent result instead of iterating further).
    pub opt_fixpoint_cap_hits: u64,
}

impl MachineCounters {
    /// Adds another counter set into this one, field by field — the
    /// cross-shard aggregation a [`crate::shard::ShardedMachine`]
    /// control plane performs. Saturating: merged telemetry must never
    /// wrap into nonsense.
    pub fn merge(&mut self, other: &MachineCounters) {
        self.fires = self.fires.saturating_add(other.fires);
        self.fires_unarmed = self.fires_unarmed.saturating_add(other.fires_unarmed);
        self.table_hits = self.table_hits.saturating_add(other.table_hits);
        self.table_misses = self.table_misses.saturating_add(other.table_misses);
        self.aborts = self.aborts.saturating_add(other.aborts);
        self.guard_trips = self.guard_trips.saturating_add(other.guard_trips);
        self.rate_limit_drops = self.rate_limit_drops.saturating_add(other.rate_limit_drops);
        self.tail_calls = self.tail_calls.saturating_add(other.tail_calls);
        self.tail_chain_overflows = self
            .tail_chain_overflows
            .saturating_add(other.tail_chain_overflows);
        self.decision_cache_hits = self
            .decision_cache_hits
            .saturating_add(other.decision_cache_hits);
        self.decision_cache_misses = self
            .decision_cache_misses
            .saturating_add(other.decision_cache_misses);
        self.decision_cache_invalidations = self
            .decision_cache_invalidations
            .saturating_add(other.decision_cache_invalidations);
        self.decision_cache_evictions = self
            .decision_cache_evictions
            .saturating_add(other.decision_cache_evictions);
        self.decision_cache_bypasses = self
            .decision_cache_bypasses
            .saturating_add(other.decision_cache_bypasses);
        self.opt_fixpoint_cap_hits = self
            .opt_fixpoint_cap_hits
            .saturating_add(other.opt_fixpoint_cap_hits);
    }
}

/// Number of class bins in [`ModelStats`] histograms and confusion
/// matrices. Classes `0..MODEL_CLASS_BINS-1` map to their own bin; the
/// last bin absorbs everything else (negative or out-of-range classes),
/// keeping the structures fixed-size and allocation-free.
pub const MODEL_CLASS_BINS: usize = 8;

/// One prequential-accuracy window: ground-truth outcomes observed and
/// how many of them the datapath predicted correctly.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AccWindow {
    /// Outcomes where `predicted == actual`.
    pub hits: u64,
    /// Total outcomes reported in this window.
    pub total: u64,
}

/// Per-(program, model-slot) prediction telemetry.
///
/// The datapath side ([`Insn::CallMl`](crate::bytecode::Insn) in both
/// engines) feeds the serving counters: predictions served, the
/// per-class histogram of *served* (post-guard) classes, and a sampled
/// inference-latency histogram. The control-plane side
/// (`CtrlRequest::ReportOutcome`) feeds ground truth, maintaining an
/// integer-only confusion matrix and windowed prequential accuracy —
/// §3.1's "the control plane relies on past prediction accuracy to
/// detect workload changes" made measurable.
///
/// Window semantics: outcomes accumulate into a current window of
/// [`ObsConfig::accuracy_window`] outcomes; completed windows rotate
/// through a bounded ring of [`ObsConfig::accuracy_windows`] entries.
/// Rolling accuracy is computed over the ring **plus** the current
/// partial window. Once at least one window's worth of outcomes is in
/// view and the rolling accuracy drops below
/// [`ObsConfig::drift_threshold_permille`], `drift_suspected` latches
/// `true` — it stays set (so a polling control plane cannot miss a
/// transient dip) until a model swap or an obs reset clears it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ModelStats {
    served: u64,
    class_counts: [u64; MODEL_CLASS_BINS],
    latency: Log2Hist,
    /// `confusion[actual_bin][predicted_bin]`, cumulative since reset.
    confusion: [[u64; MODEL_CLASS_BINS]; MODEL_CLASS_BINS],
    outcomes: u64,
    hits: u64,
    window: AccWindow,
    windows: VecDeque<AccWindow>,
    drift_suspected: bool,
}

impl Default for ModelStats {
    fn default() -> ModelStats {
        ModelStats::new()
    }
}

impl ModelStats {
    /// Creates empty telemetry for one model slot.
    pub fn new() -> ModelStats {
        ModelStats {
            served: 0,
            class_counts: [0; MODEL_CLASS_BINS],
            latency: Log2Hist::new(),
            confusion: [[0; MODEL_CLASS_BINS]; MODEL_CLASS_BINS],
            outcomes: 0,
            hits: 0,
            window: AccWindow::default(),
            windows: VecDeque::new(),
            drift_suspected: false,
        }
    }

    /// Bin a class id: in-range classes get their own bin, everything
    /// else (negative, oversized) lands in the last bin.
    #[inline]
    pub fn class_bin(class: i64) -> usize {
        if (0..MODEL_CLASS_BINS as i64 - 1).contains(&class) {
            class as usize
        } else {
            MODEL_CLASS_BINS - 1
        }
    }

    /// Datapath side: one model dispatch served `class` (post-guard),
    /// optionally with a sampled inference latency in nanoseconds.
    #[inline]
    pub fn record_prediction(&mut self, class: i64, latency_ns: Option<u64>) {
        self.served = self.served.saturating_add(1);
        let bin = &mut self.class_counts[Self::class_bin(class)];
        *bin = bin.saturating_add(1);
        if let Some(ns) = latency_ns {
            self.latency.record(ns);
        }
    }

    /// Control-plane side: ground truth for one earlier prediction.
    /// Updates the confusion matrix and the prequential window, and
    /// latches `drift_suspected` on a threshold crossing.
    pub fn record_outcome(&mut self, predicted: i64, actual: i64, cfg: &ObsConfig) {
        let cell = &mut self.confusion[Self::class_bin(actual)][Self::class_bin(predicted)];
        *cell = cell.saturating_add(1);
        self.outcomes = self.outcomes.saturating_add(1);
        let hit = predicted == actual;
        if hit {
            self.hits = self.hits.saturating_add(1);
            self.window.hits = self.window.hits.saturating_add(1);
        }
        self.window.total = self.window.total.saturating_add(1);
        let per_window = cfg.accuracy_window.max(1);
        if self.window.total >= per_window {
            while self.windows.len() >= cfg.accuracy_windows.max(1) {
                self.windows.pop_front();
            }
            self.windows.push_back(self.window);
            self.window = AccWindow::default();
        }
        let (h, t) = self.windowed_sums();
        if t >= per_window
            && h.saturating_mul(1000) < cfg.drift_threshold_permille.saturating_mul(t)
        {
            self.drift_suspected = true;
        }
    }

    fn windowed_sums(&self) -> (u64, u64) {
        let mut h = self.window.hits;
        let mut t = self.window.total;
        for w in &self.windows {
            h = h.saturating_add(w.hits);
            t = t.saturating_add(w.total);
        }
        (h, t)
    }

    /// Rolling prequential accuracy in permille over the window ring
    /// plus the current partial window; `None` before any outcome.
    pub fn rolling_accuracy_permille(&self) -> Option<u64> {
        let (h, t) = self.windowed_sums();
        (t > 0).then(|| h * 1000 / t)
    }

    /// Predictions served by the datapath.
    pub fn served(&self) -> u64 {
        self.served
    }

    /// Ground-truth outcomes reported so far.
    pub fn outcomes(&self) -> u64 {
        self.outcomes
    }

    /// Outcomes where the prediction was correct (cumulative).
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Whether the windowed accuracy has crossed below the drift
    /// threshold since the last model swap / reset (latched).
    pub fn drift_suspected(&self) -> bool {
        self.drift_suspected
    }

    /// Sampled inference-latency histogram (nanoseconds).
    pub fn latency(&self) -> &Log2Hist {
        &self.latency
    }

    /// Per-served-class histogram (see [`ModelStats::class_bin`]).
    pub fn class_counts(&self) -> &[u64; MODEL_CLASS_BINS] {
        &self.class_counts
    }

    /// Confusion matrix, `[actual_bin][predicted_bin]`, cumulative.
    pub fn confusion(&self) -> &[[u64; MODEL_CLASS_BINS]; MODEL_CLASS_BINS] {
        &self.confusion
    }

    /// Clears the prequential window ring and the drift latch, keeping
    /// the cumulative counters. Called on a model hot-swap: the old
    /// model's recent accuracy says nothing about its replacement.
    pub fn reset_windows(&mut self) {
        self.window = AccWindow::default();
        self.windows.clear();
        self.drift_suspected = false;
    }

    /// Clears everything (obs reset).
    pub fn reset(&mut self) {
        *self = ModelStats::new();
    }

    /// Serializable snapshot tagged with its identity.
    pub fn snapshot(&self, prog: u32, slot: u16, name: String) -> ModelStatsSnapshot {
        let mut windows: Vec<AccWindow> = self.windows.iter().copied().collect();
        if self.window.total > 0 {
            windows.push(self.window);
        }
        ModelStatsSnapshot {
            prog,
            slot,
            name,
            served: self.served,
            class_counts: self.class_counts,
            latency: self.latency.clone(),
            confusion: self.confusion,
            outcomes: self.outcomes,
            hits: self.hits,
            windows,
            acc_permille: self.rolling_accuracy_permille().map_or(-1, |v| v as i64),
            drift_suspected: self.drift_suspected,
        }
    }

    /// Lossless serializable copy for machine snapshot/restore. Unlike
    /// [`ModelStats::snapshot`] this keeps the current partial window
    /// separate from the completed ring and preserves the drift latch
    /// exactly, so a restored slot continues its prequential stream
    /// (and keeps a latched drift flag) bit for bit.
    pub fn export_state(&self) -> ModelStatsState {
        ModelStatsState {
            served: self.served,
            class_counts: self.class_counts,
            latency: self.latency.clone(),
            confusion: self.confusion,
            outcomes: self.outcomes,
            hits: self.hits,
            window: self.window,
            windows: self.windows.iter().copied().collect(),
            drift_suspected: self.drift_suspected,
        }
    }

    /// Rebuilds slot telemetry from [`ModelStats::export_state`]
    /// output.
    pub fn import_state(state: ModelStatsState) -> ModelStats {
        ModelStats {
            served: state.served,
            class_counts: state.class_counts,
            latency: state.latency,
            confusion: state.confusion,
            outcomes: state.outcomes,
            hits: state.hits,
            window: state.window,
            windows: state.windows.into(),
            drift_suspected: state.drift_suspected,
        }
    }
}

/// Lossless serializable state of one model slot's telemetry (embedded
/// in a machine snapshot; see [`ModelStats::export_state`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ModelStatsState {
    /// Predictions served by the datapath.
    pub served: u64,
    /// Per-served-class histogram.
    pub class_counts: [u64; MODEL_CLASS_BINS],
    /// Sampled inference-latency histogram (nanoseconds).
    pub latency: Log2Hist,
    /// Confusion matrix, `[actual_bin][predicted_bin]`.
    pub confusion: [[u64; MODEL_CLASS_BINS]; MODEL_CLASS_BINS],
    /// Ground-truth outcomes reported.
    pub outcomes: u64,
    /// Outcomes predicted correctly (cumulative).
    pub hits: u64,
    /// Current partial prequential window.
    pub window: AccWindow,
    /// Completed prequential windows, oldest first.
    pub windows: Vec<AccWindow>,
    /// Latched drift flag.
    pub drift_suspected: bool,
}

/// Serializable [`ModelStats`] snapshot (control-plane
/// `QueryModelStats` payload; embedded in [`ObsSnapshot`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ModelStatsSnapshot {
    /// Owning program id.
    pub prog: u32,
    /// Model slot within the program.
    pub slot: u16,
    /// Model name from the program's [`crate::prog::ModelDef`].
    pub name: String,
    /// Predictions served by the datapath.
    pub served: u64,
    /// Per-served-class histogram (last bin = overflow).
    pub class_counts: [u64; MODEL_CLASS_BINS],
    /// Sampled inference-latency histogram (nanoseconds).
    pub latency: Log2Hist,
    /// Confusion matrix, `[actual_bin][predicted_bin]`.
    pub confusion: [[u64; MODEL_CLASS_BINS]; MODEL_CLASS_BINS],
    /// Ground-truth outcomes reported.
    pub outcomes: u64,
    /// Outcomes predicted correctly (cumulative).
    pub hits: u64,
    /// Prequential windows, oldest first; the last entry is the
    /// current partial window when it holds any outcomes.
    pub windows: Vec<AccWindow>,
    /// Rolling windowed accuracy in permille; -1 before any outcome.
    pub acc_permille: i64,
    /// Latched drift flag (see [`ModelStats`]).
    pub drift_suspected: bool,
}

impl ModelStatsSnapshot {
    /// Merges another snapshot of the *same* (prog, slot) model — the
    /// cross-shard aggregation for replicated model telemetry.
    /// Counters, the class histogram, the confusion matrix, and the
    /// latency histogram sum; prequential windows zip-sum by position
    /// (window `i` of every shard covers the same slice of each
    /// shard's outcome stream); `acc_permille` is recomputed from the
    /// merged windows; the drift latch ORs (one drifting shard is a
    /// drifting model).
    pub fn merge(&mut self, other: &ModelStatsSnapshot) {
        self.served = self.served.saturating_add(other.served);
        self.outcomes = self.outcomes.saturating_add(other.outcomes);
        self.hits = self.hits.saturating_add(other.hits);
        for (a, b) in self.class_counts.iter_mut().zip(other.class_counts.iter()) {
            *a = a.saturating_add(*b);
        }
        for (row_a, row_b) in self.confusion.iter_mut().zip(other.confusion.iter()) {
            for (a, b) in row_a.iter_mut().zip(row_b.iter()) {
                *a = a.saturating_add(*b);
            }
        }
        self.latency.merge(&other.latency);
        if self.windows.len() < other.windows.len() {
            self.windows
                .resize(other.windows.len(), AccWindow::default());
        }
        for (w, ow) in self.windows.iter_mut().zip(other.windows.iter()) {
            w.hits = w.hits.saturating_add(ow.hits);
            w.total = w.total.saturating_add(ow.total);
        }
        let (h, t) = self
            .windows
            .iter()
            .fold((0u64, 0u64), |(h, t), w| (h + w.hits, t + w.total));
        self.acc_permille = (h * 1000).checked_div(t).map_or(-1, |p| p as i64);
        self.drift_suspected |= other.drift_suspected;
    }
}

/// What happened, for one [`TraceEvent`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceKind {
    /// A program finished its pipeline for one hook firing
    /// (`info` = last verdict, `i64::MIN` if no action ran). Only
    /// recorded when [`ObsConfig::trace_fires`] is on — per-fire
    /// tracing floods the ring on hot paths.
    Fire,
    /// An action faulted and was absorbed (`info` = table index).
    Abort,
    /// A tail call redirected the pipeline (`info` = target table).
    TailCall,
    /// The tail-call chain overflowed and the pipeline was terminated
    /// (`info` = table index that overflowed).
    TailChainOverflow,
    /// A resource effect was dropped by the rate limiter
    /// (`info` = table index).
    RateLimitDrop,
    /// One or more model guards tripped during an action
    /// (`info` = trip count).
    GuardTrip,
    /// A model was hot-swapped (`info` = model slot).
    ModelSwap,
    /// A program was installed (`info` = program id).
    Install,
    /// A program was removed (`info` = program id).
    Remove,
}

/// One datapath event in the [`TraceRing`]. Fixed-size and
/// integer-only so pushes never allocate.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// Machine tick when the event occurred.
    pub tick: u64,
    /// Program the event belongs to (0 for machine-level events).
    pub prog: u32,
    /// Event kind.
    pub kind: TraceKind,
    /// Kind-specific payload (see [`TraceKind`]).
    pub info: i64,
}

/// A bounded FIFO of [`TraceEvent`]s. When full, pushing overwrites
/// the oldest event and increments [`TraceRing::dropped`] — loss is
/// explicit, never silent.
#[derive(Clone, Debug)]
pub struct TraceRing {
    capacity: usize,
    events: VecDeque<TraceEvent>,
    dropped: u64,
}

impl TraceRing {
    /// Creates a ring holding at most `capacity` events (minimum 1).
    pub fn new(capacity: usize) -> TraceRing {
        let capacity = capacity.max(1);
        TraceRing {
            capacity,
            events: VecDeque::with_capacity(capacity),
            dropped: 0,
        }
    }

    /// Appends an event, evicting (and counting) the oldest if full.
    pub fn push(&mut self, event: TraceEvent) {
        if self.events.len() >= self.capacity {
            self.events.pop_front();
            self.dropped = self.dropped.saturating_add(1);
        }
        self.events.push_back(event);
    }

    /// Removes and returns up to `max` events, oldest first.
    pub fn drain(&mut self, max: usize) -> Vec<TraceEvent> {
        let n = max.min(self.events.len());
        self.events.drain(..n).collect()
    }

    /// Events currently buffered.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the ring holds no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Cumulative events overwritten before being read.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Ring capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Clears buffered events and the dropped counter.
    pub fn reset(&mut self) {
        self.events.clear();
        self.dropped = 0;
    }

    /// Changes the capacity, evicting (and counting) oldest events if
    /// the new capacity is smaller than the current backlog.
    pub fn set_capacity(&mut self, capacity: usize) {
        self.capacity = capacity.max(1);
        while self.events.len() > self.capacity {
            self.events.pop_front();
            self.dropped = self.dropped.saturating_add(1);
        }
    }
}

/// One per-hook data point in a [`FlightFrame`]: fire count plus the
/// p50/p99 of the hook's whole-fire latency histogram at capture time.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FlightHookPoint {
    /// Hook name.
    pub hook: String,
    /// Cumulative fires at capture time.
    pub fires: u64,
    /// 50th-percentile fire latency (ns) at capture time.
    pub p50: u64,
    /// 99th-percentile fire latency (ns) at capture time.
    pub p99: u64,
}

/// One per-model data point in a [`FlightFrame`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FlightModelPoint {
    /// Owning program id.
    pub prog: u32,
    /// Model slot within the program.
    pub slot: u16,
    /// Cumulative predictions served at capture time.
    pub served: u64,
    /// Cumulative ground-truth outcomes reported at capture time.
    pub outcomes: u64,
    /// Rolling windowed accuracy in permille; -1 before any outcome.
    pub acc_permille: i64,
    /// Latched drift flag at capture time.
    pub drift_suspected: bool,
}

/// One periodic downsampled snapshot in the [`FlightRecorder`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FlightFrame {
    /// Monotone frame sequence number (never reused within a recorder
    /// generation; survives ring eviction so gaps are visible).
    pub seq: u64,
    /// Machine tick at capture time.
    pub tick: u64,
    /// Cumulative armed fires at capture time.
    pub fires: u64,
    /// Machine-wide counters at capture time.
    pub counters: MachineCounters,
    /// Per-hook fire counts and latency percentiles, sorted by name.
    pub hooks: Vec<FlightHookPoint>,
    /// Per-model serving counters and rolling accuracy.
    pub models: Vec<FlightModelPoint>,
}

/// Serializable dump of the flight recorder (control-plane
/// `FlightRead` payload).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FlightSnapshot {
    /// Capture interval in fires (0 = recorder disabled).
    pub interval: u64,
    /// Buffered frames, oldest first.
    pub frames: Vec<FlightFrame>,
    /// Frames evicted from the ring before being read.
    pub dropped: u64,
}

/// A bounded ring of periodic [`FlightFrame`]s — a time-series "flight
/// recorder" answering post-hoc "when did it regress" questions
/// without external tooling. The machine captures a frame every
/// [`ObsConfig::flight_interval`] armed fires; the ring holds the last
/// [`ObsConfig::flight_capacity`] frames and counts evictions.
#[derive(Clone, Debug)]
pub struct FlightRecorder {
    interval: u64,
    capacity: usize,
    frames: VecDeque<FlightFrame>,
    dropped: u64,
    next_seq: u64,
}

impl FlightRecorder {
    /// Creates a recorder capturing every `interval` fires (0 =
    /// disabled), keeping at most `capacity` frames.
    pub fn new(interval: u64, capacity: usize) -> FlightRecorder {
        FlightRecorder {
            interval,
            capacity: capacity.max(1),
            frames: VecDeque::new(),
            dropped: 0,
            next_seq: 0,
        }
    }

    /// Whether a frame is due after the `fires`-th armed fire.
    #[inline]
    pub fn due(&self, fires: u64) -> bool {
        self.interval > 0 && fires.is_multiple_of(self.interval)
    }

    /// Whether any capture point was crossed while the fire counter
    /// advanced from `before` to `after` — the batched-fire check:
    /// [`crate::machine::RmtMachine::fire_batch`] amortizes the
    /// due-check to one per batch, capturing at most one frame per
    /// batch regardless of how many intervals the batch spanned.
    #[inline]
    pub fn due_span(&self, before: u64, after: u64) -> bool {
        self.interval > 0 && after / self.interval > before / self.interval
    }

    /// Appends a frame (stamping its sequence number), evicting and
    /// counting the oldest when full.
    pub fn push(&mut self, mut frame: FlightFrame) {
        frame.seq = self.next_seq;
        self.next_seq += 1;
        if self.frames.len() >= self.capacity {
            self.frames.pop_front();
            self.dropped = self.dropped.saturating_add(1);
        }
        self.frames.push_back(frame);
    }

    /// Frames currently buffered.
    pub fn len(&self) -> usize {
        self.frames.len()
    }

    /// Whether the ring holds no frames.
    pub fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }

    /// Capture interval in fires (0 = disabled).
    pub fn interval(&self) -> u64 {
        self.interval
    }

    /// Reconfigures interval/capacity, evicting (and counting) oldest
    /// frames if the new capacity is below the current backlog.
    pub fn configure(&mut self, interval: u64, capacity: usize) {
        self.interval = interval;
        self.capacity = capacity.max(1);
        while self.frames.len() > self.capacity {
            self.frames.pop_front();
            self.dropped = self.dropped.saturating_add(1);
        }
    }

    /// Clears frames, the dropped counter, and the sequence counter.
    pub fn reset(&mut self) {
        self.frames.clear();
        self.dropped = 0;
        self.next_seq = 0;
    }

    /// Serializable copy of the ring, oldest frame first.
    pub fn snapshot(&self) -> FlightSnapshot {
        FlightSnapshot {
            interval: self.interval,
            frames: self.frames.iter().cloned().collect(),
            dropped: self.dropped,
        }
    }
}

/// Runtime configuration of the observability layer. The layer is
/// always compiled in; these knobs trade detail for overhead at run
/// time.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ObsConfig {
    /// Measure `fire()` latency into the per-hook/per-program
    /// histograms. Off leaves only the integer counters.
    pub timing: bool,
    /// Sample 1 in `2^sample_shift` firings for latency timing
    /// (0 = every firing). Sampling bounds clock-read overhead on very
    /// hot hooks; histograms remain statistically faithful. The default
    /// of 3 (1 in 8) keeps measured `fire()` overhead around 1% on
    /// microsecond-scale actions, where per-firing timing costs ~10%
    /// (two clock reads); drop to 0 for exact per-fire latency.
    pub sample_shift: u32,
    /// Trace every program pipeline completion ([`TraceKind::Fire`]).
    /// Off (default) traces only notable events — aborts, overflows,
    /// drops, guard trips, control-plane changes.
    pub trace_fires: bool,
    /// Trace ring capacity (events).
    pub trace_capacity: usize,
    /// Prequential-accuracy window size in outcomes (per model slot).
    /// Each window records hit/total over `accuracy_window` reported
    /// outcomes before rotating into the window ring.
    pub accuracy_window: u64,
    /// Completed prequential windows retained per model slot. Rolling
    /// accuracy spans this ring plus the current partial window.
    pub accuracy_windows: usize,
    /// Rolling accuracy (permille) below which `drift_suspected`
    /// latches, once at least one full window of outcomes is in view.
    pub drift_threshold_permille: u64,
    /// Capture a flight-recorder frame every this many armed fires
    /// (0 disables the recorder).
    pub flight_interval: u64,
    /// Flight-recorder ring capacity (frames).
    pub flight_capacity: usize,
}

impl Default for ObsConfig {
    fn default() -> ObsConfig {
        ObsConfig {
            timing: true,
            sample_shift: 3,
            trace_fires: false,
            trace_capacity: 1024,
            accuracy_window: 64,
            accuracy_windows: 8,
            drift_threshold_permille: 500,
            flight_interval: 1024,
            flight_capacity: 64,
        }
    }
}

/// Machine-level observability state (owned by
/// [`crate::machine::RmtMachine`]; per-hook and per-program histograms
/// live next to their subjects to keep the hot path lookup-free).
#[derive(Clone, Debug)]
pub struct Obs {
    /// Active configuration.
    pub(crate) cfg: ObsConfig,
    /// Machine-wide counters.
    pub(crate) counters: MachineCounters,
    /// Datapath event ring.
    pub(crate) ring: TraceRing,
    /// Periodic time-series frames.
    pub(crate) flight: FlightRecorder,
    /// Sampled span ring + stage profiler. Excluded from
    /// [`ObsState`]: spans are memoization over a live run, like
    /// decision caches.
    pub(crate) spans: span::SpanCollector,
}

impl Obs {
    /// Creates the layer with the given configuration.
    pub fn new(cfg: ObsConfig) -> Obs {
        Obs {
            cfg,
            counters: MachineCounters::default(),
            ring: TraceRing::new(cfg.trace_capacity),
            flight: FlightRecorder::new(cfg.flight_interval, cfg.flight_capacity),
            spans: span::SpanCollector::new(),
        }
    }

    /// Serializable copy of the whole layer (config, counters, the
    /// unread trace backlog, and the flight-recorder ring) for machine
    /// snapshot/restore. Unlike [`ObsSnapshot`] this is lossless: a
    /// restored machine continues counting exactly where the
    /// snapshotted one stopped, pending trace events included.
    pub fn export_state(&self) -> ObsState {
        ObsState {
            cfg: self.cfg,
            counters: self.counters,
            trace_events: self.ring.events.iter().copied().collect(),
            trace_dropped: self.ring.dropped,
            flight_frames: self.flight.frames.iter().cloned().collect(),
            flight_dropped: self.flight.dropped,
            flight_next_seq: self.flight.next_seq,
        }
    }

    /// Rebuilds the layer from [`Obs::export_state`] output. Ring
    /// capacities come from the embedded config; backlogs longer than
    /// the configured capacity (a hand-edited snapshot) are truncated
    /// oldest-first with the truncation counted as dropped, preserving
    /// the never-silently-lose-events invariant.
    pub fn import_state(state: ObsState) -> Obs {
        let mut obs = Obs::new(state.cfg);
        obs.counters = state.counters;
        obs.ring.dropped = state.trace_dropped;
        for ev in state.trace_events {
            obs.ring.push(ev);
        }
        obs.flight.frames = state.flight_frames.into();
        while obs.flight.frames.len() > obs.flight.capacity {
            obs.flight.frames.pop_front();
            obs.flight.dropped = obs.flight.dropped.saturating_add(1);
        }
        obs.flight.dropped = obs.flight.dropped.saturating_add(state.flight_dropped);
        obs.flight.next_seq = state.flight_next_seq;
        obs
    }
}

/// Lossless serializable state of the observability layer (embedded in
/// a machine snapshot; see [`Obs::export_state`]).
#[derive(Clone, Debug, PartialEq)]
pub struct ObsState {
    /// Active configuration (ring capacities included).
    pub cfg: ObsConfig,
    /// Machine-wide counters.
    pub counters: MachineCounters,
    /// Unread trace-ring backlog, oldest first.
    pub trace_events: Vec<TraceEvent>,
    /// Cumulative trace events dropped.
    pub trace_dropped: u64,
    /// Flight-recorder frames, oldest first.
    pub flight_frames: Vec<FlightFrame>,
    /// Cumulative flight frames dropped.
    pub flight_dropped: u64,
    /// Next flight-frame sequence number.
    pub flight_next_seq: u64,
}

/// Per-hook statistics snapshot (control-plane `HookStats` payload).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HookStats {
    /// Hook name.
    pub hook: String,
    /// Firings of this hook since the last reset (armed only).
    pub fires: u64,
    /// Whole-fire latency histogram (nanoseconds).
    pub hist: Log2Hist,
}

/// Per-program latency snapshot.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ProgHist {
    /// Program id.
    pub prog: u32,
    /// Per-pipeline-run latency histogram (nanoseconds).
    pub hist: Log2Hist,
}

/// Drained slice of the trace ring (control-plane `TraceRead` payload).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceSnapshot {
    /// Drained events, oldest first.
    pub events: Vec<TraceEvent>,
    /// Cumulative dropped count at read time (not reset by reads).
    pub dropped: u64,
}

/// Full observability snapshot, serializable for offline analysis via
/// [`crate::snapshot::to_json_string`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ObsSnapshot {
    /// Machine tick at snapshot time.
    pub tick: u64,
    /// Machine-wide counters.
    pub counters: MachineCounters,
    /// Per-hook stats, sorted by hook name.
    pub hooks: Vec<HookStats>,
    /// Per-program latency histograms, sorted by program id.
    pub programs: Vec<ProgHist>,
    /// Per-model prediction telemetry, sorted by (prog, slot).
    pub models: Vec<ModelStatsSnapshot>,
    /// Trace events dropped so far.
    pub trace_dropped: u64,
    /// Trace events currently buffered (unread).
    pub trace_pending: u64,
    /// Per-shard ingress-ring telemetry, sorted by shard. Empty on a
    /// single machine — populated only by
    /// [`crate::shard::ShardedMachine::obs_snapshot`].
    pub ingress: Vec<IngressShardStats>,
    /// Skew-balancer verdict at snapshot time: 1 if the balancer
    /// would rotate the partition seed, 0 if not, -1 on machines
    /// without a balancer (single machine). Exported as the
    /// `rkd_shard_should_rebalance` gauge.
    pub ingress_should_rebalance: i64,
}

/// One shard's ingress-ring telemetry (queue depth and the
/// stall/park counters), exported through the merged
/// [`ObsSnapshot`] so skew between shards is visible to the same
/// exporters as every other metric.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct IngressShardStats {
    /// Shard index.
    pub shard: u64,
    /// Messages published to the ring but not yet consumed at
    /// snapshot time (the skew balancer's trigger signal).
    pub depth: u64,
    /// Messages ever pushed into the ring.
    pub enqueued: u64,
    /// Times the producer found the ring full and had to retry.
    pub full_stalls: u64,
    /// Times the shard worker parked waiting for ingress.
    pub parks: u64,
}

impl ObsSnapshot {
    /// Merges another machine's snapshot into this one — the
    /// cross-shard aggregation behind
    /// [`crate::shard::ShardedMachine::obs_snapshot`], producing a
    /// standard [`ObsSnapshot`] so the Prometheus/JSON exporters work
    /// on sharded machines unchanged. Hooks merge by name (fires sum,
    /// histograms merge), programs by id, models by (prog, slot);
    /// counters and trace occupancy sum; `tick` takes the max. Sort
    /// orders (hooks by name, programs by id, models by (prog, slot))
    /// are preserved so merged output stays byte-deterministic.
    pub fn merge(&mut self, other: &ObsSnapshot) {
        self.tick = self.tick.max(other.tick);
        self.counters.merge(&other.counters);
        for oh in &other.hooks {
            match self.hooks.iter_mut().find(|h| h.hook == oh.hook) {
                Some(h) => {
                    h.fires = h.fires.saturating_add(oh.fires);
                    h.hist.merge(&oh.hist);
                }
                None => self.hooks.push(oh.clone()),
            }
        }
        self.hooks.sort_by(|a, b| a.hook.cmp(&b.hook));
        for op in &other.programs {
            match self.programs.iter_mut().find(|p| p.prog == op.prog) {
                Some(p) => p.hist.merge(&op.hist),
                None => self.programs.push(op.clone()),
            }
        }
        self.programs.sort_by_key(|p| p.prog);
        for om in &other.models {
            match self
                .models
                .iter_mut()
                .find(|m| m.prog == om.prog && m.slot == om.slot)
            {
                Some(m) => m.merge(om),
                None => self.models.push(om.clone()),
            }
        }
        self.models.sort_by_key(|m| (m.prog, m.slot));
        self.trace_dropped = self.trace_dropped.saturating_add(other.trace_dropped);
        self.trace_pending = self.trace_pending.saturating_add(other.trace_pending);
        // Ingress rows are per-shard (already disjoint across the
        // snapshots being merged): concatenate and keep shard order.
        self.ingress.extend(other.ingress.iter().copied());
        self.ingress.sort_by_key(|i| i.shard);
        // The balancer verdict is coordinator-level, not per-shard:
        // any constituent that says "rebalance" wins.
        self.ingress_should_rebalance = self
            .ingress_should_rebalance
            .max(other.ingress_should_rebalance);
    }
}

rkd_testkit::impl_json_struct!(Log2Hist {
    counts,
    count,
    sum,
    min,
    max
});

rkd_testkit::impl_json_struct!(MachineCounters {
    fires,
    fires_unarmed,
    table_hits,
    table_misses,
    aborts,
    guard_trips,
    rate_limit_drops,
    tail_calls,
    tail_chain_overflows,
    decision_cache_hits,
    decision_cache_misses,
    decision_cache_invalidations,
    decision_cache_evictions,
    decision_cache_bypasses,
    opt_fixpoint_cap_hits
});

rkd_testkit::impl_json_unit_enum!(TraceKind {
    Fire,
    Abort,
    TailCall,
    TailChainOverflow,
    RateLimitDrop,
    GuardTrip,
    ModelSwap,
    Install,
    Remove,
});

rkd_testkit::impl_json_struct!(TraceEvent {
    tick,
    prog,
    kind,
    info
});

rkd_testkit::impl_json_struct!(HookStats { hook, fires, hist });

rkd_testkit::impl_json_struct!(ProgHist { prog, hist });

rkd_testkit::impl_json_struct!(TraceSnapshot { events, dropped });

rkd_testkit::impl_json_struct!(AccWindow { hits, total });

rkd_testkit::impl_json_struct!(ModelStatsSnapshot {
    prog,
    slot,
    name,
    served,
    class_counts,
    latency,
    confusion,
    outcomes,
    hits,
    windows,
    acc_permille,
    drift_suspected
});

rkd_testkit::impl_json_struct!(FlightHookPoint {
    hook,
    fires,
    p50,
    p99
});

rkd_testkit::impl_json_struct!(FlightModelPoint {
    prog,
    slot,
    served,
    outcomes,
    acc_permille,
    drift_suspected
});

rkd_testkit::impl_json_struct!(FlightFrame {
    seq,
    tick,
    fires,
    counters,
    hooks,
    models
});

rkd_testkit::impl_json_struct!(FlightSnapshot {
    interval,
    frames,
    dropped
});

rkd_testkit::impl_json_struct!(ObsConfig {
    timing,
    sample_shift,
    trace_fires,
    trace_capacity,
    accuracy_window,
    accuracy_windows,
    drift_threshold_permille,
    flight_interval,
    flight_capacity
});

rkd_testkit::impl_json_struct!(ModelStatsState {
    served,
    class_counts,
    latency,
    confusion,
    outcomes,
    hits,
    window,
    windows,
    drift_suspected
});

rkd_testkit::impl_json_struct!(ObsState {
    cfg,
    counters,
    trace_events,
    trace_dropped,
    flight_frames,
    flight_dropped,
    flight_next_seq
});

rkd_testkit::impl_json_struct!(ObsSnapshot {
    tick,
    counters,
    hooks,
    programs,
    models,
    trace_dropped,
    trace_pending,
    ingress,
    ingress_should_rebalance
});

rkd_testkit::impl_json_struct!(IngressShardStats {
    shard,
    depth,
    enqueued,
    full_stalls,
    parks
});

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_layout_covers_u64() {
        assert_eq!(Log2Hist::bucket_of(0), 0);
        assert_eq!(Log2Hist::bucket_of(1), 1);
        assert_eq!(Log2Hist::bucket_of(2), 2);
        assert_eq!(Log2Hist::bucket_of(3), 2);
        assert_eq!(Log2Hist::bucket_of(4), 3);
        assert_eq!(Log2Hist::bucket_of(u64::MAX), LOG2_BUCKETS - 1);
        for i in 0..LOG2_BUCKETS {
            assert!(Log2Hist::bucket_floor(i) <= Log2Hist::bucket_ceil(i));
            // Every bucket's bounds map back to a bucket no later than i
            // (the last bucket absorbs the truncated top).
            assert!(Log2Hist::bucket_of(Log2Hist::bucket_floor(i)) <= i);
        }
    }

    #[test]
    fn record_tracks_count_sum_min_max() {
        let mut h = Log2Hist::new();
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
        assert_eq!(h.mean(), 0);
        for v in [3u64, 100, 7, 0, 250] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 360);
        assert_eq!(h.min(), Some(0));
        assert_eq!(h.max(), Some(250));
        assert_eq!(h.mean(), 72);
        assert_eq!(h.buckets().iter().sum::<u64>(), 5);
    }

    #[test]
    fn percentile_is_monotone_and_bounded() {
        let mut h = Log2Hist::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let p50 = h.percentile(50);
        let p99 = h.percentile(99);
        assert!(p50 <= p99);
        assert!(p99 <= h.max().unwrap());
        assert!(p50 >= h.min().unwrap());
        // p50 of uniform 1..=1000 lands in the bucket holding 500.
        assert!((256..=1023).contains(&p50), "p50 = {p50}");
        assert_eq!(Log2Hist::new().percentile(50), 0);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = Log2Hist::new();
        let mut b = Log2Hist::new();
        a.record(5);
        b.record(500);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.min(), Some(5));
        assert_eq!(a.max(), Some(500));
        a.reset();
        assert_eq!(a.count(), 0);
    }

    #[test]
    fn log2hist_counters_saturate_instead_of_wrapping() {
        // Satellite pin: record/merge used unchecked `+=` on the
        // bucket counters and `count` while `sum` saturated, so a
        // long-lived merged histogram overflow-panicked in debug
        // builds. Doubling a histogram into itself 64+ times pushes
        // every counter past u64::MAX; all must pin at the ceiling.
        let mut h = Log2Hist::new();
        h.record(3);
        for _ in 0..70 {
            let copy = h.clone();
            h.merge(&copy);
        }
        assert_eq!(h.count(), u64::MAX);
        assert_eq!(h.buckets()[Log2Hist::bucket_of(3)], u64::MAX);
        assert_eq!(h.sum(), u64::MAX);
        // A saturated histogram keeps absorbing samples without
        // panicking, and stays pinned.
        h.record(3);
        assert_eq!(h.count(), u64::MAX);
        // percentile() walks the (now saturated) buckets with its own
        // accumulator; it must not overflow either.
        let mut multi = Log2Hist::new();
        multi.record(1);
        multi.record(1 << 20);
        for _ in 0..70 {
            let copy = multi.clone();
            multi.merge(&copy);
        }
        assert!(multi.percentile(100) >= 1 << 20);
    }

    // Property: for any sample set and any number of self-merges
    // (enough to saturate every counter), recording and merging never
    // wrap: count stays consistent with the bucket counters and
    // min/max stay ordered.
    rkd_testkit::prop_check!(log2hist_saturation_property, |g| {
        use rkd_testkit::rng::Rng;
        let mut h = Log2Hist::new();
        let n = g.scaled_len(0, 32);
        for _ in 0..n {
            h.record(g.gen_range(0u64..=u64::MAX));
        }
        let merges = g.gen_range(0usize..80);
        for _ in 0..merges {
            let copy = h.clone();
            h.merge(&copy);
        }
        let bucket_sum = h
            .buckets()
            .iter()
            .fold(0u64, |acc, &c| acc.saturating_add(c));
        assert_eq!(h.count() == 0, n == 0);
        assert!(h.count() <= bucket_sum);
        if n > 0 {
            assert!(h.min().unwrap() <= h.max().unwrap());
        }
    });

    fn ev(info: i64) -> TraceEvent {
        TraceEvent {
            tick: 1,
            prog: 1,
            kind: TraceKind::Abort,
            info,
        }
    }

    #[test]
    fn trace_ring_counts_every_drop() {
        let mut r = TraceRing::new(3);
        assert!(r.is_empty());
        for i in 0..5 {
            r.push(ev(i));
        }
        assert_eq!(r.len(), 3);
        assert_eq!(r.dropped(), 2, "the two evicted events are counted");
        let drained = r.drain(2);
        assert_eq!(drained.iter().map(|e| e.info).collect::<Vec<_>>(), [2, 3]);
        assert_eq!(r.len(), 1);
        assert_eq!(r.dropped(), 2, "draining is not dropping");
        r.reset();
        assert_eq!((r.len(), r.dropped()), (0, 0));
    }

    #[test]
    fn trace_ring_shrink_counts_evictions() {
        let mut r = TraceRing::new(4);
        for i in 0..4 {
            r.push(ev(i));
        }
        r.set_capacity(2);
        assert_eq!(r.len(), 2);
        assert_eq!(r.dropped(), 2);
        assert_eq!(r.capacity(), 2);
        // Zero capacity clamps to 1.
        let z = TraceRing::new(0);
        assert_eq!(z.capacity(), 1);
    }

    #[test]
    fn snapshots_round_trip_json() {
        let mut hist = Log2Hist::new();
        hist.record(42);
        hist.record(7_000);
        let snap = ObsSnapshot {
            tick: 9,
            counters: MachineCounters {
                fires: 2,
                table_hits: 1,
                table_misses: 1,
                ..MachineCounters::default()
            },
            hooks: vec![HookStats {
                hook: "h".into(),
                fires: 2,
                hist: hist.clone(),
            }],
            programs: vec![ProgHist { prog: 1, hist }],
            models: vec![],
            trace_dropped: 3,
            trace_pending: 0,
            ingress: vec![IngressShardStats {
                shard: 0,
                depth: 4,
                enqueued: 100,
                full_stalls: 1,
                parks: 2,
            }],
            ingress_should_rebalance: 0,
        };
        let json = rkd_testkit::json::to_string(&snap);
        let back: ObsSnapshot = rkd_testkit::json::from_str(&json).unwrap();
        assert_eq!(back, snap);

        let trace = TraceSnapshot {
            events: vec![
                ev(3),
                TraceEvent {
                    tick: 2,
                    prog: 7,
                    kind: TraceKind::TailChainOverflow,
                    info: -1,
                },
            ],
            dropped: 1,
        };
        let json = rkd_testkit::json::to_string(&trace);
        let back: TraceSnapshot = rkd_testkit::json::from_str(&json).unwrap();
        assert_eq!(back, trace);
    }

    #[test]
    fn percentile_edge_cases() {
        // Empty histogram: 0 for every p, including the extremes.
        let empty = Log2Hist::new();
        for p in [0, 1, 50, 100, 200] {
            assert_eq!(empty.percentile(p), 0);
        }

        // Single value: every percentile returns exactly that value
        // (ceiling is clamped to max, floor-of-range to min).
        let mut one = Log2Hist::new();
        one.record(37);
        for p in [0, 1, 50, 99, 100] {
            assert_eq!(one.percentile(p), 37, "p={p}");
        }

        // p=0 clamps the rank to the first sample: the ceiling of the
        // first occupied bucket, clamped to the observed max.
        let mut h = Log2Hist::new();
        h.record(5); // bucket [4,7]
        h.record(6);
        h.record(900); // bucket [512,1023]
        assert_eq!(h.percentile(0), 7, "ceil of first occupied bucket");
        // p>=100 saturates the rank: exactly the observed max, even
        // though the last bucket's ceiling (1023) is larger.
        assert_eq!(h.percentile(100), 900);
        assert_eq!(h.percentile(250), 900);

        // Single-bucket hist with distinct values: every percentile
        // reports the bucket ceiling clamped to max.
        let mut sb = Log2Hist::new();
        sb.record(4);
        sb.record(5);
        sb.record(7); // all in bucket [4,7]
        for p in [0, 50, 100] {
            assert_eq!(sb.percentile(p), 7, "p={p}");
        }
    }

    #[test]
    fn class_bin_maps_overflow_to_last() {
        assert_eq!(ModelStats::class_bin(0), 0);
        assert_eq!(ModelStats::class_bin(6), 6);
        assert_eq!(ModelStats::class_bin(7), MODEL_CLASS_BINS - 1);
        assert_eq!(ModelStats::class_bin(100), MODEL_CLASS_BINS - 1);
        assert_eq!(ModelStats::class_bin(-1), MODEL_CLASS_BINS - 1);
        assert_eq!(ModelStats::class_bin(i64::MIN), MODEL_CLASS_BINS - 1);
    }

    #[test]
    fn model_stats_serving_counters() {
        let mut m = ModelStats::new();
        m.record_prediction(2, None);
        m.record_prediction(2, Some(150));
        m.record_prediction(-3, Some(90));
        assert_eq!(m.served(), 3);
        assert_eq!(m.class_counts()[2], 2);
        assert_eq!(m.class_counts()[MODEL_CLASS_BINS - 1], 1);
        assert_eq!(m.latency().count(), 2, "only sampled calls are timed");
        assert_eq!(m.latency().sum(), 240);
    }

    #[test]
    fn model_stats_windows_and_drift_latch() {
        let cfg = ObsConfig {
            accuracy_window: 4,
            accuracy_windows: 2,
            drift_threshold_permille: 500,
            ..ObsConfig::default()
        };
        let mut m = ModelStats::new();
        assert_eq!(m.rolling_accuracy_permille(), None);
        // First window: all hits.
        for _ in 0..4 {
            m.record_outcome(1, 1, &cfg);
        }
        assert_eq!(m.rolling_accuracy_permille(), Some(1000));
        assert!(!m.drift_suspected());
        assert_eq!(m.confusion()[1][1], 4);
        // Concept flip: misses drive windowed accuracy below 50%.
        for _ in 0..8 {
            m.record_outcome(1, 0, &cfg);
        }
        assert!(m.rolling_accuracy_permille().unwrap() < 500);
        assert!(m.drift_suspected(), "threshold crossing latches");
        assert_eq!(m.confusion()[0][1], 8);
        // Window ring is bounded: 3 windows completed, 2 retained, so
        // the rolling view covers at most 2*4 outcomes.
        assert_eq!(m.rolling_accuracy_permille(), Some(0));
        // Cumulative counters are unaffected by window rotation.
        assert_eq!(m.outcomes(), 12);
        assert_eq!(m.hits(), 4);
        // Model swap clears the window ring and the latch but keeps
        // cumulative counters.
        m.reset_windows();
        assert!(!m.drift_suspected());
        assert_eq!(m.rolling_accuracy_permille(), None);
        assert_eq!(m.outcomes(), 12);
        // The latch stays set once tripped, even if accuracy recovers
        // without a swap.
        for _ in 0..8 {
            m.record_outcome(1, 0, &cfg);
        }
        assert!(m.drift_suspected());
        for _ in 0..8 {
            m.record_outcome(1, 1, &cfg);
        }
        assert_eq!(m.rolling_accuracy_permille(), Some(1000));
        assert!(m.drift_suspected(), "latched until swap/reset");
        m.reset();
        assert_eq!((m.served(), m.outcomes(), m.hits()), (0, 0, 0));
    }

    #[test]
    fn model_stats_snapshot_includes_partial_window() {
        let cfg = ObsConfig {
            accuracy_window: 4,
            ..ObsConfig::default()
        };
        let mut m = ModelStats::new();
        for _ in 0..6 {
            m.record_outcome(0, 0, &cfg);
        }
        let snap = m.snapshot(3, 1, "clf".into());
        assert_eq!(snap.prog, 3);
        assert_eq!(snap.slot, 1);
        assert_eq!(snap.windows.len(), 2, "one full + one partial");
        assert_eq!(snap.windows[0], AccWindow { hits: 4, total: 4 });
        assert_eq!(snap.windows[1], AccWindow { hits: 2, total: 2 });
        assert_eq!(snap.acc_permille, 1000);
        let json = rkd_testkit::json::to_string(&snap);
        let back: ModelStatsSnapshot = rkd_testkit::json::from_str(&json).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn flight_recorder_bounded_ring() {
        let mut fr = FlightRecorder::new(8, 2);
        assert!(!fr.due(7));
        assert!(fr.due(8));
        assert!(fr.due(16));
        let frame = |tick| FlightFrame {
            seq: 0,
            tick,
            fires: tick,
            counters: MachineCounters::default(),
            hooks: vec![],
            models: vec![],
        };
        fr.push(frame(1));
        fr.push(frame(2));
        fr.push(frame(3));
        let snap = fr.snapshot();
        assert_eq!(snap.dropped, 1);
        assert_eq!(snap.interval, 8);
        assert_eq!(
            snap.frames.iter().map(|f| f.seq).collect::<Vec<_>>(),
            [1, 2],
            "sequence numbers survive eviction"
        );
        // Disabled recorder never fires.
        let off = FlightRecorder::new(0, 4);
        assert!(!off.due(0) && !off.due(1024));
        // Shrinking capacity evicts and counts.
        fr.configure(8, 1);
        assert_eq!(fr.len(), 1);
        assert_eq!(fr.snapshot().dropped, 2);
        fr.reset();
        assert!(fr.is_empty());
        assert_eq!(fr.snapshot().dropped, 0);
        // Round-trip the snapshot through JSON.
        let mut fr2 = FlightRecorder::new(4, 4);
        fr2.push(frame(9));
        let snap = fr2.snapshot();
        let json = rkd_testkit::json::to_string(&snap);
        let back: FlightSnapshot = rkd_testkit::json::from_str(&json).unwrap();
        assert_eq!(back, snap);
    }
}
