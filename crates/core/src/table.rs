//! Reconfigurable match/action tables.
//!
//! §3.1: "The key building block of an RMT program is a pipeline of
//! match/action tables. Each table represents a kernel hooking point …
//! Each table contains a set of match/action entries, which can be
//! statically encoded in the RMT program or dynamically inserted or
//! removed via an API at runtime."
//!
//! Tables support the match kinds RMT switch pipelines support: exact,
//! longest-prefix, range, and ternary (value/mask with priority).
//!
//! # Lookup engine
//!
//! Large tables never scan the entry vector. Each [`MatchKind`]
//! maintains an incremental index (updated on insert/remove, never
//! rebuilt):
//!
//! - **Exact** — one hash map from key values to the entry slot.
//! - **Lpm** — per-prefix-length strata, probed longest-first; each
//!   stratum is a hash map from the prefix bits to its entries
//!   (the classic software-router decomposition). The first stratum
//!   with a populated bucket wins, matching the linear scan's
//!   lexicographic (prefix_len, priority) preference.
//! - **Range** — non-overlapping single-component spans live in a
//!   `lo`-sorted vector answered by one binary search; overlapping or
//!   multi-component entries fall back to an overflow list kept in
//!   (priority desc, insertion asc) order so scans exit at the first
//!   match that cannot be beaten.
//! - **Ternary** — OVS-style tuple space: entries are grouped by mask,
//!   each group hashes `key & mask`, and groups are kept sorted by
//!   their best priority so the search exits once the current best
//!   match beats every remaining group.
//!
//! Small LPM and ternary tables skip their index: those probes pay a
//! hash per stratum / per mask group, and below
//! [`LINEAR_CUTOFF_LPM`] / [`LINEAR_CUTOFF_TERNARY`] entries a plain
//! scan over the entry vector is measurably cheaper (the crossover is
//! pinned by `bench_tables`). Exact and range indexes amortize to one
//! hash probe / one binary search and win at every size, so they
//! never fall back. The index is still maintained incrementally at
//! all sizes — dispatch is a per-lookup length check, so a table
//! crossing the cutoff in either direction just switches engines.
//!
//! The pre-index linear scan is retained as
//! [`Table::lookup_linear_ref`] — the differential-test oracle, the
//! benchmark baseline, and the small-table engine — and must stay
//! semantically identical:
//! LPM prefers the largest (prefix_len, priority) pair, range/ternary
//! the highest priority, and all ties break toward the earliest
//! inserted entry (tracked by a per-entry sequence number, since slots
//! are recycled with `swap_remove`).

use crate::ctxt::FieldId;
use crate::error::VmError;
use std::cell::Cell;
use std::collections::HashMap;

/// Largest LPM table (entry count, inclusive) served by the linear
/// scan instead of the per-prefix-length index. An indexed LPM probe
/// hashes once per populated stratum (~70 ns at any size); the scan
/// costs ~4 ns per entry, so the index only wins past ~18 entries —
/// `bench_tables` pins the crossover.
pub const LINEAR_CUTOFF_LPM: usize = 16;

/// Largest ternary table (entry count, inclusive) served by the
/// linear scan instead of the tuple-space index, which pays a hash
/// per mask group (~115 ns flat vs ~3.5 ns per scanned entry).
pub const LINEAR_CUTOFF_TERNARY: usize = 32;

/// Identifies a table within a program.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TableId(pub u16);

/// Identifies an action within a program.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct ActionId(pub u16);

/// How a table matches its key fields.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum MatchKind {
    /// All key components must equal the entry's values.
    Exact,
    /// Single-component key matched by longest prefix (like routing
    /// tables; used for page-range and cgroup-subtree aggregates).
    Lpm,
    /// Each key component must fall within the entry's inclusive range.
    Range,
    /// Value/mask match with explicit priority (highest wins).
    Ternary,
}

/// An entry's match key, of the kind its table declares.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MatchKey {
    /// Exact values, one per key field.
    Exact(Vec<u64>),
    /// A prefix `value` of length `prefix_len` bits (MSB-first) over a
    /// single 64-bit key component.
    Lpm {
        /// Prefix value (only the top `prefix_len` bits are relevant).
        value: u64,
        /// Prefix length in bits, `0..=64`.
        prefix_len: u8,
    },
    /// Inclusive `(lo, hi)` per key component.
    Range(Vec<(u64, u64)>),
    /// Per-component `(value, mask)`; a component matches when
    /// `key & mask == value & mask`.
    Ternary(Vec<(u64, u64)>),
}

impl MatchKey {
    /// Number of key components this key covers.
    pub fn arity(&self) -> usize {
        match self {
            MatchKey::Exact(v) => v.len(),
            MatchKey::Lpm { .. } => 1,
            MatchKey::Range(v) => v.len(),
            MatchKey::Ternary(v) => v.len(),
        }
    }

    /// Whether this key's kind matches a table's [`MatchKind`].
    pub fn kind_matches(&self, kind: MatchKind) -> bool {
        matches!(
            (self, kind),
            (MatchKey::Exact(_), MatchKind::Exact)
                | (MatchKey::Lpm { .. }, MatchKind::Lpm)
                | (MatchKey::Range(_), MatchKind::Range)
                | (MatchKey::Ternary(_), MatchKind::Ternary)
        )
    }

    /// Tests the key against concrete key-field values.
    pub fn matches(&self, key: &[u64]) -> bool {
        match self {
            MatchKey::Exact(vals) => key == vals.as_slice(),
            MatchKey::Lpm { value, prefix_len } => {
                if key.len() != 1 {
                    return false;
                }
                if *prefix_len == 0 {
                    return true;
                }
                if *prefix_len > 64 {
                    return false;
                }
                let shift = 64 - *prefix_len as u32;
                (key[0] >> shift) == (*value >> shift)
            }
            MatchKey::Range(ranges) => {
                key.len() == ranges.len()
                    && key
                        .iter()
                        .zip(ranges.iter())
                        .all(|(k, (lo, hi))| k >= lo && k <= hi)
            }
            MatchKey::Ternary(parts) => {
                key.len() == parts.len()
                    && key
                        .iter()
                        .zip(parts.iter())
                        .all(|(k, (v, m))| k & m == v & m)
            }
        }
    }
}

/// One match/action entry.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Entry {
    /// The match key.
    pub key: MatchKey,
    /// Priority for ternary/range tables (higher wins; ignored for
    /// exact, where keys are unique; for LPM longer prefixes win first
    /// and priority breaks ties).
    pub priority: u32,
    /// Action invoked on match.
    pub action: ActionId,
    /// Opaque argument passed to the action in register `r9` (e.g. a
    /// per-entry model slot or aggressiveness level).
    pub arg: i64,
}

/// Static declaration of a table (shape only; entries are runtime
/// state owned by [`Table`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TableDef {
    /// Table name (e.g. `"page_prefetch_tab"`).
    pub name: String,
    /// The kernel hook point this table is installed at (e.g.
    /// `"swap_cluster_readahead"`). Matched by name against the hook
    /// registry of the embedding kernel.
    pub hook: String,
    /// Context fields forming the match key, in order.
    pub key_fields: Vec<FieldId>,
    /// The match kind.
    pub kind: MatchKind,
    /// Action to run when no entry matches (`None` = pipeline
    /// continues / no-op).
    pub default_action: Option<ActionId>,
    /// Capacity limit for runtime entries.
    pub max_entries: usize,
}

/// Hit/miss counters for one table.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TableStats {
    /// Lookups that matched an entry.
    pub hits: u64,
    /// Lookups that fell through to the default action.
    pub misses: u64,
}

/// Interior-mutable counters backing [`TableStats`]: lookups take
/// `&self`, so shared-read callers (the JIT's pre-resolved dispatch,
/// the decision-cache replay path) count without exclusive access.
#[derive(Clone, Debug, Default)]
struct StatCells {
    hits: Cell<u64>,
    misses: Cell<u64>,
}

/// The top `prefix_len` bits of `value`, right-aligned — the bucket
/// key within one LPM stratum (0 when `prefix_len` is 0, where the
/// single bucket matches everything).
#[inline]
fn lpm_bits(value: u64, prefix_len: u8) -> u64 {
    if prefix_len == 0 {
        0
    } else {
        value >> (64 - prefix_len as u32)
    }
}

/// Order-sensitive fingerprint of `key & mask`, the ternary bucket
/// key. Collisions are benign: bucket candidates are re-verified with
/// [`MatchKey::matches`].
#[inline]
fn masked_fingerprint(key: &[u64], mask: &[u64]) -> u64 {
    let mut h: u64 = 0x9E37_79B9_7F4A_7C15;
    for (k, m) in key.iter().zip(mask.iter()) {
        let mut x = (k & m).wrapping_add(h);
        x ^= x >> 30;
        x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x ^= x >> 27;
        x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
        x ^= x >> 31;
        h = h.rotate_left(5) ^ x;
    }
    h
}

/// One prefix-length stratum of the LPM index.
#[derive(Clone, Debug)]
struct LpmGroup {
    prefix_len: u8,
    /// Prefix bits -> entry slots holding that prefix, insertion order.
    buckets: HashMap<u64, Vec<usize>>,
}

/// Per-prefix-length LPM index, strata sorted by descending length so
/// the first populated bucket wins.
#[derive(Clone, Debug, Default)]
struct LpmIndex {
    groups: Vec<LpmGroup>,
}

/// A single-component span in the sorted range index.
#[derive(Clone, Copy, Debug)]
struct RangeSpan {
    lo: u64,
    hi: u64,
    idx: usize,
}

/// Range index: binary-searchable non-overlapping spans plus an
/// ordered overflow list for everything else.
#[derive(Clone, Debug, Default)]
struct RangeIndex {
    /// Non-overlapping arity-1 spans sorted by `lo` (which implies
    /// sorted by `hi` too); at most one span can contain a key.
    spans: Vec<RangeSpan>,
    /// Entries the span vector cannot hold (overlapping, empty
    /// `lo > hi`, or multi-component), in (priority desc, insertion
    /// asc) order for early exit. Entries are never promoted back into
    /// `spans` when an overlap disappears — a perf-only asymmetry.
    overflow: Vec<usize>,
}

/// One mask group of the ternary tuple space.
#[derive(Clone, Debug)]
struct TernaryGroup {
    mask: Vec<u64>,
    /// Highest priority present in the group, kept exact on removal so
    /// the early-exit bound is tight.
    max_priority: u32,
    /// Fingerprint of `value & mask` -> candidate entry slots.
    buckets: HashMap<u64, Vec<usize>>,
}

/// Ternary index, groups sorted by descending `max_priority`.
#[derive(Clone, Debug, Default)]
struct TernaryIndex {
    groups: Vec<TernaryGroup>,
}

/// The per-kind index structure backing [`Table`] lookups.
#[derive(Clone, Debug)]
enum KindIndex {
    Exact(HashMap<Vec<u64>, usize>),
    Lpm(LpmIndex),
    Range(RangeIndex),
    Ternary(TernaryIndex),
}

impl KindIndex {
    fn for_kind(kind: MatchKind) -> KindIndex {
        match kind {
            MatchKind::Exact => KindIndex::Exact(HashMap::new()),
            MatchKind::Lpm => KindIndex::Lpm(LpmIndex::default()),
            MatchKind::Range => KindIndex::Range(RangeIndex::default()),
            MatchKind::Ternary => KindIndex::Ternary(TernaryIndex::default()),
        }
    }
}

/// A table instance: definition plus runtime entries and their index.
#[derive(Clone, Debug)]
pub struct Table {
    def: TableDef,
    entries: Vec<Entry>,
    /// Insertion sequence per entry slot (parallel to `entries`):
    /// tie-breaks preserve the linear scan's first-inserted-wins
    /// semantics even though `swap_remove` recycles slots.
    seqs: Vec<u64>,
    next_seq: u64,
    index: KindIndex,
    stats: StatCells,
}

impl Table {
    /// Creates an empty table from a definition.
    pub fn new(def: TableDef) -> Table {
        let index = KindIndex::for_kind(def.kind);
        Table {
            def,
            entries: Vec::new(),
            seqs: Vec::new(),
            next_seq: 0,
            index,
            stats: StatCells::default(),
        }
    }

    /// The table definition.
    pub fn def(&self) -> &TableDef {
        &self.def
    }

    /// Current entry count.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` if the table has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Lookup statistics.
    pub fn stats(&self) -> TableStats {
        TableStats {
            hits: self.stats.hits.get(),
            misses: self.stats.misses.get(),
        }
    }

    /// Inserts an entry, validating kind, arity, and capacity.
    ///
    /// For exact tables an existing entry with the same key is
    /// replaced (the control plane's "modify" operation), keeping its
    /// slot and insertion order.
    pub fn insert(&mut self, entry: Entry) -> Result<(), VmError> {
        if !entry.key.kind_matches(self.def.kind) {
            return Err(VmError::BadEntry(format!(
                "table {}: key kind does not match {:?}",
                self.def.name, self.def.kind
            )));
        }
        if entry.key.arity() != self.def.key_fields.len() {
            return Err(VmError::BadEntry(format!(
                "table {}: key arity {} != {}",
                self.def.name,
                entry.key.arity(),
                self.def.key_fields.len()
            )));
        }
        if let MatchKey::Lpm { prefix_len, .. } = entry.key {
            if prefix_len > 64 {
                return Err(VmError::BadEntry(format!(
                    "table {}: prefix_len {prefix_len} > 64",
                    self.def.name
                )));
            }
        }
        if let (KindIndex::Exact(map), MatchKey::Exact(k)) = (&self.index, &entry.key) {
            if let Some(&i) = map.get(k) {
                self.entries[i] = entry;
                return Ok(());
            }
        }
        if self.entries.len() >= self.def.max_entries {
            return Err(VmError::TableFull(0));
        }
        let idx = self.entries.len();
        Self::index_insert(&mut self.index, &self.entries, idx, &entry);
        self.entries.push(entry);
        self.seqs.push(self.next_seq);
        self.next_seq += 1;
        Ok(())
    }

    /// Removes the first-inserted entry whose key equals `key`;
    /// returns whether anything was removed. The index locates the
    /// entry and is patched in place — no rebuild.
    pub fn remove(&mut self, key: &MatchKey) -> bool {
        match self.find_first(key) {
            Some(pos) => {
                self.remove_at(pos);
                true
            }
            None => false,
        }
    }

    /// Removes all entries.
    pub fn clear(&mut self) {
        self.entries.clear();
        self.seqs.clear();
        self.index = KindIndex::for_kind(self.def.kind);
    }

    /// Looks up the best-matching entry for concrete key values,
    /// updating hit/miss statistics.
    ///
    /// Selection: exact uses the hash index; LPM prefers the longest
    /// prefix; range/ternary prefer the highest priority (ties broken
    /// by insertion order).
    pub fn lookup(&self, key: &[u64]) -> Option<&Entry> {
        self.lookup_indexed(key).map(|(_, e)| e)
    }

    /// [`Table::lookup`] variant that also reports the matched entry's
    /// current slot (memoized by the machine's decision cache).
    pub fn lookup_indexed(&self, key: &[u64]) -> Option<(usize, &Entry)> {
        match self.lookup_index(key) {
            Some(i) => {
                self.note_hit();
                Some((i, &self.entries[i]))
            }
            None => {
                self.note_miss();
                None
            }
        }
    }

    /// Shared-read lookup; counts stats like [`Table::lookup`] now
    /// that the counters are interior-mutable (used by the JIT's
    /// pre-resolved dispatch and by tests).
    pub fn peek(&self, key: &[u64]) -> Option<&Entry> {
        self.lookup(key)
    }

    /// [`Table::lookup_indexed`] without touching the hit/miss
    /// counters: the compile-time resolution path (tail-call chain
    /// fusion) uses this, so only real fires show up in
    /// [`TableStats`] — the machine synthesizes the per-fire counts
    /// for fused steps via [`Table::note_hit`] / [`Table::note_miss`].
    pub fn resolve_indexed(&self, key: &[u64]) -> Option<(usize, &Entry)> {
        self.lookup_index(key).map(|i| (i, &self.entries[i]))
    }

    /// Records a hit resolved outside [`Table::lookup`] (decision-cache
    /// replay), keeping [`TableStats`] faithful to the fired workload.
    pub(crate) fn note_hit(&self) {
        self.stats.hits.set(self.stats.hits.get() + 1);
    }

    /// Records a miss resolved outside [`Table::lookup`].
    pub(crate) fn note_miss(&self) {
        self.stats.misses.set(self.stats.misses.get() + 1);
    }

    /// Reference linear scan with semantics identical to the indexed
    /// engine: the differential-test oracle, the benchmark baseline,
    /// and (below the per-kind [`LINEAR_CUTOFF_LPM`] /
    /// [`LINEAR_CUTOFF_TERNARY`] thresholds) the live small-table
    /// engine. Does not update stats.
    pub fn lookup_linear_ref(&self, key: &[u64]) -> Option<&Entry> {
        self.lookup_linear_index(key).map(|i| &self.entries[i])
    }

    /// The linear scan, reporting the winning entry's slot (the
    /// decision cache memoizes slots, so the small-table path must
    /// agree with the index down to the index value).
    fn lookup_linear_index(&self, key: &[u64]) -> Option<usize> {
        match self.def.kind {
            MatchKind::Exact => self.entries.iter().position(|e| e.key.matches(key)),
            MatchKind::Lpm => {
                let mut best: Option<usize> = None;
                for (i, e) in self.entries.iter().enumerate() {
                    let MatchKey::Lpm { prefix_len, .. } = e.key else {
                        continue;
                    };
                    if !e.key.matches(key) {
                        continue;
                    }
                    best = Some(match best {
                        Some(b) => {
                            let rank = |j: usize, len: u8| (len, self.entries[j].priority);
                            let (bl, _) = match self.entries[b].key {
                                MatchKey::Lpm { prefix_len, .. } => (prefix_len, 0),
                                _ => (0, 0),
                            };
                            if rank(i, prefix_len) > rank(b, bl)
                                || (rank(i, prefix_len) == rank(b, bl)
                                    && self.seqs[i] < self.seqs[b])
                            {
                                i
                            } else {
                                b
                            }
                        }
                        None => i,
                    });
                }
                best
            }
            MatchKind::Range | MatchKind::Ternary => {
                let mut best: Option<usize> = None;
                for (i, e) in self.entries.iter().enumerate() {
                    if !e.key.matches(key) {
                        continue;
                    }
                    best = Some(match best {
                        Some(b)
                            if self.entries[b].priority > e.priority
                                || (self.entries[b].priority == e.priority
                                    && self.seqs[b] < self.seqs[i]) =>
                        {
                            b
                        }
                        _ => i,
                    });
                }
                best
            }
        }
    }

    /// All entries (read-only; for control-plane dumps). Order is not
    /// insertion order — removal recycles slots.
    pub fn entries(&self) -> &[Entry] {
        &self.entries
    }

    /// All entries cloned in **insertion order** (ascending seq) — the
    /// snapshot serialization order. Re-inserting these into a fresh
    /// table reproduces the original first-inserted-wins tie-break
    /// ranking exactly, even though slot indices were shuffled by
    /// `swap_remove`, because re-insertion assigns fresh ascending
    /// seqs in the same relative order.
    pub fn entries_in_insertion_order(&self) -> Vec<Entry> {
        let mut order: Vec<usize> = (0..self.entries.len()).collect();
        order.sort_by_key(|&i| self.seqs[i]);
        order.into_iter().map(|i| self.entries[i].clone()).collect()
    }

    /// Overwrites the hit/miss counters (machine restore: a recovered
    /// table continues counting where the snapshotted one stopped).
    pub fn restore_stats(&mut self, stats: TableStats) {
        self.stats.hits.set(stats.hits);
        self.stats.misses.set(stats.misses);
    }

    /// `(priority, seq)` candidate `b` beats candidate `a`?
    #[inline]
    fn beats(&self, a: usize, b: usize) -> bool {
        self.entries[b].priority > self.entries[a].priority
            || (self.entries[b].priority == self.entries[a].priority && self.seqs[b] < self.seqs[a])
    }

    /// Whether this lookup should bypass the index: small LPM and
    /// ternary tables scan faster than they hash (see the module docs
    /// and the per-kind cutoffs). The index stays maintained either
    /// way, so this is a pure per-lookup dispatch.
    #[inline]
    fn linear_preferred(&self) -> bool {
        match self.def.kind {
            MatchKind::Exact | MatchKind::Range => false,
            MatchKind::Lpm => self.entries.len() <= LINEAR_CUTOFF_LPM,
            MatchKind::Ternary => self.entries.len() <= LINEAR_CUTOFF_TERNARY,
        }
    }

    /// [`Table::lookup`] forced through the index even below the
    /// small-table cutoffs. Benchmarks and differential tests use
    /// this to pin the crossover and to keep exercising the index on
    /// small tables; it counts stats like [`Table::lookup`].
    pub fn lookup_via_index(&self, key: &[u64]) -> Option<&Entry> {
        match self.index_walk(key) {
            Some(i) => {
                self.note_hit();
                Some(&self.entries[i])
            }
            None => {
                self.note_miss();
                None
            }
        }
    }

    fn lookup_index(&self, key: &[u64]) -> Option<usize> {
        if self.linear_preferred() {
            return self.lookup_linear_index(key);
        }
        self.index_walk(key)
    }

    fn index_walk(&self, key: &[u64]) -> Option<usize> {
        match &self.index {
            KindIndex::Exact(map) => map.get(key).copied(),
            KindIndex::Lpm(ix) => {
                if key.len() != 1 {
                    return None;
                }
                for g in &ix.groups {
                    let Some(bucket) = g.buckets.get(&lpm_bits(key[0], g.prefix_len)) else {
                        continue;
                    };
                    // Longest stratum with a populated bucket wins;
                    // within it, highest priority then earliest insert.
                    let mut best: Option<usize> = None;
                    for &i in bucket {
                        match best {
                            Some(b) if !self.beats(b, i) => {}
                            _ => best = Some(i),
                        }
                    }
                    if best.is_some() {
                        return best;
                    }
                }
                None
            }
            KindIndex::Range(ix) => {
                let mut best: Option<usize> = None;
                if key.len() == 1 {
                    let p = ix.spans.partition_point(|s| s.lo <= key[0]);
                    if p > 0 && ix.spans[p - 1].hi >= key[0] {
                        best = Some(ix.spans[p - 1].idx);
                    }
                }
                // Overflow is (priority desc, seq asc): stop as soon
                // as the remaining entries cannot beat the best.
                for &i in &ix.overflow {
                    if let Some(b) = best {
                        if !self.beats(b, i) && self.entries[i].priority <= self.entries[b].priority
                        {
                            // i and everything after it loses to b.
                            if self.entries[i].priority < self.entries[b].priority
                                || self.seqs[i] > self.seqs[b]
                            {
                                break;
                            }
                        }
                    }
                    if self.entries[i].key.matches(key) {
                        match best {
                            Some(b) if !self.beats(b, i) => {}
                            _ => best = Some(i),
                        }
                        // First overflow match dominates the rest of
                        // the (sorted) overflow list.
                        break;
                    }
                }
                best
            }
            KindIndex::Ternary(ix) => {
                let mut best: Option<usize> = None;
                for g in &ix.groups {
                    if let Some(b) = best {
                        // Groups are sorted by max_priority desc; a
                        // strictly-better best ends the search. Equal
                        // priorities must continue for seq tie-breaks.
                        if self.entries[b].priority > g.max_priority {
                            break;
                        }
                    }
                    if g.mask.len() != key.len() {
                        continue;
                    }
                    let Some(bucket) = g.buckets.get(&masked_fingerprint(key, &g.mask)) else {
                        continue;
                    };
                    for &i in bucket {
                        if !self.entries[i].key.matches(key) {
                            continue; // Fingerprint collision.
                        }
                        match best {
                            Some(b) if !self.beats(b, i) => {}
                            _ => best = Some(i),
                        }
                    }
                }
                best
            }
        }
    }

    /// Locates the first-inserted entry with exactly this key.
    fn find_first(&self, key: &MatchKey) -> Option<usize> {
        match (&self.index, key) {
            (KindIndex::Exact(map), MatchKey::Exact(k)) => map.get(k).copied(),
            (KindIndex::Lpm(ix), MatchKey::Lpm { value, prefix_len }) => {
                let g = ix.groups.iter().find(|g| g.prefix_len == *prefix_len)?;
                let bucket = g.buckets.get(&lpm_bits(*value, *prefix_len))?;
                bucket
                    .iter()
                    .copied()
                    .filter(|&i| self.entries[i].key == *key)
                    .min_by_key(|&i| self.seqs[i])
            }
            (KindIndex::Range(ix), MatchKey::Range(ranges)) => {
                let mut cands: Vec<usize> = Vec::new();
                if let [(lo, _)] = ranges.as_slice() {
                    let p = ix.spans.partition_point(|s| s.lo < *lo);
                    if let Some(s) = ix.spans.get(p) {
                        if s.lo == *lo && self.entries[s.idx].key == *key {
                            cands.push(s.idx);
                        }
                    }
                }
                cands.extend(
                    ix.overflow
                        .iter()
                        .copied()
                        .filter(|&i| self.entries[i].key == *key),
                );
                cands.into_iter().min_by_key(|&i| self.seqs[i])
            }
            (KindIndex::Ternary(ix), MatchKey::Ternary(parts)) => {
                let mask: Vec<u64> = parts.iter().map(|&(_, m)| m).collect();
                let vals: Vec<u64> = parts.iter().map(|&(v, _)| v).collect();
                let g = ix.groups.iter().find(|g| g.mask == mask)?;
                let bucket = g.buckets.get(&masked_fingerprint(&vals, &mask))?;
                bucket
                    .iter()
                    .copied()
                    .filter(|&i| self.entries[i].key == *key)
                    .min_by_key(|&i| self.seqs[i])
            }
            // Key kind differs from the table kind: nothing to find.
            _ => None,
        }
    }

    /// Removes the entry in slot `pos`: unindex it, `swap_remove` it,
    /// and repoint the index at the entry that moved into its slot.
    fn remove_at(&mut self, pos: usize) {
        let last = self.entries.len() - 1;
        Self::index_remove(&mut self.index, &self.entries, pos);
        if pos != last {
            Self::index_relocate(&mut self.index, &self.entries, last, pos);
        }
        self.entries.swap_remove(pos);
        self.seqs.swap_remove(pos);
    }

    fn index_insert(index: &mut KindIndex, entries: &[Entry], idx: usize, entry: &Entry) {
        match (index, &entry.key) {
            (KindIndex::Exact(map), MatchKey::Exact(k)) => {
                map.insert(k.clone(), idx);
            }
            (KindIndex::Lpm(ix), MatchKey::Lpm { value, prefix_len }) => {
                let bits = lpm_bits(*value, *prefix_len);
                let pos = ix.groups.partition_point(|g| g.prefix_len > *prefix_len);
                match ix.groups.get_mut(pos) {
                    Some(g) if g.prefix_len == *prefix_len => {
                        g.buckets.entry(bits).or_default().push(idx);
                    }
                    _ => {
                        let mut buckets = HashMap::new();
                        buckets.insert(bits, vec![idx]);
                        ix.groups.insert(
                            pos,
                            LpmGroup {
                                prefix_len: *prefix_len,
                                buckets,
                            },
                        );
                    }
                }
            }
            (KindIndex::Range(ix), MatchKey::Range(ranges)) => {
                if let [(lo, hi)] = ranges.as_slice() {
                    if lo <= hi && !Self::span_overlaps(&ix.spans, *lo, *hi) {
                        let p = ix.spans.partition_point(|s| s.lo < *lo);
                        ix.spans.insert(
                            p,
                            RangeSpan {
                                lo: *lo,
                                hi: *hi,
                                idx,
                            },
                        );
                        return;
                    }
                }
                // New entries carry the largest seq, so among equal
                // priorities they slot in last.
                let p = ix
                    .overflow
                    .partition_point(|&i| entries[i].priority >= entry.priority);
                ix.overflow.insert(p, idx);
            }
            (KindIndex::Ternary(ix), MatchKey::Ternary(parts)) => {
                let mask: Vec<u64> = parts.iter().map(|&(_, m)| m).collect();
                let vals: Vec<u64> = parts.iter().map(|&(v, _)| v).collect();
                let fp = masked_fingerprint(&vals, &mask);
                if let Some(gp) = ix.groups.iter().position(|g| g.mask == mask) {
                    let g = &mut ix.groups[gp];
                    g.buckets.entry(fp).or_default().push(idx);
                    if entry.priority > g.max_priority {
                        g.max_priority = entry.priority;
                        ix.groups.sort_by_key(|g| std::cmp::Reverse(g.max_priority));
                    }
                } else {
                    let p = ix
                        .groups
                        .partition_point(|g| g.max_priority >= entry.priority);
                    let mut buckets = HashMap::new();
                    buckets.insert(fp, vec![idx]);
                    ix.groups.insert(
                        p,
                        TernaryGroup {
                            mask,
                            max_priority: entry.priority,
                            buckets,
                        },
                    );
                }
            }
            _ => unreachable!("entry kind validated against table kind"),
        }
    }

    /// Whether `[lo, hi]` intersects any indexed span. Spans are
    /// non-overlapping and sorted, so only the rightmost span starting
    /// at or before `hi` can intersect.
    fn span_overlaps(spans: &[RangeSpan], lo: u64, hi: u64) -> bool {
        let p = spans.partition_point(|s| s.lo <= hi);
        p > 0 && spans[p - 1].hi >= lo
    }

    /// Drops slot `pos` from the index (entry still present in
    /// `entries`).
    fn index_remove(index: &mut KindIndex, entries: &[Entry], pos: usize) {
        match (index, &entries[pos].key) {
            (KindIndex::Exact(map), MatchKey::Exact(k)) => {
                map.remove(k);
            }
            (KindIndex::Lpm(ix), MatchKey::Lpm { value, prefix_len }) => {
                let gp = ix
                    .groups
                    .iter()
                    .position(|g| g.prefix_len == *prefix_len)
                    .expect("indexed entry has a stratum");
                let bits = lpm_bits(*value, *prefix_len);
                let g = &mut ix.groups[gp];
                let bucket = g
                    .buckets
                    .get_mut(&bits)
                    .expect("indexed entry has a bucket");
                bucket.retain(|&i| i != pos);
                if bucket.is_empty() {
                    g.buckets.remove(&bits);
                }
                if g.buckets.is_empty() {
                    ix.groups.remove(gp);
                }
            }
            (KindIndex::Range(ix), MatchKey::Range(ranges)) => {
                let mut in_spans = false;
                if let [(lo, _)] = ranges.as_slice() {
                    let p = ix.spans.partition_point(|s| s.lo < *lo);
                    if ix.spans.get(p).is_some_and(|s| s.lo == *lo && s.idx == pos) {
                        ix.spans.remove(p);
                        in_spans = true;
                    }
                }
                if !in_spans {
                    ix.overflow.retain(|&i| i != pos);
                }
            }
            (KindIndex::Ternary(ix), MatchKey::Ternary(parts)) => {
                let mask: Vec<u64> = parts.iter().map(|&(_, m)| m).collect();
                let vals: Vec<u64> = parts.iter().map(|&(v, _)| v).collect();
                let fp = masked_fingerprint(&vals, &mask);
                let gp = ix
                    .groups
                    .iter()
                    .position(|g| g.mask == mask)
                    .expect("indexed entry has a group");
                {
                    let g = &mut ix.groups[gp];
                    let bucket = g.buckets.get_mut(&fp).expect("indexed entry has a bucket");
                    bucket.retain(|&i| i != pos);
                    if bucket.is_empty() {
                        g.buckets.remove(&fp);
                    }
                }
                if ix.groups[gp].buckets.is_empty() {
                    ix.groups.remove(gp);
                } else if entries[pos].priority == ix.groups[gp].max_priority {
                    // The group may have lost its best entry; keep the
                    // early-exit bound exact.
                    let m = ix.groups[gp]
                        .buckets
                        .values()
                        .flatten()
                        .map(|&i| entries[i].priority)
                        .max()
                        .unwrap_or(0);
                    if m != ix.groups[gp].max_priority {
                        ix.groups[gp].max_priority = m;
                        ix.groups.sort_by_key(|g| std::cmp::Reverse(g.max_priority));
                    }
                }
            }
            _ => unreachable!("entry kind validated against table kind"),
        }
    }

    /// Repoints the index reference for the entry currently in slot
    /// `from` (about to be swapped into slot `to`).
    fn index_relocate(index: &mut KindIndex, entries: &[Entry], from: usize, to: usize) {
        match (index, &entries[from].key) {
            (KindIndex::Exact(map), MatchKey::Exact(k)) => {
                if let Some(slot) = map.get_mut(k) {
                    *slot = to;
                }
            }
            (KindIndex::Lpm(ix), MatchKey::Lpm { value, prefix_len }) => {
                if let Some(g) = ix.groups.iter_mut().find(|g| g.prefix_len == *prefix_len) {
                    if let Some(bucket) = g.buckets.get_mut(&lpm_bits(*value, *prefix_len)) {
                        for i in bucket.iter_mut() {
                            if *i == from {
                                *i = to;
                            }
                        }
                    }
                }
            }
            (KindIndex::Range(ix), MatchKey::Range(ranges)) => {
                if let [(lo, _)] = ranges.as_slice() {
                    let p = ix.spans.partition_point(|s| s.lo < *lo);
                    if let Some(s) = ix.spans.get_mut(p) {
                        if s.lo == *lo && s.idx == from {
                            s.idx = to;
                            return;
                        }
                    }
                }
                for i in ix.overflow.iter_mut() {
                    if *i == from {
                        *i = to;
                    }
                }
            }
            (KindIndex::Ternary(ix), MatchKey::Ternary(parts)) => {
                let mask: Vec<u64> = parts.iter().map(|&(_, m)| m).collect();
                let vals: Vec<u64> = parts.iter().map(|&(v, _)| v).collect();
                let fp = masked_fingerprint(&vals, &mask);
                if let Some(g) = ix.groups.iter_mut().find(|g| g.mask == mask) {
                    if let Some(bucket) = g.buckets.get_mut(&fp) {
                        for i in bucket.iter_mut() {
                            if *i == from {
                                *i = to;
                            }
                        }
                    }
                }
            }
            _ => unreachable!("entry kind validated against table kind"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn def(kind: MatchKind, arity: usize) -> TableDef {
        TableDef {
            name: "t".into(),
            hook: "h".into(),
            key_fields: (0..arity as u16).map(FieldId).collect(),
            kind,
            default_action: None,
            max_entries: 8,
        }
    }

    fn def_cap(kind: MatchKind, arity: usize, cap: usize) -> TableDef {
        TableDef {
            max_entries: cap,
            ..def(kind, arity)
        }
    }

    fn entry(key: MatchKey, priority: u32, action: u16) -> Entry {
        Entry {
            key,
            priority,
            action: ActionId(action),
            arg: 0,
        }
    }

    #[test]
    fn exact_match_and_replace() {
        let mut t = Table::new(def(MatchKind::Exact, 2));
        t.insert(entry(MatchKey::Exact(vec![1, 2]), 0, 1)).unwrap();
        assert_eq!(t.lookup(&[1, 2]).unwrap().action, ActionId(1));
        assert!(t.lookup(&[1, 3]).is_none());
        // Same key replaces, not duplicates.
        t.insert(entry(MatchKey::Exact(vec![1, 2]), 0, 7)).unwrap();
        assert_eq!(t.len(), 1);
        assert_eq!(t.lookup(&[1, 2]).unwrap().action, ActionId(7));
        assert_eq!(t.stats().hits, 2);
        assert_eq!(t.stats().misses, 1);
    }

    #[test]
    fn kind_and_arity_validation() {
        let mut t = Table::new(def(MatchKind::Exact, 2));
        assert!(matches!(
            t.insert(entry(MatchKey::Exact(vec![1]), 0, 0)),
            Err(VmError::BadEntry(_))
        ));
        assert!(matches!(
            t.insert(entry(MatchKey::Range(vec![(0, 1), (0, 1)]), 0, 0)),
            Err(VmError::BadEntry(_))
        ));
        let mut l = Table::new(def(MatchKind::Lpm, 1));
        assert!(l
            .insert(entry(
                MatchKey::Lpm {
                    value: 0,
                    prefix_len: 65
                },
                0,
                0
            ))
            .is_err());
    }

    #[test]
    fn capacity_limit() {
        let mut t = Table::new(def(MatchKind::Exact, 1));
        for i in 0..8 {
            t.insert(entry(MatchKey::Exact(vec![i]), 0, 0)).unwrap();
        }
        assert!(matches!(
            t.insert(entry(MatchKey::Exact(vec![99]), 0, 0)),
            Err(VmError::TableFull(_))
        ));
        // Replacement still allowed at capacity.
        t.insert(entry(MatchKey::Exact(vec![3]), 0, 5)).unwrap();
    }

    #[test]
    fn lpm_longest_prefix_wins() {
        let mut t = Table::new(def(MatchKind::Lpm, 1));
        let key = 0xAB00_0000_0000_0000u64;
        t.insert(entry(
            MatchKey::Lpm {
                value: 0xA000_0000_0000_0000,
                prefix_len: 4,
            },
            0,
            1,
        ))
        .unwrap();
        t.insert(entry(
            MatchKey::Lpm {
                value: 0xAB00_0000_0000_0000,
                prefix_len: 8,
            },
            0,
            2,
        ))
        .unwrap();
        assert_eq!(t.lookup(&[key]).unwrap().action, ActionId(2));
        // Zero-length prefix matches everything.
        t.insert(entry(
            MatchKey::Lpm {
                value: 0,
                prefix_len: 0,
            },
            0,
            3,
        ))
        .unwrap();
        assert_eq!(t.lookup(&[0x1234]).unwrap().action, ActionId(3));
    }

    #[test]
    fn lpm_priority_and_insertion_tiebreaks() {
        let mut t = Table::new(def(MatchKind::Lpm, 1));
        let k = MatchKey::Lpm {
            value: 0xFF00_0000_0000_0000,
            prefix_len: 8,
        };
        t.insert(entry(k.clone(), 1, 1)).unwrap();
        t.insert(entry(k.clone(), 5, 2)).unwrap();
        t.insert(entry(k.clone(), 5, 3)).unwrap();
        // Highest priority wins; equal priorities resolve to the
        // earliest inserted.
        assert_eq!(
            t.lookup(&[0xFF12_0000_0000_0000]).unwrap().action,
            ActionId(2)
        );
        // A longer prefix beats any priority on a shorter one.
        t.insert(entry(
            MatchKey::Lpm {
                value: 0xFF10_0000_0000_0000,
                prefix_len: 16,
            },
            0,
            4,
        ))
        .unwrap();
        assert_eq!(
            t.lookup(&[0xFF10_0000_0000_0001]).unwrap().action,
            ActionId(4)
        );
    }

    #[test]
    fn range_match_priority() {
        let mut t = Table::new(def(MatchKind::Range, 1));
        t.insert(entry(MatchKey::Range(vec![(0, 100)]), 1, 1))
            .unwrap();
        t.insert(entry(MatchKey::Range(vec![(50, 60)]), 5, 2))
            .unwrap();
        assert_eq!(t.lookup(&[55]).unwrap().action, ActionId(2));
        assert_eq!(t.lookup(&[10]).unwrap().action, ActionId(1));
        assert!(t.lookup(&[101]).is_none());
    }

    #[test]
    fn range_disjoint_spans_and_multi_component() {
        let mut t = Table::new(def_cap(MatchKind::Range, 1, 64));
        // Disjoint spans land in the binary-searchable index.
        for i in 0..10u64 {
            t.insert(entry(
                MatchKey::Range(vec![(i * 10, i * 10 + 5)]),
                0,
                i as u16,
            ))
            .unwrap();
        }
        assert_eq!(t.lookup(&[42]).unwrap().action, ActionId(4));
        assert!(t.lookup(&[47]).is_none());
        // An empty (lo > hi) range matches nothing but must not poison
        // the span index.
        t.insert(entry(MatchKey::Range(vec![(9, 3)]), 9, 99))
            .unwrap();
        assert_eq!(t.lookup(&[4]).unwrap().action, ActionId(0));

        let mut m = Table::new(def_cap(MatchKind::Range, 2, 8));
        m.insert(entry(MatchKey::Range(vec![(0, 10), (5, 9)]), 1, 1))
            .unwrap();
        assert_eq!(m.lookup(&[3, 7]).unwrap().action, ActionId(1));
        assert!(m.lookup(&[3, 4]).is_none());
    }

    #[test]
    fn ternary_mask_match() {
        let mut t = Table::new(def(MatchKind::Ternary, 1));
        // Match any key whose low nibble is 0b0001.
        t.insert(entry(MatchKey::Ternary(vec![(0x1, 0xF)]), 1, 1))
            .unwrap();
        assert!(t.lookup(&[0x31]).is_some());
        assert!(t.lookup(&[0x32]).is_none());
        // Wildcard-all entry with lower priority.
        t.insert(entry(MatchKey::Ternary(vec![(0, 0)]), 0, 2))
            .unwrap();
        assert_eq!(t.lookup(&[0x32]).unwrap().action, ActionId(2));
        assert_eq!(t.lookup(&[0x31]).unwrap().action, ActionId(1));
    }

    #[test]
    fn remove_and_clear() {
        let mut t = Table::new(def(MatchKind::Exact, 1));
        t.insert(entry(MatchKey::Exact(vec![1]), 0, 1)).unwrap();
        t.insert(entry(MatchKey::Exact(vec![2]), 0, 2)).unwrap();
        assert!(t.remove(&MatchKey::Exact(vec![1])));
        assert!(!t.remove(&MatchKey::Exact(vec![1])));
        assert!(t.lookup(&[1]).is_none());
        assert_eq!(t.lookup(&[2]).unwrap().action, ActionId(2));
        t.clear();
        assert!(t.is_empty());
        assert!(t.lookup(&[2]).is_none());
    }

    #[test]
    fn remove_takes_first_inserted_duplicate() {
        let mut t = Table::new(def(MatchKind::Ternary, 1));
        let k = MatchKey::Ternary(vec![(0x1, 0xF)]);
        t.insert(entry(k.clone(), 3, 1)).unwrap();
        t.insert(entry(k.clone(), 7, 2)).unwrap();
        assert!(t.remove(&k));
        // The first-inserted duplicate (action 1) went; the second
        // remains and still matches.
        assert_eq!(t.len(), 1);
        assert_eq!(t.lookup(&[0x21]).unwrap().action, ActionId(2));
        assert!(t.remove(&k));
        assert!(t.is_empty());
    }

    /// Satellite: removal patches the index incrementally; a long
    /// insert/remove churn must keep every kind's index coherent (and
    /// stay fast — the old path rebuilt the exact index per removal).
    #[test]
    fn churn_10k_insert_remove_keeps_indexes_coherent() {
        let mut exact = Table::new(def_cap(MatchKind::Exact, 1, 64));
        let mut lpm = Table::new(def_cap(MatchKind::Lpm, 1, 64));
        let mut tern = Table::new(def_cap(MatchKind::Ternary, 1, 64));
        let mut rng_state = 0x1234_5678_9ABC_DEF0u64;
        let mut next = || {
            rng_state = rng_state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            rng_state >> 33
        };
        for cycle in 0..10_000u64 {
            let v = next() % 48;
            exact
                .insert(entry(MatchKey::Exact(vec![v]), 0, v as u16))
                .unwrap();
            let lk = MatchKey::Lpm {
                value: v << 56,
                prefix_len: 8,
            };
            if lpm.len() < 48 {
                lpm.insert(entry(lk.clone(), 0, v as u16)).unwrap();
            }
            let tk = MatchKey::Ternary(vec![(v, 0xFF)]);
            if tern.len() < 48 {
                tern.insert(entry(tk.clone(), (v % 7) as u32, v as u16))
                    .unwrap();
            }
            let w = next() % 48;
            exact.remove(&MatchKey::Exact(vec![w]));
            lpm.remove(&MatchKey::Lpm {
                value: w << 56,
                prefix_len: 8,
            });
            tern.remove(&MatchKey::Ternary(vec![(w, 0xFF)]));
            if cycle % 512 == 0 {
                // Indexed results must agree with the linear oracle.
                for probe in 0..48u64 {
                    assert_eq!(
                        exact.peek(&[probe]).map(|e| e.action),
                        exact.lookup_linear_ref(&[probe]).map(|e| e.action),
                    );
                    let pk = [probe << 56 | 0x1234];
                    assert_eq!(
                        lpm.peek(&pk).map(|e| e.action),
                        lpm.lookup_linear_ref(&pk).map(|e| e.action),
                    );
                    assert_eq!(
                        tern.peek(&[probe]).map(|e| e.action),
                        tern.lookup_linear_ref(&[probe]).map(|e| e.action),
                    );
                }
            }
        }
    }

    /// Satellite: stats count through shared references — `peek` and
    /// `lookup` both take `&self` and both count.
    #[test]
    fn stats_count_through_shared_refs() {
        let mut t = Table::new(def(MatchKind::Exact, 1));
        t.insert(entry(MatchKey::Exact(vec![1]), 0, 1)).unwrap();
        let shared: &Table = &t;
        assert!(shared.peek(&[1]).is_some());
        assert!(shared.peek(&[2]).is_none());
        assert!(shared.lookup(&[1]).is_some());
        assert_eq!(shared.stats(), TableStats { hits: 2, misses: 1 });
        // The oracle is stat-free by contract.
        assert!(shared.lookup_linear_ref(&[1]).is_some());
        assert_eq!(shared.stats(), TableStats { hits: 2, misses: 1 });
    }

    #[test]
    fn match_key_helpers() {
        assert_eq!(MatchKey::Exact(vec![1, 2]).arity(), 2);
        assert_eq!(
            MatchKey::Lpm {
                value: 0,
                prefix_len: 8
            }
            .arity(),
            1
        );
        assert!(MatchKey::Exact(vec![]).kind_matches(MatchKind::Exact));
        assert!(!MatchKey::Exact(vec![]).kind_matches(MatchKind::Range));
        // Mismatched arity never matches.
        assert!(!MatchKey::Range(vec![(0, 9)]).matches(&[1, 2]));
        assert!(!MatchKey::Lpm {
            value: 0,
            prefix_len: 1
        }
        .matches(&[1, 2]));
    }
}

rkd_testkit::impl_json_newtype!(TableId(u16));
rkd_testkit::impl_json_newtype!(ActionId(u16));

rkd_testkit::impl_json_unit_enum!(MatchKind {
    Exact,
    Lpm,
    Range,
    Ternary
});

rkd_testkit::impl_json_enum!(MatchKey {
    Exact(values),
    Lpm { value, prefix_len },
    Range(ranges),
    Ternary(parts),
});

rkd_testkit::impl_json_struct!(Entry {
    key,
    priority,
    action,
    arg
});

rkd_testkit::impl_json_struct!(TableDef {
    name,
    hook,
    key_fields,
    kind,
    default_action,
    max_entries
});

rkd_testkit::impl_json_struct!(TableStats { hits, misses });
