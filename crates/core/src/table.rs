//! Reconfigurable match/action tables.
//!
//! §3.1: "The key building block of an RMT program is a pipeline of
//! match/action tables. Each table represents a kernel hooking point …
//! Each table contains a set of match/action entries, which can be
//! statically encoded in the RMT program or dynamically inserted or
//! removed via an API at runtime."
//!
//! Tables support the match kinds RMT switch pipelines support: exact,
//! longest-prefix, range, and ternary (value/mask with priority).

use crate::ctxt::FieldId;
use crate::error::VmError;
use std::collections::HashMap;

/// Identifies a table within a program.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TableId(pub u16);

/// Identifies an action within a program.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct ActionId(pub u16);

/// How a table matches its key fields.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum MatchKind {
    /// All key components must equal the entry's values.
    Exact,
    /// Single-component key matched by longest prefix (like routing
    /// tables; used for page-range and cgroup-subtree aggregates).
    Lpm,
    /// Each key component must fall within the entry's inclusive range.
    Range,
    /// Value/mask match with explicit priority (highest wins).
    Ternary,
}

/// An entry's match key, of the kind its table declares.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MatchKey {
    /// Exact values, one per key field.
    Exact(Vec<u64>),
    /// A prefix `value` of length `prefix_len` bits (MSB-first) over a
    /// single 64-bit key component.
    Lpm {
        /// Prefix value (only the top `prefix_len` bits are relevant).
        value: u64,
        /// Prefix length in bits, `0..=64`.
        prefix_len: u8,
    },
    /// Inclusive `(lo, hi)` per key component.
    Range(Vec<(u64, u64)>),
    /// Per-component `(value, mask)`; a component matches when
    /// `key & mask == value & mask`.
    Ternary(Vec<(u64, u64)>),
}

impl MatchKey {
    /// Number of key components this key covers.
    pub fn arity(&self) -> usize {
        match self {
            MatchKey::Exact(v) => v.len(),
            MatchKey::Lpm { .. } => 1,
            MatchKey::Range(v) => v.len(),
            MatchKey::Ternary(v) => v.len(),
        }
    }

    /// Whether this key's kind matches a table's [`MatchKind`].
    pub fn kind_matches(&self, kind: MatchKind) -> bool {
        matches!(
            (self, kind),
            (MatchKey::Exact(_), MatchKind::Exact)
                | (MatchKey::Lpm { .. }, MatchKind::Lpm)
                | (MatchKey::Range(_), MatchKind::Range)
                | (MatchKey::Ternary(_), MatchKind::Ternary)
        )
    }

    /// Tests the key against concrete key-field values.
    pub fn matches(&self, key: &[u64]) -> bool {
        match self {
            MatchKey::Exact(vals) => key == vals.as_slice(),
            MatchKey::Lpm { value, prefix_len } => {
                if key.len() != 1 {
                    return false;
                }
                if *prefix_len == 0 {
                    return true;
                }
                if *prefix_len > 64 {
                    return false;
                }
                let shift = 64 - *prefix_len as u32;
                (key[0] >> shift) == (*value >> shift)
            }
            MatchKey::Range(ranges) => {
                key.len() == ranges.len()
                    && key
                        .iter()
                        .zip(ranges.iter())
                        .all(|(k, (lo, hi))| k >= lo && k <= hi)
            }
            MatchKey::Ternary(parts) => {
                key.len() == parts.len()
                    && key
                        .iter()
                        .zip(parts.iter())
                        .all(|(k, (v, m))| k & m == v & m)
            }
        }
    }
}

/// One match/action entry.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Entry {
    /// The match key.
    pub key: MatchKey,
    /// Priority for ternary/range tables (higher wins; ignored for
    /// exact, where keys are unique; for LPM longer prefixes win first
    /// and priority breaks ties).
    pub priority: u32,
    /// Action invoked on match.
    pub action: ActionId,
    /// Opaque argument passed to the action in register `r9` (e.g. a
    /// per-entry model slot or aggressiveness level).
    pub arg: i64,
}

/// Static declaration of a table (shape only; entries are runtime
/// state owned by [`Table`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TableDef {
    /// Table name (e.g. `"page_prefetch_tab"`).
    pub name: String,
    /// The kernel hook point this table is installed at (e.g.
    /// `"swap_cluster_readahead"`). Matched by name against the hook
    /// registry of the embedding kernel.
    pub hook: String,
    /// Context fields forming the match key, in order.
    pub key_fields: Vec<FieldId>,
    /// The match kind.
    pub kind: MatchKind,
    /// Action to run when no entry matches (`None` = pipeline
    /// continues / no-op).
    pub default_action: Option<ActionId>,
    /// Capacity limit for runtime entries.
    pub max_entries: usize,
}

/// Hit/miss counters for one table.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TableStats {
    /// Lookups that matched an entry.
    pub hits: u64,
    /// Lookups that fell through to the default action.
    pub misses: u64,
}

/// A table instance: definition plus runtime entries.
#[derive(Clone, Debug)]
pub struct Table {
    def: TableDef,
    /// Exact-match fast path: key -> entry index.
    exact_index: HashMap<Vec<u64>, usize>,
    entries: Vec<Entry>,
    stats: TableStats,
}

impl Table {
    /// Creates an empty table from a definition.
    pub fn new(def: TableDef) -> Table {
        Table {
            def,
            exact_index: HashMap::new(),
            entries: Vec::new(),
            stats: TableStats::default(),
        }
    }

    /// The table definition.
    pub fn def(&self) -> &TableDef {
        &self.def
    }

    /// Current entry count.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` if the table has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Lookup statistics.
    pub fn stats(&self) -> TableStats {
        self.stats
    }

    /// Inserts an entry, validating kind, arity, and capacity.
    ///
    /// For exact tables an existing entry with the same key is
    /// replaced (the control plane's "modify" operation).
    pub fn insert(&mut self, entry: Entry) -> Result<(), VmError> {
        if !entry.key.kind_matches(self.def.kind) {
            return Err(VmError::BadEntry(format!(
                "table {}: key kind does not match {:?}",
                self.def.name, self.def.kind
            )));
        }
        if entry.key.arity() != self.def.key_fields.len() {
            return Err(VmError::BadEntry(format!(
                "table {}: key arity {} != {}",
                self.def.name,
                entry.key.arity(),
                self.def.key_fields.len()
            )));
        }
        if let MatchKey::Lpm { prefix_len, .. } = entry.key {
            if prefix_len > 64 {
                return Err(VmError::BadEntry(format!(
                    "table {}: prefix_len {prefix_len} > 64",
                    self.def.name
                )));
            }
        }
        if let MatchKey::Exact(k) = &entry.key {
            if let Some(&i) = self.exact_index.get(k) {
                self.entries[i] = entry;
                return Ok(());
            }
        }
        if self.entries.len() >= self.def.max_entries {
            return Err(VmError::TableFull(0));
        }
        if let MatchKey::Exact(k) = &entry.key {
            self.exact_index.insert(k.clone(), self.entries.len());
        }
        self.entries.push(entry);
        Ok(())
    }

    /// Removes the first entry whose key equals `key`; returns whether
    /// anything was removed.
    pub fn remove(&mut self, key: &MatchKey) -> bool {
        if let Some(pos) = self.entries.iter().position(|e| &e.key == key) {
            self.entries.remove(pos);
            self.rebuild_exact_index();
            true
        } else {
            false
        }
    }

    /// Removes all entries.
    pub fn clear(&mut self) {
        self.entries.clear();
        self.exact_index.clear();
    }

    /// Looks up the best-matching entry for concrete key values,
    /// updating hit/miss statistics.
    ///
    /// Selection: exact uses the hash index; LPM prefers the longest
    /// prefix; range/ternary prefer the highest priority (ties broken
    /// by insertion order).
    pub fn lookup(&mut self, key: &[u64]) -> Option<&Entry> {
        let idx = self.lookup_index(key);
        match idx {
            Some(i) => {
                self.stats.hits += 1;
                Some(&self.entries[i])
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Side-effect-free lookup (no stats update); used by the JIT's
    /// pre-resolved dispatch and by tests.
    pub fn peek(&self, key: &[u64]) -> Option<&Entry> {
        self.lookup_index(key).map(|i| &self.entries[i])
    }

    fn lookup_index(&self, key: &[u64]) -> Option<usize> {
        match self.def.kind {
            MatchKind::Exact => self.exact_index.get(key).copied(),
            MatchKind::Lpm => {
                let mut best: Option<(u8, u32, usize)> = None;
                for (i, e) in self.entries.iter().enumerate() {
                    if let MatchKey::Lpm { prefix_len, .. } = e.key {
                        if e.key.matches(key) {
                            let cand = (prefix_len, e.priority, i);
                            best = match best {
                                Some(b) if (b.0, b.1) >= (cand.0, cand.1) => Some(b),
                                _ => Some(cand),
                            };
                        }
                    }
                }
                best.map(|(_, _, i)| i)
            }
            MatchKind::Range | MatchKind::Ternary => {
                let mut best: Option<(u32, usize)> = None;
                for (i, e) in self.entries.iter().enumerate() {
                    if e.key.matches(key) {
                        best = match best {
                            Some(b) if b.0 >= e.priority => Some(b),
                            _ => Some((e.priority, i)),
                        };
                    }
                }
                best.map(|(_, i)| i)
            }
        }
    }

    /// All entries (read-only; for control-plane dumps).
    pub fn entries(&self) -> &[Entry] {
        &self.entries
    }

    fn rebuild_exact_index(&mut self) {
        self.exact_index.clear();
        for (i, e) in self.entries.iter().enumerate() {
            if let MatchKey::Exact(k) = &e.key {
                self.exact_index.insert(k.clone(), i);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn def(kind: MatchKind, arity: usize) -> TableDef {
        TableDef {
            name: "t".into(),
            hook: "h".into(),
            key_fields: (0..arity as u16).map(FieldId).collect(),
            kind,
            default_action: None,
            max_entries: 8,
        }
    }

    fn entry(key: MatchKey, priority: u32, action: u16) -> Entry {
        Entry {
            key,
            priority,
            action: ActionId(action),
            arg: 0,
        }
    }

    #[test]
    fn exact_match_and_replace() {
        let mut t = Table::new(def(MatchKind::Exact, 2));
        t.insert(entry(MatchKey::Exact(vec![1, 2]), 0, 1)).unwrap();
        assert_eq!(t.lookup(&[1, 2]).unwrap().action, ActionId(1));
        assert!(t.lookup(&[1, 3]).is_none());
        // Same key replaces, not duplicates.
        t.insert(entry(MatchKey::Exact(vec![1, 2]), 0, 7)).unwrap();
        assert_eq!(t.len(), 1);
        assert_eq!(t.lookup(&[1, 2]).unwrap().action, ActionId(7));
        assert_eq!(t.stats().hits, 2);
        assert_eq!(t.stats().misses, 1);
    }

    #[test]
    fn kind_and_arity_validation() {
        let mut t = Table::new(def(MatchKind::Exact, 2));
        assert!(matches!(
            t.insert(entry(MatchKey::Exact(vec![1]), 0, 0)),
            Err(VmError::BadEntry(_))
        ));
        assert!(matches!(
            t.insert(entry(MatchKey::Range(vec![(0, 1), (0, 1)]), 0, 0)),
            Err(VmError::BadEntry(_))
        ));
        let mut l = Table::new(def(MatchKind::Lpm, 1));
        assert!(l
            .insert(entry(
                MatchKey::Lpm {
                    value: 0,
                    prefix_len: 65
                },
                0,
                0
            ))
            .is_err());
    }

    #[test]
    fn capacity_limit() {
        let mut t = Table::new(def(MatchKind::Exact, 1));
        for i in 0..8 {
            t.insert(entry(MatchKey::Exact(vec![i]), 0, 0)).unwrap();
        }
        assert!(matches!(
            t.insert(entry(MatchKey::Exact(vec![99]), 0, 0)),
            Err(VmError::TableFull(_))
        ));
        // Replacement still allowed at capacity.
        t.insert(entry(MatchKey::Exact(vec![3]), 0, 5)).unwrap();
    }

    #[test]
    fn lpm_longest_prefix_wins() {
        let mut t = Table::new(def(MatchKind::Lpm, 1));
        let key = 0xAB00_0000_0000_0000u64;
        t.insert(entry(
            MatchKey::Lpm {
                value: 0xA000_0000_0000_0000,
                prefix_len: 4,
            },
            0,
            1,
        ))
        .unwrap();
        t.insert(entry(
            MatchKey::Lpm {
                value: 0xAB00_0000_0000_0000,
                prefix_len: 8,
            },
            0,
            2,
        ))
        .unwrap();
        assert_eq!(t.lookup(&[key]).unwrap().action, ActionId(2));
        // Zero-length prefix matches everything.
        t.insert(entry(
            MatchKey::Lpm {
                value: 0,
                prefix_len: 0,
            },
            0,
            3,
        ))
        .unwrap();
        assert_eq!(t.lookup(&[0x1234]).unwrap().action, ActionId(3));
    }

    #[test]
    fn range_match_priority() {
        let mut t = Table::new(def(MatchKind::Range, 1));
        t.insert(entry(MatchKey::Range(vec![(0, 100)]), 1, 1))
            .unwrap();
        t.insert(entry(MatchKey::Range(vec![(50, 60)]), 5, 2))
            .unwrap();
        assert_eq!(t.lookup(&[55]).unwrap().action, ActionId(2));
        assert_eq!(t.lookup(&[10]).unwrap().action, ActionId(1));
        assert!(t.lookup(&[101]).is_none());
    }

    #[test]
    fn ternary_mask_match() {
        let mut t = Table::new(def(MatchKind::Ternary, 1));
        // Match any key whose low nibble is 0b0001.
        t.insert(entry(MatchKey::Ternary(vec![(0x1, 0xF)]), 1, 1))
            .unwrap();
        assert!(t.lookup(&[0x31]).is_some());
        assert!(t.lookup(&[0x32]).is_none());
        // Wildcard-all entry with lower priority.
        t.insert(entry(MatchKey::Ternary(vec![(0, 0)]), 0, 2))
            .unwrap();
        assert_eq!(t.lookup(&[0x32]).unwrap().action, ActionId(2));
        assert_eq!(t.lookup(&[0x31]).unwrap().action, ActionId(1));
    }

    #[test]
    fn remove_and_clear() {
        let mut t = Table::new(def(MatchKind::Exact, 1));
        t.insert(entry(MatchKey::Exact(vec![1]), 0, 1)).unwrap();
        t.insert(entry(MatchKey::Exact(vec![2]), 0, 2)).unwrap();
        assert!(t.remove(&MatchKey::Exact(vec![1])));
        assert!(!t.remove(&MatchKey::Exact(vec![1])));
        assert!(t.lookup(&[1]).is_none());
        assert_eq!(t.lookup(&[2]).unwrap().action, ActionId(2));
        t.clear();
        assert!(t.is_empty());
        assert!(t.lookup(&[2]).is_none());
    }

    #[test]
    fn match_key_helpers() {
        assert_eq!(MatchKey::Exact(vec![1, 2]).arity(), 2);
        assert_eq!(
            MatchKey::Lpm {
                value: 0,
                prefix_len: 8
            }
            .arity(),
            1
        );
        assert!(MatchKey::Exact(vec![]).kind_matches(MatchKind::Exact));
        assert!(!MatchKey::Exact(vec![]).kind_matches(MatchKind::Range));
        // Mismatched arity never matches.
        assert!(!MatchKey::Range(vec![(0, 9)]).matches(&[1, 2]));
        assert!(!MatchKey::Lpm {
            value: 0,
            prefix_len: 1
        }
        .matches(&[1, 2]));
    }
}

rkd_testkit::impl_json_newtype!(TableId(u16));
rkd_testkit::impl_json_newtype!(ActionId(u16));

rkd_testkit::impl_json_unit_enum!(MatchKind {
    Exact,
    Lpm,
    Range,
    Ternary
});

rkd_testkit::impl_json_enum!(MatchKey {
    Exact(values),
    Lpm { value, prefix_len },
    Range(ranges),
    Ternary(parts),
});

rkd_testkit::impl_json_struct!(Entry {
    key,
    priority,
    action,
    arg
});

rkd_testkit::impl_json_struct!(TableDef {
    name,
    hook,
    key_fields,
    kind,
    default_action,
    max_entries
});

rkd_testkit::impl_json_struct!(TableStats { hits, misses });
