//! Error types for the RMT virtual machine.

use core::fmt;
use rkd_ml::MlError;

/// Errors raised by the verifier when admitting an RMT program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VerifyError {
    /// A table referenced an undefined context field.
    UnknownField {
        /// Table or action where the reference occurred.
        site: String,
        /// The offending field id.
        field: u16,
    },
    /// An entry referenced a table id that does not exist.
    UnknownTable(u16),
    /// An entry or instruction referenced an action that does not exist.
    UnknownAction(u16),
    /// An instruction referenced a map that does not exist.
    UnknownMap(u16),
    /// An instruction referenced an ML model slot that does not exist.
    UnknownModel(u16),
    /// An entry's match key arity does not match its table's key schema.
    KeyArityMismatch {
        /// Table id.
        table: u16,
        /// Expected number of key components.
        expected: usize,
        /// Provided number of key components.
        got: usize,
    },
    /// An entry's match-key kind does not match the table's match kind.
    KeyKindMismatch {
        /// Table id.
        table: u16,
    },
    /// A register index was out of range.
    BadRegister(u8),
    /// A vector register index was out of range.
    BadVectorRegister(u8),
    /// A jump target was outside the action body.
    BadJumpTarget {
        /// Action id.
        action: u16,
        /// Instruction index of the jump.
        at: usize,
        /// The invalid target.
        target: usize,
    },
    /// A backward jump was found without a declared loop bound.
    UnboundedLoop {
        /// Action id.
        action: u16,
        /// Instruction index of the back edge.
        at: usize,
    },
    /// An action can fall off the end without `Exit`.
    MissingExit(u16),
    /// An instruction reads a register that may be uninitialized.
    UninitializedRegister {
        /// Action id.
        action: u16,
        /// Instruction index.
        at: usize,
        /// Register number.
        reg: u8,
    },
    /// The worst-case instruction count exceeds the execution budget.
    ExecutionBudgetExceeded {
        /// Action id.
        action: u16,
        /// Computed worst-case instruction count.
        worst_case: u64,
        /// Budget.
        budget: u64,
    },
    /// A helper call is not in the whitelist for this hook class.
    HelperNotAllowed {
        /// Action id.
        action: u16,
        /// Helper name.
        helper: &'static str,
    },
    /// A model guard's own parameters are incoherent.
    BadGuard {
        /// Model slot.
        model: u16,
    },
    /// An ML model failed the admission cost check.
    ModelOverBudget {
        /// Model slot.
        model: u16,
        /// Underlying cost error.
        source: MlError,
    },
    /// A model's declared feature arity disagrees with the feature
    /// vector the action constructs.
    ModelArityMismatch {
        /// Model slot.
        model: u16,
        /// Features the model expects.
        expected: usize,
        /// Features the action supplies.
        got: usize,
    },
    /// A tail-call chain can exceed the configured depth.
    TailCallTooDeep {
        /// Maximum allowed depth.
        max: usize,
    },
    /// An action emits resource effects but has no rate-limit guard and
    /// the policy requires one.
    MissingRateLimit {
        /// Action id.
        action: u16,
    },
    /// A cross-application aggregate read is not routed through the DP
    /// mechanism.
    PrivacyViolation {
        /// Action id.
        action: u16,
        /// Explanation.
        reason: &'static str,
    },
    /// The program's worst-case privacy charge exceeds the budget.
    PrivacyBudgetExceeded {
        /// Worst-case epsilon (milli-units) per invocation.
        worst_case_milli_eps: u64,
        /// Configured budget.
        budget_milli_eps: u64,
    },
    /// The program declares more of something than the VM supports.
    TooLarge {
        /// What was oversized ("tables", "entries", ...).
        what: &'static str,
        /// Declared count.
        got: usize,
        /// Maximum allowed.
        max: usize,
    },
    /// A duplicate name or id was declared.
    Duplicate {
        /// What was duplicated.
        what: &'static str,
        /// The duplicated identifier.
        name: String,
    },
    /// A map declaration is internally inconsistent (e.g. `per_cpu` on
    /// a kind without well-defined cross-shard aggregation).
    BadMapDef {
        /// The offending map id.
        map: u16,
        /// Why the declaration was rejected.
        reason: &'static str,
    },
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerifyError::UnknownField { site, field } => {
                write!(f, "{site}: unknown context field {field}")
            }
            VerifyError::UnknownTable(t) => write!(f, "unknown table {t}"),
            VerifyError::UnknownAction(a) => write!(f, "unknown action {a}"),
            VerifyError::UnknownMap(m) => write!(f, "unknown map {m}"),
            VerifyError::UnknownModel(m) => write!(f, "unknown model {m}"),
            VerifyError::KeyArityMismatch {
                table,
                expected,
                got,
            } => write!(f, "table {table}: key arity {got}, expected {expected}"),
            VerifyError::KeyKindMismatch { table } => {
                write!(f, "table {table}: match-key kind mismatch")
            }
            VerifyError::BadRegister(r) => write!(f, "bad register r{r}"),
            VerifyError::BadVectorRegister(v) => write!(f, "bad vector register v{v}"),
            VerifyError::BadJumpTarget { action, at, target } => {
                write!(f, "action {action}: insn {at} jumps to invalid target {target}")
            }
            VerifyError::UnboundedLoop { action, at } => {
                write!(f, "action {action}: unbounded back edge at insn {at}")
            }
            VerifyError::MissingExit(a) => write!(f, "action {a}: control can fall off the end"),
            VerifyError::UninitializedRegister { action, at, reg } => {
                write!(f, "action {action}: insn {at} reads uninitialized r{reg}")
            }
            VerifyError::ExecutionBudgetExceeded {
                action,
                worst_case,
                budget,
            } => write!(
                f,
                "action {action}: worst case {worst_case} insns exceeds budget {budget}"
            ),
            VerifyError::HelperNotAllowed { action, helper } => {
                write!(f, "action {action}: helper {helper} not allowed at this hook")
            }
            VerifyError::BadGuard { model } => {
                write!(f, "model {model}: malformed guard (fallback/confidence out of range)")
            }
            VerifyError::ModelOverBudget { model, source } => {
                write!(f, "model {model}: {source}")
            }
            VerifyError::ModelArityMismatch {
                model,
                expected,
                got,
            } => write!(f, "model {model}: expects {expected} features, action supplies {got}"),
            VerifyError::TailCallTooDeep { max } => {
                write!(f, "tail-call chain exceeds max depth {max}")
            }
            VerifyError::MissingRateLimit { action } => {
                write!(f, "action {action}: emits resource effects without a rate-limit guard")
            }
            VerifyError::PrivacyViolation { action, reason } => {
                write!(f, "action {action}: privacy violation: {reason}")
            }
            VerifyError::PrivacyBudgetExceeded {
                worst_case_milli_eps,
                budget_milli_eps,
            } => write!(
                f,
                "worst-case privacy charge {worst_case_milli_eps} m-eps exceeds budget {budget_milli_eps}"
            ),
            VerifyError::TooLarge { what, got, max } => {
                write!(f, "too many {what}: {got} > {max}")
            }
            VerifyError::Duplicate { what, name } => write!(f, "duplicate {what}: {name}"),
            VerifyError::BadMapDef { map, reason } => write!(f, "map {map}: {reason}"),
        }
    }
}

impl std::error::Error for VerifyError {}

/// Errors raised while the VM is running or being reconfigured.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VmError {
    /// The referenced program is not installed.
    NoSuchProgram(u32),
    /// The referenced table does not exist in the program.
    NoSuchTable(u16),
    /// The referenced model slot does not exist in the program.
    NoSuchModel(u16),
    /// A runtime entry failed validation against the table schema.
    BadEntry(String),
    /// A table is full (`max_entries` reached).
    TableFull(u16),
    /// A map operation failed (wrong kind, capacity, missing key).
    MapError(&'static str),
    /// Interpreter fuel ran out (cannot happen for verified programs;
    /// kept as defense in depth).
    FuelExhausted,
    /// An instruction faulted at runtime (division by zero is defined,
    /// so this covers only internal invariant breaks).
    Fault(&'static str),
    /// A replacement model failed re-verification.
    Verify(VerifyError),
    /// The DP privacy budget is exhausted.
    PrivacyBudgetExhausted,
    /// The control-plane request was malformed.
    BadRequest(String),
}

impl fmt::Display for VmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VmError::NoSuchProgram(p) => write!(f, "no such program {p}"),
            VmError::NoSuchTable(t) => write!(f, "no such table {t}"),
            VmError::NoSuchModel(m) => write!(f, "no such model {m}"),
            VmError::BadEntry(s) => write!(f, "bad entry: {s}"),
            VmError::TableFull(t) => write!(f, "table {t} full"),
            VmError::MapError(s) => write!(f, "map error: {s}"),
            VmError::FuelExhausted => write!(f, "fuel exhausted"),
            VmError::Fault(s) => write!(f, "fault: {s}"),
            VmError::Verify(e) => write!(f, "verification failed: {e}"),
            VmError::PrivacyBudgetExhausted => write!(f, "privacy budget exhausted"),
            VmError::BadRequest(s) => write!(f, "bad request: {s}"),
        }
    }
}

impl std::error::Error for VmError {}

impl From<VerifyError> for VmError {
    fn from(e: VerifyError) -> VmError {
        VmError::Verify(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn verify_error_display() {
        let e = VerifyError::UnknownField {
            site: "table t0".into(),
            field: 3,
        };
        assert_eq!(e.to_string(), "table t0: unknown context field 3");
        assert!(VerifyError::UnboundedLoop { action: 1, at: 5 }
            .to_string()
            .contains("back edge"));
        assert!(VerifyError::MissingExit(2).to_string().contains("fall off"));
    }

    #[test]
    fn vm_error_display_and_from() {
        let e: VmError = VerifyError::UnknownTable(9).into();
        assert!(e.to_string().contains("unknown table 9"));
        assert_eq!(VmError::FuelExhausted.to_string(), "fuel exhausted");
        assert!(VmError::PrivacyBudgetExhausted
            .to_string()
            .contains("privacy"));
    }
}
