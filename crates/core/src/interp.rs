//! The RMT bytecode interpreter.
//!
//! §3.1: "The program runs in the virtual machine in interpreted mode or
//! it is just-in-time (JIT) compiled to machine code for efficiency."
//! This module is the interpreted mode: a straightforward fetch/decode
//! dispatch loop with full runtime validation on every step. The JIT
//! ([`crate::jit`]) executes the same semantics from a pre-resolved
//! form; `interp ≡ jit` is property-tested.
//!
//! The interpreter is fueled with the worst-case instruction count the
//! verifier computed, so even a VM bug cannot produce unbounded kernel
//! execution (defense in depth — verified programs never exhaust fuel).
//!
//! Match resolution happens *before* mode dispatch, in
//! [`crate::machine::RmtMachine::fire`]: both the interpreter and the
//! JIT receive the entry chosen by the shared indexed lookup engine
//! ([`crate::table`]) — possibly replayed from the decision cache — so
//! the two modes can never diverge on which action runs.

use crate::bytecode::{Action, Helper, Insn, MAX_VECTOR_LEN, NUM_REGS, NUM_VREGS};
use crate::ctxt::Ctxt;
use crate::dp::{noised_query, PrivacyLedger};
use crate::error::VmError;
use crate::maps::MapInstance;
use crate::prog::{ModelDef, PrivacyPolicy};
use crate::table::TableId;
use rkd_ml::fixed::Fix;
use rkd_ml::tensor::Tensor;
use rkd_testkit::rng::StdRng;

/// A side effect emitted by an action toward the surrounding kernel.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Effect {
    /// Prefetch `count` pages starting at `base`.
    Prefetch {
        /// First page number.
        base: u64,
        /// Number of pages.
        count: u64,
    },
    /// A task-migration decision for the scheduler hook.
    Migrate {
        /// Whether the task should be migrated.
        migrate: bool,
    },
    /// A generic resource hint.
    Hint {
        /// Hint kind (program-defined).
        kind: i64,
        /// First argument.
        a: i64,
        /// Second argument.
        b: i64,
    },
}

impl Effect {
    /// Whether the effect consumes a rate-limited resource.
    pub fn is_resource(&self) -> bool {
        matches!(self, Effect::Prefetch { .. } | Effect::Hint { .. })
    }
}

/// The result of executing one action.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ActionOutcome {
    /// The action's verdict (`r0` at `Exit`; 0 for tail calls that did
    /// not set it).
    pub verdict: i64,
    /// Effects emitted, in order.
    pub effects: Vec<Effect>,
    /// Set when the action ended in `TAIL_CALL`.
    pub tail_call: Option<TableId>,
    /// Dynamic instructions executed (for overhead accounting).
    pub insns_executed: u64,
    /// Model-guard rails tripped during the action (§3.3).
    pub guard_trips: u64,
}

/// Mutable execution environment an action runs against. Borrowed
/// pieces live in the installed-program state owned by the machine.
pub struct ExecEnv<'a> {
    /// The execution context being processed.
    pub ctxt: &'a mut Ctxt,
    /// Program map instances.
    pub maps: &'a mut [MapInstance],
    /// Weight tensor pool.
    pub tensors: &'a [Tensor],
    /// Model zoo.
    pub models: &'a [ModelDef],
    /// Machine tick (monotonic).
    pub tick: u64,
    /// Per-program RNG (helper `rand` and DP noise).
    pub rng: &'a mut StdRng,
    /// DP ledger.
    pub ledger: &'a mut PrivacyLedger,
    /// Privacy policy (per-query charge and sensitivity).
    pub privacy: PrivacyPolicy,
    /// Per-model-slot prediction telemetry, indexed like `models`. An
    /// empty slice disables recording (standalone action runs).
    pub ml_stats: &'a mut [crate::obs::ModelStats],
    /// Whether this firing was picked for latency sampling — bounds
    /// inference clock reads exactly like whole-fire timing.
    pub time_ml: bool,
}

/// Executes an action in interpreted mode.
///
/// `arg` is the matched entry's argument (delivered in `r9`); `fuel` is
/// the verifier-computed worst-case instruction count.
pub fn run_action(
    action: &Action,
    fuel: u64,
    arg: i64,
    env: &mut ExecEnv<'_>,
) -> Result<ActionOutcome, VmError> {
    let code = &action.code;
    let mut regs = [0i64; NUM_REGS as usize];
    regs[crate::bytecode::ARG_REG.0 as usize] = arg;
    let mut vregs: [Vec<Fix>; NUM_VREGS as usize] = Default::default();
    let mut out = ActionOutcome::default();
    let mut pc = 0usize;
    let mut remaining = fuel;
    loop {
        if remaining == 0 {
            return Err(VmError::FuelExhausted);
        }
        remaining -= 1;
        out.insns_executed += 1;
        let insn = code.get(pc).ok_or(VmError::Fault("pc out of range"))?;
        pc += 1;
        match insn {
            Insn::LdImm { dst, imm } => {
                regs[reg_idx(*dst)?] = *imm;
            }
            Insn::Mov { dst, src } => {
                regs[reg_idx(*dst)?] = regs[reg_idx(*src)?];
            }
            Insn::LdCtxt { dst, field } => {
                let v = env.ctxt.get(*field).ok_or(VmError::Fault("bad field"))?;
                regs[reg_idx(*dst)?] = v;
            }
            Insn::StCtxt { field, src } => {
                if !env.ctxt.set(*field, regs[reg_idx(*src)?]) {
                    return Err(VmError::Fault("bad field store"));
                }
            }
            Insn::Alu { op, dst, src } => {
                let d = reg_idx(*dst)?;
                regs[d] = op.eval(regs[d], regs[reg_idx(*src)?]);
            }
            Insn::AluImm { op, dst, imm } => {
                let d = reg_idx(*dst)?;
                regs[d] = op.eval(regs[d], *imm);
            }
            Insn::Jmp { target } => {
                pc = *target;
            }
            Insn::JmpIf {
                cmp,
                lhs,
                rhs,
                target,
            } => {
                if cmp.eval(regs[reg_idx(*lhs)?], regs[reg_idx(*rhs)?]) {
                    pc = *target;
                }
            }
            Insn::JmpIfImm {
                cmp,
                lhs,
                imm,
                target,
            } => {
                if cmp.eval(regs[reg_idx(*lhs)?], *imm) {
                    pc = *target;
                }
            }
            Insn::MapLookup {
                dst,
                map,
                key,
                default,
            } => {
                let m = map_mut(env.maps, map.0)?;
                let v = m.lookup(regs[reg_idx(*key)?] as u64).unwrap_or(*default);
                regs[reg_idx(*dst)?] = v;
            }
            Insn::MapUpdate { map, key, value } => {
                let k = regs[reg_idx(*key)?] as u64;
                let v = regs[reg_idx(*value)?];
                let m = map_mut(env.maps, map.0)?;
                regs[0] = match m.update(k, v) {
                    Ok(()) => 0,
                    Err(_) => 1,
                };
            }
            Insn::MapDelete { map, key } => {
                let k = regs[reg_idx(*key)?] as u64;
                let m = map_mut(env.maps, map.0)?;
                regs[0] = m.delete(k) as i64;
            }
            Insn::VectorLdMap { dst, map } => {
                let m = map_mut(env.maps, map.0)?;
                let snap = m.ring_snapshot();
                let v = &mut vregs[vreg_idx(*dst)?];
                v.clear();
                v.extend(snap.iter().take(MAX_VECTOR_LEN).map(|&x| Fix::from_int(x)));
            }
            Insn::VectorLdCtxt { dst, base, len } => {
                let v = &mut vregs[vreg_idx(*dst)?];
                v.clear();
                for i in 0..*len {
                    let f = crate::ctxt::FieldId(base.0 + i);
                    let val = env.ctxt.get(f).ok_or(VmError::Fault("vector window"))?;
                    v.push(Fix::from_int(val));
                }
            }
            Insn::VectorPush { dst, src } => {
                let val = Fix::from_int(regs[reg_idx(*src)?]);
                let v = &mut vregs[vreg_idx(*dst)?];
                if v.len() >= MAX_VECTOR_LEN {
                    return Err(VmError::Fault("vector overflow"));
                }
                v.push(val);
            }
            Insn::VectorClear { dst } => {
                vregs[vreg_idx(*dst)?].clear();
            }
            Insn::MatMul { dst, tensor, src } => {
                let t = env
                    .tensors
                    .get(tensor.0 as usize)
                    .ok_or(VmError::Fault("bad tensor"))?;
                let input = &vregs[vreg_idx(*src)?];
                if input.is_empty() {
                    return Err(VmError::Fault("matmul on empty vector"));
                }
                let vin = Tensor::vector(input.clone());
                let result = t.matvec(&vin).map_err(|_| VmError::Fault("matmul shape"))?;
                vregs[vreg_idx(*dst)?] = result.as_slice().to_vec();
            }
            Insn::VecMap { op, dst } => {
                let v = &mut vregs[vreg_idx(*dst)?];
                for x in v.iter_mut() {
                    *x = match op {
                        crate::bytecode::VecUnary::Relu => x.relu(),
                        crate::bytecode::VecUnary::Sigmoid => x.sigmoid(),
                    };
                }
            }
            Insn::ScalarVal { dst, src, idx } => {
                let v = &vregs[vreg_idx(*src)?];
                let val = v
                    .get(*idx as usize)
                    .map(|f| f.round_int() as i64)
                    .unwrap_or(0);
                regs[reg_idx(*dst)?] = val;
            }
            Insn::CallMl { model, src } => {
                let m = env
                    .models
                    .get(model.0 as usize)
                    .ok_or(VmError::Fault("bad model"))?;
                let features = &vregs[vreg_idx(*src)?];
                let t0 = env.time_ml.then(std::time::Instant::now);
                let (mut class, conf) = m
                    .spec
                    .predict(features)
                    .map_err(|_| VmError::Fault("model arity"))?;
                if let Some(guard) = &m.guard {
                    let (guarded, tripped) = guard.apply(class, conf);
                    class = guarded;
                    if tripped {
                        out.guard_trips += 1;
                    }
                }
                // Telemetry records the post-guard class — what the
                // datapath actually served, the value ground-truth
                // outcomes are judged against.
                if let Some(st) = env.ml_stats.get_mut(model.0 as usize) {
                    st.record_prediction(class as i64, t0.map(|t| t.elapsed().as_nanos() as u64));
                }
                regs[0] = class as i64;
                regs[1] = conf.raw() as i64;
            }
            Insn::Call { helper } => match helper {
                Helper::GetTick => regs[0] = env.tick as i64,
                Helper::Rand => {
                    use rkd_testkit::rng::Rng;
                    regs[0] = env.rng.gen::<i64>();
                }
                Helper::EmitPrefetch => {
                    out.effects.push(Effect::Prefetch {
                        base: regs[2] as u64,
                        count: (regs[3].max(0)) as u64,
                    });
                    regs[0] = 0;
                }
                Helper::EmitMigrate => {
                    out.effects.push(Effect::Migrate {
                        migrate: regs[2] != 0,
                    });
                    regs[0] = 0;
                }
                Helper::EmitHint => {
                    out.effects.push(Effect::Hint {
                        kind: regs[2],
                        a: regs[3],
                        b: regs[4],
                    });
                    regs[0] = 0;
                }
            },
            Insn::DpAggregate { dst, map } => {
                let m = map_mut(env.maps, map.0)?;
                let sum = m.aggregate_sum();
                let noised = noised_query(
                    sum,
                    env.ledger,
                    env.privacy.per_query_milli_eps,
                    env.privacy.sensitivity,
                    env.rng,
                )?;
                regs[reg_idx(*dst)?] = noised;
            }
            Insn::Exit => {
                out.verdict = regs[0];
                return Ok(out);
            }
            Insn::TailCall { table } => {
                out.verdict = regs[0];
                out.tail_call = Some(*table);
                return Ok(out);
            }
        }
    }
}

#[inline]
fn reg_idx(r: crate::bytecode::Reg) -> Result<usize, VmError> {
    if r.0 < NUM_REGS {
        Ok(r.0 as usize)
    } else {
        Err(VmError::Fault("bad register"))
    }
}

#[inline]
fn vreg_idx(v: crate::bytecode::VReg) -> Result<usize, VmError> {
    if v.0 < NUM_VREGS {
        Ok(v.0 as usize)
    } else {
        Err(VmError::Fault("bad vector register"))
    }
}

#[inline]
fn map_mut(maps: &mut [MapInstance], id: u16) -> Result<&mut MapInstance, VmError> {
    maps.get_mut(id as usize).ok_or(VmError::Fault("bad map"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bytecode::{AluOp, CmpOp, Reg, VReg};
    use crate::ctxt::CtxtSchema;
    use crate::maps::{MapDef, MapKind};
    use crate::prog::ModelSpec;
    use rkd_ml::cost::LatencyClass;
    use rkd_ml::dataset::{Dataset, Sample};
    use rkd_ml::tree::{DecisionTree, TreeConfig};
    use rkd_testkit::rng::SeedableRng;

    struct Fixture {
        ctxt: Ctxt,
        maps: Vec<MapInstance>,
        tensors: Vec<Tensor>,
        models: Vec<ModelDef>,
        rng: StdRng,
        ledger: PrivacyLedger,
        privacy: PrivacyPolicy,
    }

    impl Fixture {
        fn new() -> Fixture {
            let mut schema = CtxtSchema::new();
            schema.add_readonly("f0");
            schema.add_scratch("f1");
            schema.add_scratch("f2");
            let mut ctxt = schema.make_ctxt();
            ctxt.set(crate::ctxt::FieldId(0), 41);
            let ring = MapInstance::new(&MapDef {
                name: "ring".into(),
                kind: MapKind::RingBuf,
                capacity: 4,
                shared: false,
                per_cpu: false,
            })
            .unwrap();
            let hash = MapInstance::new(&MapDef {
                name: "hash".into(),
                kind: MapKind::Hash,
                capacity: 4,
                shared: false,
                per_cpu: false,
            })
            .unwrap();
            Fixture {
                ctxt,
                maps: vec![ring, hash],
                tensors: vec![Tensor::from_f64(2, 2, &[1.0, 0.0, 0.0, 2.0]).unwrap()],
                models: Vec::new(),
                rng: StdRng::seed_from_u64(7),
                ledger: PrivacyLedger::new(10_000),
                privacy: PrivacyPolicy::default(),
            }
        }

        fn env(&mut self) -> ExecEnv<'_> {
            ExecEnv {
                ctxt: &mut self.ctxt,
                maps: &mut self.maps,
                tensors: &self.tensors,
                models: &self.models,
                tick: 1234,
                rng: &mut self.rng,
                ledger: &mut self.ledger,
                privacy: self.privacy,
                ml_stats: &mut [],
                time_ml: false,
            }
        }
    }

    fn run(action: Action, fx: &mut Fixture) -> Result<ActionOutcome, VmError> {
        let mut env = fx.env();
        run_action(&action, 10_000, 99, &mut env)
    }

    #[test]
    fn arithmetic_and_exit() {
        let a = Action::new(
            "a",
            vec![
                Insn::LdImm {
                    dst: Reg(0),
                    imm: 6,
                },
                Insn::AluImm {
                    op: AluOp::Mul,
                    dst: Reg(0),
                    imm: 7,
                },
                Insn::Exit,
            ],
        );
        let mut fx = Fixture::new();
        let out = run(a, &mut fx).unwrap();
        assert_eq!(out.verdict, 42);
        assert_eq!(out.insns_executed, 3);
        assert!(out.tail_call.is_none());
    }

    #[test]
    fn entry_arg_in_r9() {
        let a = Action::new(
            "a",
            vec![
                Insn::Mov {
                    dst: Reg(0),
                    src: crate::bytecode::ARG_REG,
                },
                Insn::Exit,
            ],
        );
        let mut fx = Fixture::new();
        assert_eq!(run(a, &mut fx).unwrap().verdict, 99);
    }

    #[test]
    fn ctxt_load_store() {
        let a = Action::new(
            "a",
            vec![
                Insn::LdCtxt {
                    dst: Reg(0),
                    field: crate::ctxt::FieldId(0),
                },
                Insn::AluImm {
                    op: AluOp::Add,
                    dst: Reg(0),
                    imm: 1,
                },
                Insn::StCtxt {
                    field: crate::ctxt::FieldId(1),
                    src: Reg(0),
                },
                Insn::Exit,
            ],
        );
        let mut fx = Fixture::new();
        let out = run(a, &mut fx).unwrap();
        assert_eq!(out.verdict, 42);
        assert_eq!(fx.ctxt.get(crate::ctxt::FieldId(1)), Some(42));
    }

    #[test]
    fn branches_and_bounded_loop() {
        // Sum 1..=5 with a loop.
        let a = Action::with_loop_bound(
            "sum",
            vec![
                Insn::LdImm {
                    dst: Reg(0),
                    imm: 0,
                }, // 0: acc
                Insn::LdImm {
                    dst: Reg(1),
                    imm: 1,
                }, // 1: i
                Insn::Alu {
                    op: AluOp::Add,
                    dst: Reg(0),
                    src: Reg(1),
                }, // 2
                Insn::AluImm {
                    op: AluOp::Add,
                    dst: Reg(1),
                    imm: 1,
                }, // 3
                Insn::JmpIfImm {
                    cmp: CmpOp::Le,
                    lhs: Reg(1),
                    imm: 5,
                    target: 2,
                }, // 4
                Insn::Exit, // 5
            ],
            10,
        );
        let mut fx = Fixture::new();
        assert_eq!(run(a, &mut fx).unwrap().verdict, 15);
    }

    #[test]
    fn fuel_exhaustion_on_infinite_loop() {
        // Unverified action with a true infinite loop: fuel must stop it.
        let a = Action::new("inf", vec![Insn::Jmp { target: 0 }]);
        let mut fx = Fixture::new();
        let mut env = fx.env();
        assert!(matches!(
            run_action(&a, 100, 0, &mut env),
            Err(VmError::FuelExhausted)
        ));
    }

    #[test]
    fn map_roundtrip_and_status() {
        let a = Action::new(
            "m",
            vec![
                Insn::LdImm {
                    dst: Reg(2),
                    imm: 5,
                }, // key
                Insn::LdImm {
                    dst: Reg(3),
                    imm: 77,
                }, // value
                Insn::MapUpdate {
                    map: crate::maps::MapId(1),
                    key: Reg(2),
                    value: Reg(3),
                },
                Insn::MapLookup {
                    dst: Reg(4),
                    map: crate::maps::MapId(1),
                    key: Reg(2),
                    default: -1,
                },
                Insn::Mov {
                    dst: Reg(0),
                    src: Reg(4),
                },
                Insn::Exit,
            ],
        );
        let mut fx = Fixture::new();
        assert_eq!(run(a, &mut fx).unwrap().verdict, 77);
        // Missing key takes the default.
        let b = Action::new(
            "miss",
            vec![
                Insn::LdImm {
                    dst: Reg(2),
                    imm: 12345,
                },
                Insn::MapLookup {
                    dst: Reg(0),
                    map: crate::maps::MapId(1),
                    key: Reg(2),
                    default: -1,
                },
                Insn::Exit,
            ],
        );
        assert_eq!(run(b, &mut fx).unwrap().verdict, -1);
    }

    #[test]
    fn vector_pipeline_matmul() {
        // v0 = [3, 4]; v1 = diag(1,2) * v0 = [3, 8]; r0 = v1[1].
        let a = Action::new(
            "v",
            vec![
                Insn::LdImm {
                    dst: Reg(2),
                    imm: 3,
                },
                Insn::VectorPush {
                    dst: VReg(0),
                    src: Reg(2),
                },
                Insn::LdImm {
                    dst: Reg(2),
                    imm: 4,
                },
                Insn::VectorPush {
                    dst: VReg(0),
                    src: Reg(2),
                },
                Insn::MatMul {
                    dst: VReg(1),
                    tensor: crate::bytecode::TensorSlot(0),
                    src: VReg(0),
                },
                Insn::ScalarVal {
                    dst: Reg(0),
                    src: VReg(1),
                    idx: 1,
                },
                Insn::Exit,
            ],
        );
        let mut fx = Fixture::new();
        assert_eq!(run(a, &mut fx).unwrap().verdict, 8);
    }

    #[test]
    fn vector_ld_ctxt_and_relu() {
        let a = Action::new(
            "v",
            vec![
                Insn::VectorLdCtxt {
                    dst: VReg(0),
                    base: crate::ctxt::FieldId(0),
                    len: 2,
                },
                Insn::VecMap {
                    op: crate::bytecode::VecUnary::Relu,
                    dst: VReg(0),
                },
                Insn::ScalarVal {
                    dst: Reg(0),
                    src: VReg(0),
                    idx: 0,
                },
                Insn::Exit,
            ],
        );
        let mut fx = Fixture::new();
        assert_eq!(run(a, &mut fx).unwrap().verdict, 41);
    }

    #[test]
    fn call_ml_runs_model() {
        let ds = Dataset::from_samples(vec![
            Sample::from_f64(&[0.0], 0),
            Sample::from_f64(&[1.0], 0),
            Sample::from_f64(&[99.0], 1),
            Sample::from_f64(&[100.0], 1),
        ])
        .unwrap();
        let tree = DecisionTree::train(&ds, &TreeConfig::default()).unwrap();
        let mut fx = Fixture::new();
        fx.models.push(ModelDef {
            name: "t".into(),
            spec: ModelSpec::Tree(tree),
            latency_class: LatencyClass::Background,
            guard: None,
        });
        let a = Action::new(
            "ml",
            vec![
                Insn::LdCtxt {
                    dst: Reg(2),
                    field: crate::ctxt::FieldId(0), // 41
                },
                Insn::VectorPush {
                    dst: VReg(0),
                    src: Reg(2),
                },
                Insn::CallMl {
                    model: crate::bytecode::ModelSlot(0),
                    src: VReg(0),
                },
                Insn::Exit,
            ],
        );
        let out = run(a, &mut fx).unwrap();
        assert_eq!(out.verdict, 1); // 41 is closer to class 1 threshold.
    }

    #[test]
    fn helpers_emit_effects() {
        let a = Action::new(
            "fx",
            vec![
                Insn::LdImm {
                    dst: Reg(2),
                    imm: 100,
                },
                Insn::LdImm {
                    dst: Reg(3),
                    imm: 8,
                },
                Insn::Call {
                    helper: Helper::EmitPrefetch,
                },
                Insn::LdImm {
                    dst: Reg(2),
                    imm: 1,
                },
                Insn::Call {
                    helper: Helper::EmitMigrate,
                },
                Insn::LdImm {
                    dst: Reg(4),
                    imm: -3,
                },
                Insn::Call {
                    helper: Helper::EmitHint,
                },
                Insn::Exit,
            ],
        );
        let mut fx = Fixture::new();
        let out = run(a, &mut fx).unwrap();
        assert_eq!(
            out.effects,
            vec![
                Effect::Prefetch {
                    base: 100,
                    count: 8
                },
                Effect::Migrate { migrate: true },
                Effect::Hint {
                    kind: 1,
                    a: 8,
                    b: -3
                },
            ]
        );
        assert!(out.effects[0].is_resource());
        assert!(!out.effects[1].is_resource());
    }

    #[test]
    fn get_tick_helper() {
        let a = Action::new(
            "t",
            vec![
                Insn::Call {
                    helper: Helper::GetTick,
                },
                Insn::Exit,
            ],
        );
        let mut fx = Fixture::new();
        assert_eq!(run(a, &mut fx).unwrap().verdict, 1234);
    }

    #[test]
    fn negative_prefetch_count_clamped() {
        let a = Action::new(
            "neg",
            vec![
                Insn::LdImm {
                    dst: Reg(2),
                    imm: 5,
                },
                Insn::LdImm {
                    dst: Reg(3),
                    imm: -4,
                },
                Insn::Call {
                    helper: Helper::EmitPrefetch,
                },
                Insn::Exit,
            ],
        );
        let mut fx = Fixture::new();
        let out = run(a, &mut fx).unwrap();
        assert_eq!(out.effects, vec![Effect::Prefetch { base: 5, count: 0 }]);
    }

    #[test]
    fn dp_aggregate_charges_ledger() {
        let mut fx = Fixture::new();
        // Load the hash map with a known sum.
        fx.maps[1].update(1, 500).unwrap();
        fx.maps[1].update(2, 500).unwrap();
        let a = Action::new(
            "dp",
            vec![
                Insn::DpAggregate {
                    dst: Reg(0),
                    map: crate::maps::MapId(1),
                },
                Insn::Exit,
            ],
        );
        let out = run(a, &mut fx).unwrap();
        assert!((out.verdict - 1000).abs() < 400, "noised {}", out.verdict);
        assert_eq!(fx.ledger.spent_milli_eps(), 100);
    }

    #[test]
    fn dp_fails_closed_when_exhausted() {
        let mut fx = Fixture::new();
        fx.ledger = PrivacyLedger::new(50); // Below the 100 per query.
        let a = Action::new(
            "dp",
            vec![
                Insn::DpAggregate {
                    dst: Reg(0),
                    map: crate::maps::MapId(1),
                },
                Insn::Exit,
            ],
        );
        assert!(matches!(
            run(a, &mut fx),
            Err(VmError::PrivacyBudgetExhausted)
        ));
    }

    #[test]
    fn tail_call_outcome() {
        let a = Action::new(
            "tc",
            vec![
                Insn::LdImm {
                    dst: Reg(0),
                    imm: 3,
                },
                Insn::TailCall { table: TableId(2) },
            ],
        );
        let mut fx = Fixture::new();
        let out = run(a, &mut fx).unwrap();
        assert_eq!(out.tail_call, Some(TableId(2)));
        assert_eq!(out.verdict, 3);
    }

    #[test]
    fn vector_ld_map_reads_ring_window() {
        let mut fx = Fixture::new();
        for v in [10, 20, 30] {
            fx.maps[0].update(0, v).unwrap();
        }
        let a = Action::new(
            "ring",
            vec![
                Insn::VectorLdMap {
                    dst: VReg(0),
                    map: crate::maps::MapId(0),
                },
                Insn::ScalarVal {
                    dst: Reg(0),
                    src: VReg(0),
                    idx: 2,
                },
                Insn::Exit,
            ],
        );
        assert_eq!(run(a, &mut fx).unwrap().verdict, 30);
    }

    #[test]
    fn scalar_val_out_of_range_reads_zero() {
        let a = Action::new(
            "z",
            vec![
                Insn::VectorClear { dst: VReg(0) },
                Insn::ScalarVal {
                    dst: Reg(0),
                    src: VReg(0),
                    idx: 5,
                },
                Insn::Exit,
            ],
        );
        let mut fx = Fixture::new();
        assert_eq!(run(a, &mut fx).unwrap().verdict, 0);
    }
}

rkd_testkit::impl_json_enum!(Effect {
    Prefetch { base, count },
    Migrate { migrate },
    Hint { kind, a, b },
});
