//! Execution context (`RMT_CTXT`).
//!
//! §3.1: match fields are "the 'execution context' … organized in a
//! key/value map of the type RMT_CTXT and can be retrieved using a match
//! key. In essence, the execution context is akin to today's kernel
//! monitoring data, but the pattern match strips away unnecessary
//! monitoring and only preserves monitors critical to decision making.
//! This is also constant-time in a system-wide manner."
//!
//! A [`CtxtSchema`] declares the fields a program may read or write; a
//! [`Ctxt`] is the flat, constant-time-indexed value vector a kernel
//! hook fills in before firing the RMT pipeline. Field reads and writes
//! compile to `RMT_LD_CTXT` / `RMT_ST_CTXT`.

/// Identifies a context field; indexes into the schema and value vector.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FieldId(pub u16);

/// Declares one context field.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FieldDef {
    /// Human-readable name (e.g. `"pid"`, `"last_page"`).
    pub name: String,
    /// Whether programs may write this field with `RMT_ST_CTXT`
    /// (monitoring scratch) or it is kernel-provided and read-only.
    pub writable: bool,
}

/// The declared set of context fields for a program.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CtxtSchema {
    fields: Vec<FieldDef>,
}

impl CtxtSchema {
    /// Creates an empty schema.
    pub fn new() -> CtxtSchema {
        CtxtSchema::default()
    }

    /// Declares a field, returning its id. Names need not be unique at
    /// this layer; the verifier rejects duplicates program-wide.
    pub fn add(&mut self, name: &str, writable: bool) -> FieldId {
        self.fields.push(FieldDef {
            name: name.to_string(),
            writable,
        });
        FieldId((self.fields.len() - 1) as u16)
    }

    /// Declares a read-only (kernel-provided) field.
    pub fn add_readonly(&mut self, name: &str) -> FieldId {
        self.add(name, false)
    }

    /// Declares a writable (program scratch) field.
    pub fn add_scratch(&mut self, name: &str) -> FieldId {
        self.add(name, true)
    }

    /// Number of declared fields.
    pub fn len(&self) -> usize {
        self.fields.len()
    }

    /// Returns `true` if no fields are declared.
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// Looks up a field definition.
    pub fn get(&self, id: FieldId) -> Option<&FieldDef> {
        self.fields.get(id.0 as usize)
    }

    /// Finds a field id by name (first match).
    pub fn by_name(&self, name: &str) -> Option<FieldId> {
        self.fields
            .iter()
            .position(|f| f.name == name)
            .map(|i| FieldId(i as u16))
    }

    /// Iterates `(id, def)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (FieldId, &FieldDef)> {
        self.fields
            .iter()
            .enumerate()
            .map(|(i, d)| (FieldId(i as u16), d))
    }

    /// Creates a zeroed context conforming to this schema.
    pub fn make_ctxt(&self) -> Ctxt {
        Ctxt {
            values: vec![0; self.fields.len()],
        }
    }
}

/// A populated execution context: one `i64` per schema field, indexed in
/// constant time by [`FieldId`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Ctxt {
    values: Vec<i64>,
}

impl Ctxt {
    /// Creates a context with explicit values (mostly for tests; hooks
    /// normally start from [`CtxtSchema::make_ctxt`]).
    pub fn from_values(values: Vec<i64>) -> Ctxt {
        Ctxt { values }
    }

    /// Number of fields.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Returns `true` if the context has no fields.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Reads a field; `None` if out of range (verified programs never
    /// see this).
    #[inline]
    pub fn get(&self, id: FieldId) -> Option<i64> {
        self.values.get(id.0 as usize).copied()
    }

    /// Writes a field; returns `false` if out of range.
    #[inline]
    pub fn set(&mut self, id: FieldId, v: i64) -> bool {
        match self.values.get_mut(id.0 as usize) {
            Some(slot) => {
                *slot = v;
                true
            }
            None => false,
        }
    }

    /// Extracts the match-key values for a list of fields, as unsigned
    /// words (the match engine's key type). Missing fields read as 0 so
    /// that key extraction is total.
    pub fn key(&self, fields: &[FieldId]) -> Vec<u64> {
        fields
            .iter()
            .map(|f| self.get(*f).unwrap_or(0) as u64)
            .collect()
    }

    /// [`Ctxt::key`] into a caller-owned buffer — the fire path reuses
    /// one scratch buffer per machine so the decision-cache probe stays
    /// allocation-free on repeat flows.
    pub fn key_into(&self, fields: &[FieldId], out: &mut Vec<u64>) {
        out.clear();
        out.extend(fields.iter().map(|f| self.get(*f).unwrap_or(0) as u64));
    }

    /// Raw values (read-only).
    pub fn values(&self) -> &[i64] {
        &self.values
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schema_declaration_and_lookup() {
        let mut s = CtxtSchema::new();
        let pid = s.add_readonly("pid");
        let hist = s.add_scratch("hist0");
        assert_eq!(s.len(), 2);
        assert!(!s.is_empty());
        assert_eq!(s.by_name("pid"), Some(pid));
        assert_eq!(s.by_name("hist0"), Some(hist));
        assert_eq!(s.by_name("nope"), None);
        assert!(!s.get(pid).unwrap().writable);
        assert!(s.get(hist).unwrap().writable);
        assert!(s.get(FieldId(9)).is_none());
    }

    #[test]
    fn ctxt_read_write() {
        let mut s = CtxtSchema::new();
        let a = s.add_scratch("a");
        let b = s.add_scratch("b");
        let mut c = s.make_ctxt();
        assert_eq!(c.len(), 2);
        assert_eq!(c.get(a), Some(0));
        assert!(c.set(a, 42));
        assert!(c.set(b, -7));
        assert_eq!(c.get(a), Some(42));
        assert_eq!(c.get(b), Some(-7));
        assert!(!c.set(FieldId(5), 1));
        assert_eq!(c.get(FieldId(5)), None);
    }

    #[test]
    fn key_extraction_is_total() {
        let c = Ctxt::from_values(vec![10, -1]);
        let key = c.key(&[FieldId(0), FieldId(1), FieldId(7)]);
        assert_eq!(key, vec![10, (-1i64) as u64, 0]);
    }

    #[test]
    fn iter_enumerates_in_order() {
        let mut s = CtxtSchema::new();
        s.add_readonly("x");
        s.add_readonly("y");
        let names: Vec<&str> = s.iter().map(|(_, d)| d.name.as_str()).collect();
        assert_eq!(names, vec!["x", "y"]);
    }
}

rkd_testkit::impl_json_newtype!(FieldId(u16));

rkd_testkit::impl_json_struct!(FieldDef { name, writable });

impl rkd_testkit::json::ToJson for CtxtSchema {
    fn to_json(&self) -> rkd_testkit::json::Json {
        rkd_testkit::json::Json::Obj(vec![(
            "fields".to_string(),
            rkd_testkit::json::ToJson::to_json(&self.fields),
        )])
    }
}

impl rkd_testkit::json::FromJson for CtxtSchema {
    fn from_json(
        json: &rkd_testkit::json::Json,
    ) -> Result<CtxtSchema, rkd_testkit::json::JsonError> {
        Ok(CtxtSchema {
            fields: Vec::<FieldDef>::from_json(json.field("fields")?)
                .map_err(|e| e.context("fields"))?,
        })
    }
}

impl rkd_testkit::json::ToJson for Ctxt {
    fn to_json(&self) -> rkd_testkit::json::Json {
        rkd_testkit::json::Json::Obj(vec![(
            "values".to_string(),
            rkd_testkit::json::ToJson::to_json(&self.values),
        )])
    }
}

impl rkd_testkit::json::FromJson for Ctxt {
    fn from_json(json: &rkd_testkit::json::Json) -> Result<Ctxt, rkd_testkit::json::JsonError> {
        Ok(Ctxt {
            values: Vec::<i64>::from_json(json.field("values")?)
                .map_err(|e| e.context("values"))?,
        })
    }
}
