//! The in-kernel RMT virtual machine.
//!
//! [`RmtMachine`] owns installed programs and dispatches kernel hook
//! events through their table pipelines (Figure 1's runtime): a hook
//! fires with a populated [`Ctxt`]; each table installed at that hook
//! extracts its match key (`RMT_MATCH_CTXT`), looks up the best entry,
//! and runs the bound action in interpreted or JIT mode; `TAIL_CALL`s
//! cascade across tables (bounded); resource effects pass through the
//! program's token-bucket rate limiter before reaching the kernel.
//!
//! A faulting or privacy-exhausted action is absorbed as a no-op — a
//! learned optimization may fail closed, but it must never take the
//! (simulated) kernel down with it.

use crate::ctxt::{Ctxt, FieldId};
use crate::dp::PrivacyLedger;
use crate::error::VmError;
use crate::interp::{run_action, ActionOutcome, Effect, ExecEnv};
use crate::jit::CompiledAction;
use crate::maps::{MapId, MapInstance, MapState};
use crate::obs::span::{self, SpanCollector, SpanSnapshot, Stage, StageProfile};
use crate::obs::{
    FlightFrame, FlightHookPoint, FlightModelPoint, FlightSnapshot, HookStats, Log2Hist,
    ModelStats, ModelStatsSnapshot, ModelStatsState, Obs, ObsConfig, ObsSnapshot, ObsState,
    ProgHist, TraceEvent, TraceKind, TraceSnapshot,
};
use crate::opt::{fuse_chain, FusedStepPlan, OptLevel, OptStats};
use crate::prog::{ModelSpec, RmtProgram};
use crate::table::{Entry, MatchKind, Table, TableId, TableStats};
use crate::verifier::{verify_with, VerifiedProgram, VerifierConfig};
use rkd_ml::cost::CostBudget;
use rkd_testkit::rng::SeedableRng;
use rkd_testkit::rng::StdRng;
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::time::Instant;

/// Bookkeeping for one sampled firing's open `Fire` span: identity
/// fixed at entry, recorded once the firing completes.
#[derive(Clone, Copy)]
struct FireSpan {
    trace_id: u64,
    span_id: u64,
    parent_id: u64,
    start_ns: u64,
}

/// Identifies an installed program.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ProgId(pub u32);

/// Execution mode for a program's actions.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ExecMode {
    /// Interpret bytecode (`rmt_interp`).
    Interp,
    /// Run pre-compiled threaded code (`rmt_jit`).
    Jit,
}

/// Maximum dynamic tail-call chain length per hook firing (matches the
/// verifier's static bound as defense in depth).
pub const MAX_TAIL_CHAIN: usize = 8;

/// Default per-hook decision-cache capacity (cached flow keys).
pub const DEFAULT_DECISION_CACHE_CAP: usize = 1024;

/// One memoized table step of a hook firing: which table the pipeline
/// visited and how its match resolved. Replay re-validates each step
/// (and always re-executes the action) — only the match resolution is
/// memoized.
#[derive(Clone, Debug)]
struct CachedStep {
    prog: u32,
    table: u16,
    /// The key values the table extracted, re-checked on replay — or
    /// `None` for a key-independent decision (the table was empty, so
    /// the default action fired without extracting a key). `None`
    /// revalidates via `is_empty()`, letting replay skip the per-table
    /// key allocation entirely on default-action-only pipelines.
    key: Option<Vec<u64>>,
    /// Matched entry slot (`None` = miss / default action).
    entry: Option<u32>,
}

/// Cheap deterministic hasher for decision-cache flow keys. Flow keys
/// are short `u64` words extracted from ctxt fields; SipHash's
/// flood-resistance buys nothing here (the cache is bounded and
/// kernel-internal) and costs a large fraction of the replay budget.
#[derive(Default)]
struct FlowKeyHasher(u64);

impl std::hash::Hasher for FlowKeyHasher {
    fn finish(&self) -> u64 {
        // splitmix64 finalizer: full avalanche over the mixed words.
        let mut x = self.0;
        x ^= x >> 30;
        x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x ^= x >> 27;
        x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
        x ^ (x >> 31)
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.write_u64(b as u64);
        }
    }

    fn write_u64(&mut self, v: u64) {
        self.0 = (self.0.rotate_left(5) ^ v).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    }

    fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }
}

type FlowKeyMap = HashMap<Vec<u64>, CachedDecision, std::hash::BuildHasherDefault<FlowKeyHasher>>;

/// A memoized pipeline decision for one flow key.
#[derive(Clone, Debug)]
struct CachedDecision {
    /// [`RmtMachine`] table generation this decision was recorded
    /// under; any control-plane table/model mutation bumps the
    /// machine's counter, making the decision stale.
    generation: u64,
    steps: Vec<CachedStep>,
}

/// Bounded FIFO map of flow key -> memoized decision for one hook
/// (the megaflow-style cache in front of the full pipeline walk).
#[derive(Default)]
struct DecisionCache {
    map: FlowKeyMap,
    fifo: VecDeque<Vec<u64>>,
    /// Degenerate megaflow: when the hook consumes no ctxt fields
    /// (every non-empty table is gone — default-action pipelines),
    /// every flow shares one decision. Kept out of `map` so the hot
    /// path is an `Option` move instead of a hash probe.
    flowless: Option<CachedDecision>,
}

impl DecisionCache {
    /// Inserts (or overwrites) a decision, evicting oldest-inserted
    /// keys past `cap`; returns how many were evicted.
    fn insert(&mut self, key: Vec<u64>, dec: CachedDecision, cap: usize) -> u64 {
        let mut evicted = 0;
        if self.map.insert(key.clone(), dec).is_none() {
            self.fifo.push_back(key);
            while self.map.len() > cap {
                let Some(old) = self.fifo.pop_front() else {
                    break;
                };
                if self.map.remove(&old).is_some() {
                    evicted += 1;
                }
            }
        }
        evicted
    }

    fn clear(&mut self) {
        self.map.clear();
        self.fifo.clear();
        self.flowless = None;
    }
}

/// Per-program runtime statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ProgStats {
    /// Hook firings routed to this program.
    pub invocations: u64,
    /// Actions executed.
    pub actions_run: u64,
    /// Dynamic instructions executed.
    pub insns_executed: u64,
    /// Effects delivered to the kernel.
    pub effects_emitted: u64,
    /// Resource effects dropped by the rate limiter.
    pub effects_rate_limited: u64,
    /// Actions absorbed after a fault or privacy exhaustion.
    pub actions_aborted: u64,
    /// Tail-call cascades followed.
    pub tail_calls: u64,
    /// Pipelines terminated because the dynamic tail-call chain
    /// exceeded [`MAX_TAIL_CHAIN`] (§3.1: a tail call redirects and
    /// ends the pipeline; an over-long chain must not keep executing).
    pub tail_chain_overflows: u64,
    /// Model-guard rails tripped (§3.3 model safety).
    pub guard_trips: u64,
}

impl ProgStats {
    /// Adds another stats set into this one, field by field — the
    /// cross-shard aggregation for a program replicated across a
    /// [`crate::shard::ShardedMachine`]'s workers.
    pub fn merge(&mut self, other: &ProgStats) {
        self.invocations = self.invocations.saturating_add(other.invocations);
        self.actions_run = self.actions_run.saturating_add(other.actions_run);
        self.insns_executed = self.insns_executed.saturating_add(other.insns_executed);
        self.effects_emitted = self.effects_emitted.saturating_add(other.effects_emitted);
        self.effects_rate_limited = self
            .effects_rate_limited
            .saturating_add(other.effects_rate_limited);
        self.actions_aborted = self.actions_aborted.saturating_add(other.actions_aborted);
        self.tail_calls = self.tail_calls.saturating_add(other.tail_calls);
        self.tail_chain_overflows = self
            .tail_chain_overflows
            .saturating_add(other.tail_chain_overflows);
        self.guard_trips = self.guard_trips.saturating_add(other.guard_trips);
    }
}

/// The result of firing one hook.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct HookResult {
    /// Verdicts of the actions that ran, in execution order, tagged by
    /// the table that produced them.
    pub verdicts: Vec<(TableId, i64)>,
    /// Effects that survived rate limiting, in order.
    pub effects: Vec<Effect>,
}

impl HookResult {
    /// The last verdict, if any action ran (the common single-table
    /// query pattern).
    pub fn verdict(&self) -> Option<i64> {
        self.verdicts.last().map(|(_, v)| *v)
    }
}

/// Token bucket guarding resource-emitting actions.
#[derive(Clone, Debug)]
struct TokenBucket {
    capacity: u64,
    tokens: u64,
    refill_per_tick: u64,
    last_tick: u64,
}

impl TokenBucket {
    fn new(capacity: u64, refill_per_tick: u64) -> TokenBucket {
        TokenBucket {
            capacity,
            tokens: capacity,
            refill_per_tick,
            last_tick: 0,
        }
    }

    /// Current fill level as `(tokens, last_tick)` for snapshotting.
    fn level(&self) -> (u64, u64) {
        (self.tokens, self.last_tick)
    }

    /// Overlays a snapshotted fill level; `tokens` is clamped to the
    /// capacity so a hand-edited snapshot cannot mint extra budget.
    fn restore_level(&mut self, tokens: u64, last_tick: u64) {
        self.tokens = tokens.min(self.capacity);
        self.last_tick = last_tick;
    }

    fn try_take(&mut self, n: u64, now: u64) -> bool {
        if now > self.last_tick {
            let refill = (now - self.last_tick).saturating_mul(self.refill_per_tick);
            self.tokens = (self.tokens + refill).min(self.capacity);
            self.last_tick = now;
        }
        if self.tokens >= n {
            self.tokens -= n;
            true
        } else {
            false
        }
    }
}

/// A fused tail-call chain body installed for one action (JIT mode,
/// `OptLevel >= O1`): the caller plus its statically resolved callees
/// collapsed into one re-verified compiled body.
///
/// Validity is generation-stamped: resolution baked the table
/// contents in, so any control-plane mutation that bumps the table
/// generation makes the stamp stale and dispatch falls back to the
/// unfused body until [`RmtMachine::refresh_fused`] re-specializes.
/// This is the same invalidation clock the decision cache uses, so
/// cached chains and fused bodies can never disagree about table
/// state within a generation.
struct FusedAction {
    compiled: CompiledAction,
    /// Re-verified worst case of the fused body — the runtime fuel.
    /// Install-time checked to fit the unfused chain's combined
    /// budget, so fusion never buys extra fuel.
    worst_case: u64,
    /// The collapsed links, for synthesized per-table bookkeeping.
    steps: Box<[FusedStepPlan]>,
    /// Table generation the chain was resolved against.
    generation: u64,
    /// Bitmask of the table indices this plan's resolution routed
    /// through: every collapsed link's table plus any trailing
    /// (unresolved) `TailCall` target — the only tables whose entry
    /// churn can change this plan. `u64::MAX` (every bit set) when any
    /// index is ≥ 64: depend on everything, always re-fuse. Entry
    /// mutations on other tables restamp instead of re-planning, which
    /// is what keeps control-plane churn from paying a full
    /// re-specialization per mutation.
    deps: u64,
    /// The subset of `deps` reachable only through a trailing
    /// (unresolved) `TailCall` left in the fused body. Churn there can
    /// extend or reshape the chain, so it always forces a full
    /// re-fuse — the cheap revalidation below never applies.
    trailing: u64,
    /// Per collapsed link, the constant key its lookup resolved with
    /// (`None` = resolved by table emptiness). See
    /// [`RmtMachine::revalidate_fused_plan`].
    step_keys: Box<[Option<Vec<u64>>]>,
}

/// One installed program with its runtime state.
struct Installed {
    prog: RmtProgram,
    /// hook name -> this program's table indices at that hook, in
    /// declaration order. Precomputed at install so `fire` does not
    /// re-scan (and re-compare hook strings of) every table per
    /// firing.
    hook_tables: HashMap<String, Vec<usize>>,
    worst_case: Vec<u64>,
    mode: ExecMode,
    tables: Vec<Table>,
    maps: Vec<MapInstance>,
    compiled: Vec<CompiledAction>,
    /// `fused[i]` = fused chain body for action `i`, when its tail
    /// call resolved statically (JIT mode only; see [`FusedAction`]).
    fused: Vec<Option<FusedAction>>,
    /// Per-program optimizer statistics: pass pipeline totals from the
    /// last full compile plus the current fusion outcome.
    opt_stats: OptStats,
    /// Union of the ctxt fields any of this program's actions can
    /// store to (computed at install). Hooks use this to decide
    /// whether cached decisions can replay without re-extracting
    /// match keys — see [`HookSlot::key_stable`].
    ctxt_writes: Vec<FieldId>,
    rng: StdRng,
    ledger: PrivacyLedger,
    bucket: Option<TokenBucket>,
    stats: ProgStats,
    /// Per-pipeline-run latency histogram (ns), fed by `fire` when
    /// observability timing is on.
    hist: Log2Hist,
    /// Per-model-slot prediction telemetry (`model_stats[i]` tracks
    /// `prog.models[i]`): serving counters fed by the datapath,
    /// confusion/accuracy fed by control-plane `ReportOutcome`.
    model_stats: Vec<ModelStats>,
}

/// Everything the machine keeps per hook name: the listener list plus
/// this hook's observability state (stored here so the hot path pays a
/// single hash lookup for both).
struct HookSlot {
    /// (program, first table of the program at this hook), in
    /// installation order.
    listeners: Vec<(u32, TableId)>,
    /// Armed firings of this hook since the last obs reset.
    fires: u64,
    /// Whole-fire latency histogram (ns).
    hist: Log2Hist,
    /// Union of the key fields of every *non-empty* table at this
    /// hook — the decision-cache probe key. Empty tables contribute
    /// nothing: their (key-independent) default decision is memoized
    /// as a `key: None` step instead.
    consumed: Vec<FieldId>,
    /// Whether firings of this hook probe the cache at all. `false`
    /// when every non-empty table is exact-match: the pipeline already
    /// pays one hash probe per table, so the cache cannot win.
    eligible: bool,
    /// Per-hook specialization (the optimizer's install-time half):
    /// `true` when, for every listener program, (a) no action writes a
    /// consumed field and (b) every non-empty table's key fields are a
    /// subset of `consumed`. Then a probe-key match pins every
    /// reachable match key for the whole firing — tables are immutable
    /// within a generation — so cached steps replay without
    /// re-extracting and re-comparing per-table keys.
    key_stable: bool,
    /// Memoized decisions for this hook, keyed on `consumed` values.
    cache: DecisionCache,
}

/// The RMT virtual machine.
pub struct RmtMachine {
    tick: u64,
    next_id: u32,
    programs: BTreeMap<u32, Installed>,
    /// hook name -> listeners + per-hook observability.
    hook_index: HashMap<String, HookSlot>,
    /// Observability layer (always on; see [`ObsConfig`] for knobs).
    obs: Obs,
    /// Reusable pipeline queue — `fire` is allocation-free once this
    /// has grown to the deepest pipeline seen.
    scratch_queue: Vec<usize>,
    /// Reusable decision-cache probe-key buffer — repeat flows hash
    /// their consumed fields without allocating (the key is cloned
    /// only when a miss inserts a new cache entry).
    key_scratch: Vec<u64>,
    /// Reusable copy of a hook's table pipeline, letting
    /// [`RmtMachine::fire_batch`] resolve the single-listener pipeline
    /// once and hold it across the whole batch while the program
    /// instance is mutably borrowed.
    pipeline_scratch: Vec<usize>,
    /// Table generation: bumped on every control-plane table/model
    /// mutation; cached decisions recorded under an older generation
    /// are stale and never replayed.
    table_gen: u64,
    /// Per-hook decision-cache capacity (0 disables caching).
    decision_cache_cap: usize,
}

impl Default for RmtMachine {
    fn default() -> RmtMachine {
        RmtMachine::new()
    }
}

/// Decision-cache state for one firing, threaded between the probe
/// ([`RmtMachine::cache_probe`]), the per-listener pipeline walk
/// ([`RmtMachine::run_pipeline`]) and the publish
/// ([`RmtMachine::cache_finish`]). The cached step chain is *moved*
/// out of the map for the duration of the firing (and restored on a
/// clean hit) rather than borrowed: a live borrow into the hook slot
/// would pin the whole listener loop, and the moves are pointer
/// swaps.
struct CacheRun {
    /// Caching is on for this firing (capacity > 0, hook eligible).
    enabled: bool,
    /// The hook consumes no ctxt fields: one shared decision slot,
    /// no key extraction, no hash probe.
    flowless: bool,
    /// The probe found a stale-generation entry (counted on miss).
    invalidated: bool,
    /// Recording a fresh step chain (probe missed or replay
    /// diverged).
    recording: bool,
    /// Steps recorded so far while `recording`.
    recorded: Vec<CachedStep>,
    /// Step chain moved out of the cache on a current-generation
    /// probe hit.
    replay: Option<Vec<CachedStep>>,
    /// Next replay step to validate.
    cursor: usize,
    /// A replayed step failed validation mid-firing.
    diverged: bool,
}

impl RmtMachine {
    /// Creates an empty machine at tick 0 with default observability.
    pub fn new() -> RmtMachine {
        RmtMachine::with_obs_config(ObsConfig::default())
    }

    /// Creates an empty machine with an explicit observability
    /// configuration.
    pub fn with_obs_config(cfg: ObsConfig) -> RmtMachine {
        RmtMachine {
            tick: 0,
            next_id: 1,
            programs: BTreeMap::new(),
            hook_index: HashMap::new(),
            obs: Obs::new(cfg),
            scratch_queue: Vec::new(),
            key_scratch: Vec::new(),
            pipeline_scratch: Vec::new(),
            table_gen: 0,
            decision_cache_cap: DEFAULT_DECISION_CACHE_CAP,
        }
    }

    /// Resizes the per-hook decision caches (0 disables caching).
    /// Existing cached decisions are dropped.
    pub fn set_decision_cache_capacity(&mut self, cap: usize) {
        self.decision_cache_cap = cap;
        for slot in self.hook_index.values_mut() {
            slot.cache.clear();
        }
    }

    /// Current per-hook decision-cache capacity.
    pub fn decision_cache_capacity(&self) -> usize {
        self.decision_cache_cap
    }

    /// Current table generation (bumped on every control-plane
    /// table/model mutation; exposed for invalidation tests).
    pub fn table_generation(&self) -> u64 {
        self.table_gen
    }

    /// Current monotonic tick.
    pub fn tick(&self) -> u64 {
        self.tick
    }

    /// Advances the clock (the embedding kernel drives this).
    pub fn advance_tick(&mut self, by: u64) {
        self.tick = self.tick.saturating_add(by);
    }

    /// Installs a verified program (`syscall_rmt()` in Figure 1),
    /// returning its id. JIT mode compiles every action up front
    /// (`rmt_jit()`).
    pub fn install(&mut self, vp: VerifiedProgram, mode: ExecMode) -> Result<ProgId, VmError> {
        self.install_seeded(vp, mode, 0x5EED)
    }

    /// Installs with an explicit RNG seed (reproducible DP noise and
    /// `rand` helper streams).
    pub fn install_seeded(
        &mut self,
        vp: VerifiedProgram,
        mode: ExecMode,
        seed: u64,
    ) -> Result<ProgId, VmError> {
        let (prog, worst_case) = vp.into_parts();
        let mut tables: Vec<Table> = prog.tables.iter().cloned().map(Table::new).collect();
        for (tid, entry) in &prog.initial_entries {
            tables[tid.0 as usize].insert(entry.clone())?;
        }
        let mut maps = Vec::with_capacity(prog.maps.len());
        for def in &prog.maps {
            maps.push(MapInstance::new(def)?);
        }
        let mut opt_stats = OptStats::default();
        let compiled = match mode {
            ExecMode::Jit => {
                // Optimize (per the program's OptLevel knob), re-verify,
                // then compile. `worst_case` stays the verifier's bound
                // for the original bodies: it remains a sound fuel cap
                // for the (never-larger) optimized bodies and keeps O0
                // and interp fuel accounting identical.
                let mut out = Vec::with_capacity(prog.actions.len());
                for (i, action) in prog.actions.iter().enumerate() {
                    let (c, _wc, report) = CompiledAction::compile_optimized_report(
                        i as u16,
                        action,
                        &prog,
                        prog.opt_level,
                        worst_case[i],
                    )?;
                    opt_stats.record(action.code.len(), &report);
                    out.push(c);
                }
                out
            }
            ExecMode::Interp => Vec::new(),
        };
        self.obs.counters.opt_fixpoint_cap_hits += opt_stats.fixpoint_cap_hits;
        let mut ctxt_writes: Vec<FieldId> = Vec::new();
        for action in &prog.actions {
            for f in crate::opt::ctxt_writes(action) {
                if !ctxt_writes.contains(&f) {
                    ctxt_writes.push(f);
                }
            }
        }
        let bucket = prog
            .rate_limit
            .map(|rl| TokenBucket::new(rl.capacity, rl.refill_per_tick));
        let ledger = PrivacyLedger::new(prog.privacy.budget_milli_eps);
        let id = self.next_id;
        self.next_id += 1;
        // Index this program's tables by hook, preserving table order.
        let mut seen_hooks: Vec<&str> = Vec::new();
        for t in &prog.tables {
            if !seen_hooks.contains(&t.hook.as_str()) {
                seen_hooks.push(&t.hook);
            }
        }
        let mut hook_tables: HashMap<String, Vec<usize>> = HashMap::new();
        for (i, t) in prog.tables.iter().enumerate() {
            hook_tables.entry(t.hook.clone()).or_default().push(i);
        }
        let hook_names: Vec<String> = seen_hooks.iter().map(|h| h.to_string()).collect();
        let n_models = prog.models.len();
        for hook in seen_hooks {
            let first = prog
                .tables
                .iter()
                .position(|t| t.hook == hook)
                .expect("hook came from tables");
            self.hook_index
                .entry(hook.to_string())
                .or_insert_with(|| HookSlot {
                    listeners: Vec::new(),
                    fires: 0,
                    hist: Log2Hist::new(),
                    consumed: Vec::new(),
                    eligible: true,
                    key_stable: false,
                    cache: DecisionCache::default(),
                })
                .listeners
                .push((id, TableId(first as u16)));
        }
        self.programs.insert(
            id,
            Installed {
                prog,
                hook_tables,
                worst_case,
                mode,
                tables,
                maps,
                compiled,
                fused: Vec::new(),
                opt_stats,
                ctxt_writes,
                rng: StdRng::seed_from_u64(seed),
                ledger,
                bucket,
                stats: ProgStats::default(),
                hist: Log2Hist::new(),
                model_stats: std::iter::repeat_with(ModelStats::new)
                    .take(n_models)
                    .collect(),
            },
        );
        self.obs.ring.push(TraceEvent {
            tick: self.tick,
            prog: id,
            kind: TraceKind::Install,
            info: id as i64,
        });
        self.table_gen += 1;
        for hook in &hook_names {
            self.refresh_hook_cache_meta(hook);
        }
        // Fuse this program's tail-call chains against its freshly
        // installed tables; other programs just restamp (tail calls
        // never cross programs, so their plans are unaffected).
        self.refresh_fused(Some(id), None);
        Ok(ProgId(id))
    }

    /// Changes an installed program's optimization level and, in JIT
    /// mode, recompiles every action through the optimize → re-verify
    /// → compile path (a re-verification failure aborts the switch and
    /// leaves the previous compiled bodies installed). In interpreter
    /// mode only the knob is recorded: the interpreter always executes
    /// the verified bytecode.
    ///
    /// The switch is epoch-published like any other table mutation:
    /// the table generation is bumped, which simultaneously invalidates
    /// the decision cache (decisions memoized under the old bodies) and
    /// every fused chain stamped under the old level, then chains are
    /// re-specialized for the new level. Without the bump, a replica
    /// that recompiled could keep serving verdicts memoized or fused
    /// under the previous level.
    pub fn set_opt_level(&mut self, id: ProgId, level: OptLevel) -> Result<(), VmError> {
        let inst = self
            .programs
            .get_mut(&id.0)
            .ok_or(VmError::NoSuchProgram(id.0))?;
        inst.prog.opt_level = level;
        if inst.mode == ExecMode::Jit {
            let mut out = Vec::with_capacity(inst.prog.actions.len());
            let mut opt_stats = OptStats::default();
            for (i, action) in inst.prog.actions.iter().enumerate() {
                let (c, _wc, report) = CompiledAction::compile_optimized_report(
                    i as u16,
                    action,
                    &inst.prog,
                    level,
                    inst.worst_case[i],
                )?;
                opt_stats.record(action.code.len(), &report);
                out.push(c);
            }
            inst.compiled = out;
            inst.opt_stats = opt_stats;
            self.obs.counters.opt_fixpoint_cap_hits += opt_stats.fixpoint_cap_hits;
        }
        self.table_gen += 1;
        self.refresh_fused(Some(id.0), None);
        Ok(())
    }

    /// Per-program optimizer statistics: pass-pipeline totals from the
    /// last full compile plus the current chain-fusion outcome.
    pub fn opt_stats(&self, id: ProgId) -> Result<OptStats, VmError> {
        self.programs
            .get(&id.0)
            .map(|inst| inst.opt_stats)
            .ok_or(VmError::NoSuchProgram(id.0))
    }

    /// An installed program's current optimization level.
    pub fn opt_level(&self, id: ProgId) -> Result<OptLevel, VmError> {
        self.programs
            .get(&id.0)
            .map(|inst| inst.prog.opt_level)
            .ok_or(VmError::NoSuchProgram(id.0))
    }

    /// Removes a program and unhooks its tables.
    pub fn remove(&mut self, id: ProgId) -> Result<(), VmError> {
        if self.programs.remove(&id.0).is_none() {
            return Err(VmError::NoSuchProgram(id.0));
        }
        for slot in self.hook_index.values_mut() {
            slot.listeners.retain(|(p, _)| *p != id.0);
        }
        self.obs.ring.push(TraceEvent {
            tick: self.tick,
            prog: id.0,
            kind: TraceKind::Remove,
            info: id.0 as i64,
        });
        self.table_gen += 1;
        let hooks: Vec<String> = self.hook_index.keys().cloned().collect();
        for hook in &hooks {
            self.refresh_hook_cache_meta(hook);
        }
        // Surviving programs' plans are untouched by the removal (tail
        // calls never cross programs): restamp to the new generation.
        self.refresh_fused(None, None);
        Ok(())
    }

    /// Re-specializes fused tail-call chains after a generation bump.
    ///
    /// `recompute = Some(pid)` recomputes `pid`'s plans from its live
    /// tables (the mutation touched that program) and restamps every
    /// other program's existing plans to the current generation —
    /// sound because a `TailCall` can only target a table of its own
    /// program, so another program's mutation can never change this
    /// program's resolution. `recompute = None` restamps everything
    /// (the mutation — e.g. a program removal — touched no surviving
    /// program's tables).
    ///
    /// `touched = Some(table)` narrows an entry mutation to one table:
    /// within the recomputed program, only plans whose [`FusedAction::
    /// deps`] include that table — plus actions with no current plan,
    /// whose resolution the mutation may have newly enabled — are
    /// re-fused; everything else restamps. A plan that never routed
    /// through the table cannot be changed by its entries, so the
    /// restamp is exact, not an approximation. `touched = None` means
    /// the mutation's reach is structural (install, opt-level change,
    /// model swap, restore): recompute every plan.
    ///
    /// Eager re-specialization keeps the invalidation window at zero:
    /// the stale-generation check in the dispatch path is defense in
    /// depth (it is what protects a snapshot-restored machine between
    /// entry overlay and the final refresh), not the primary protocol.
    fn refresh_fused(&mut self, recompute: Option<u32>, touched: Option<TableId>) {
        let generation = self.table_gen;
        // A touched index ≥ 64 has no bit of its own: plans that route
        // through such tables carry `deps == u64::MAX` and a full mask
        // re-fuses exactly those (plus everything else — conservative,
        // and only reachable on 64+-table programs).
        let mask = match touched {
            Some(t) if (t.0 as usize) < 64 => 1u64 << t.0,
            Some(_) => u64::MAX,
            None => u64::MAX,
        };
        let partial = touched.is_some();
        for (&pid, inst) in self.programs.iter_mut() {
            if recompute != Some(pid) {
                for f in inst.fused.iter_mut().flatten() {
                    f.generation = generation;
                }
                continue;
            }
            if !partial || inst.mode != ExecMode::Jit || inst.prog.opt_level == OptLevel::O0 {
                inst.fused = Self::fuse_actions(
                    &inst.prog,
                    &inst.tables,
                    &inst.worst_case,
                    inst.mode,
                    generation,
                    &mut inst.opt_stats,
                );
                continue;
            }
            let t = touched.expect("partial refresh implies a touched table");
            for i in 0..inst.prog.actions.len() {
                let slot = &mut inst.fused[i];
                let refuse = match slot {
                    Some(f) if f.deps & mask == 0 => {
                        f.generation = generation;
                        false
                    }
                    // The mutation hit a routed-through table: try the
                    // cheap dispatch-identity revalidation before
                    // paying a full re-plan + re-verify + re-compile.
                    Some(f) => !Self::revalidate_fused_plan(f, &inst.tables, t, generation),
                    None => true,
                };
                if refuse {
                    *slot =
                        Self::fuse_one(&inst.prog, &inst.tables, &inst.worst_case, i, generation);
                }
            }
            Self::recount_fusion_stats(&inst.fused, &mut inst.opt_stats);
        }
    }

    /// Computes the fused chain bodies for one program against its
    /// live tables. Per action: plan the fusion, re-verify the fused
    /// body (lifted size budget, same dataflow/CFG rules — see
    /// [`crate::verifier::reverify_action`]), and enforce the fuel
    /// argument — the fused body's re-verified worst case must fit the
    /// sum of the unfused links' budgets, so a fused chain can never
    /// burn more fuel than the chain it replaced. Any failure skips
    /// fusion for that action (the unfused body is always installed).
    fn fuse_actions(
        prog: &RmtProgram,
        tables: &[Table],
        worst_case: &[u64],
        mode: ExecMode,
        generation: u64,
        opt_stats: &mut OptStats,
    ) -> Vec<Option<FusedAction>> {
        let fused: Vec<Option<FusedAction>> =
            if mode != ExecMode::Jit || prog.opt_level == OptLevel::O0 {
                (0..prog.actions.len()).map(|_| None).collect()
            } else {
                (0..prog.actions.len())
                    .map(|i| Self::fuse_one(prog, tables, worst_case, i, generation))
                    .collect()
            };
        Self::recount_fusion_stats(&fused, opt_stats);
        fused
    }

    /// Plans, re-verifies, and compiles the fused chain body for one
    /// action (see [`RmtMachine::fuse_actions`] for the contract).
    fn fuse_one(
        prog: &RmtProgram,
        tables: &[Table],
        worst_case: &[u64],
        i: usize,
        generation: u64,
    ) -> Option<FusedAction> {
        let action = prog.actions.get(i)?;
        let plan = fuse_chain(action, &prog.actions, tables, prog.opt_level)?;
        let mut fuel_cap = worst_case.get(i).copied().unwrap_or(0);
        for st in &plan.steps {
            if let Some(a) = st.action {
                fuel_cap =
                    fuel_cap.saturating_add(worst_case.get(a as usize).copied().unwrap_or(0));
            }
        }
        let wc = crate::verifier::reverify_action(i as u16, &plan.action, prog).ok()?;
        if wc > fuel_cap {
            return None;
        }
        let compiled = CompiledAction::compile(&plan.action).ok()?;
        let mut deps = 0u64;
        for st in &plan.steps {
            deps |= Self::dep_bit(st.table as usize);
        }
        let mut trailing = 0u64;
        for insn in &plan.action.code {
            if let crate::bytecode::Insn::TailCall { table } = insn {
                trailing |= Self::dep_bit(table.0 as usize);
            }
        }
        deps |= trailing;
        Some(FusedAction {
            compiled,
            worst_case: wc,
            steps: plan.steps.into_boxed_slice(),
            generation,
            deps,
            trailing,
            step_keys: plan.step_keys.into_boxed_slice(),
        })
    }

    /// The dependency-mask bit for a table index (`u64::MAX` for
    /// indices past the mask width: depend on everything).
    fn dep_bit(ti: usize) -> u64 {
        if ti < 64 {
            1u64 << ti
        } else {
            u64::MAX
        }
    }

    /// Cheap post-churn revalidation of one fused plan: re-resolve
    /// every collapsed link that routed through the touched table
    /// using the constant key the plan stored at fusion time. When
    /// each such link still dispatches the same `(action, arg)`, the
    /// compiled body is byte-for-byte still exact — only the recorded
    /// entry index (the hit/miss bookkeeping the dispatch path
    /// synthesizes) may have moved — so the plan updates those indices
    /// and restamps instead of paying a full re-fuse. Returns `false`
    /// (the caller must re-fuse from scratch) when the dispatch
    /// identity changed, when an emptiness-resolved link's table is no
    /// longer empty (there is no stored key to re-resolve with), or
    /// when the touched table is a trailing `TailCall` target (churn
    /// there can extend or reshape the chain).
    fn revalidate_fused_plan(
        f: &mut FusedAction,
        tables: &[Table],
        touched: TableId,
        generation: u64,
    ) -> bool {
        if f.trailing & Self::dep_bit(touched.0 as usize) != 0 {
            return false;
        }
        let Some(t) = tables.get(touched.0 as usize) else {
            return false;
        };
        let mut entries: Vec<(usize, Option<u32>)> = Vec::new();
        for (i, st) in f.steps.iter().enumerate() {
            if st.table != touched.0 {
                continue;
            }
            let (entry, dispatch) = if t.is_empty() {
                (None, t.def().default_action.map(|a| (a.0, 0i64)))
            } else {
                let Some(key) = f.step_keys.get(i).and_then(|k| k.as_ref()) else {
                    return false; // Resolved by emptiness; table grew.
                };
                match t.resolve_indexed(key) {
                    Some((ei, e)) => (Some(ei as u32), Some((e.action.0, e.arg))),
                    None => (None, t.def().default_action.map(|a| (a.0, 0i64))),
                }
            };
            if dispatch != st.action.map(|a| (a, st.arg)) {
                return false;
            }
            entries.push((i, entry));
        }
        for (i, entry) in entries {
            f.steps[i].entry = entry;
        }
        f.generation = generation;
        true
    }

    /// Refreshes the fusion half of a program's optimizer statistics
    /// from its live plan set.
    fn recount_fusion_stats(fused: &[Option<FusedAction>], opt_stats: &mut OptStats) {
        opt_stats.fused_chains = fused.iter().flatten().count() as u64;
        opt_stats.fused_links = fused.iter().flatten().map(|f| f.steps.len() as u64).sum();
    }

    /// Recomputes a hook's decision-cache metadata (probe-key field
    /// union and eligibility) after a structural change. Cached
    /// decisions are not dropped here — the generation bump already
    /// made them stale, and counting them as invalidations at probe
    /// time keeps the obs story faithful; they are overwritten or
    /// FIFO-evicted lazily.
    fn refresh_hook_cache_meta(&mut self, hook: &str) {
        let Some(slot) = self.hook_index.get_mut(hook) else {
            return;
        };
        let mut consumed: Vec<FieldId> = Vec::new();
        let mut nonempty = 0usize;
        let mut non_exact = false;
        for &(pid, _) in &slot.listeners {
            let Some(inst) = self.programs.get(&pid) else {
                continue;
            };
            let Some(tis) = inst.hook_tables.get(hook) else {
                continue;
            };
            for &ti in tis {
                let t = &inst.tables[ti];
                if t.is_empty() {
                    continue;
                }
                nonempty += 1;
                if t.def().kind != MatchKind::Exact {
                    non_exact = true;
                }
                for f in &t.def().key_fields {
                    if !consumed.contains(f) {
                        consumed.push(*f);
                    }
                }
            }
        }
        // Per-hook specialization: decide whether cached decisions can
        // replay without per-step key re-extraction. Requires, for
        // every listener program, that (a) no action writes a consumed
        // field (so the probe key pins those fields for the whole
        // firing) and (b) every non-empty table of the program — tail
        // calls can reach tables registered at other hooks — keys only
        // consumed fields. Empty tables memoize key-independent steps
        // and keep their cheap is-still-empty validation.
        let mut key_stable = true;
        for &(pid, _) in &slot.listeners {
            let Some(inst) = self.programs.get(&pid) else {
                continue;
            };
            if inst.ctxt_writes.iter().any(|f| consumed.contains(f)) {
                key_stable = false;
                break;
            }
            let all_keys_consumed = inst
                .tables
                .iter()
                .all(|t| t.is_empty() || t.def().key_fields.iter().all(|f| consumed.contains(f)));
            if !all_keys_consumed {
                key_stable = false;
                break;
            }
        }
        slot.consumed = consumed;
        slot.key_stable = key_stable;
        // A hook whose live tables are all exact-match already costs
        // one hash probe per table; the cache would only add overhead.
        slot.eligible = nonempty == 0 || non_exact;
    }

    /// Whether any program listens on a hook (lets the embedding kernel
    /// skip context assembly on cold hooks — "lean monitoring").
    pub fn hook_armed(&self, hook: &str) -> bool {
        self.hook_index
            .get(hook)
            .is_some_and(|s| !s.listeners.is_empty())
    }

    /// Fires a kernel hook: every program with tables at `hook` runs its
    /// pipeline over `ctxt`. Faulting actions are absorbed (counted in
    /// [`ProgStats::actions_aborted`]).
    ///
    /// The observability layer sees every firing: machine counters
    /// always, latency histograms when [`ObsConfig::timing`] is on
    /// (subject to sampling), trace events for notable outcomes. The
    /// path itself is allocation-free in steady state — the pipeline
    /// queue is a reusable per-machine scratch buffer and the listener
    /// list is iterated in place.
    ///
    /// A megaflow-style decision cache fronts the pipeline walk: the
    /// consumed ctxt fields key a memo of the resolved (table, entry)
    /// chain, so repeat flows skip match resolution (actions still
    /// re-execute, and every replayed step is revalidated against the
    /// live tables). Control-plane mutations bump a generation counter
    /// that invalidates all cached decisions.
    pub fn fire(&mut self, hook: &str, ctxt: &mut Ctxt) -> HookResult {
        let sample_mask = Self::sample_mask(&self.obs.cfg);
        let Some(slot) = self.hook_index.get_mut(hook) else {
            self.obs.counters.fires_unarmed += 1;
            return HookResult::default();
        };
        let result = Self::fire_in_slot(
            &mut self.programs,
            &mut self.obs,
            &mut self.scratch_queue,
            &mut self.key_scratch,
            &mut self.pipeline_scratch,
            self.tick,
            self.table_gen,
            self.decision_cache_cap,
            sample_mask,
            slot,
            hook,
            ctxt,
        );
        if self.obs.flight.due(self.obs.counters.fires) {
            self.capture_flight_frame();
        }
        result
    }

    /// Fires `hook` once per context, amortizing the per-fire fixed
    /// costs across the batch: one hook-index lookup, one
    /// sampling-mask computation, and one flight-recorder due-check
    /// (at most one frame captured per batch, even when the batch
    /// crosses several capture intervals) instead of one each per
    /// firing. Per-firing semantics are otherwise identical to
    /// [`RmtMachine::fire`] — each context still gets its own
    /// decision-cache probe (flows differ) and its own [`HookResult`].
    ///
    /// This is the inner loop of every
    /// [`crate::shard::ShardedMachine`] worker, and pays off on a
    /// single machine too.
    pub fn fire_batch(&mut self, hook: &str, ctxts: &mut [Ctxt]) -> Vec<HookResult> {
        let mut results = Vec::with_capacity(ctxts.len());
        if ctxts.is_empty() {
            return results;
        }
        let sample_mask = Self::sample_mask(&self.obs.cfg);
        let Some(slot) = self.hook_index.get_mut(hook) else {
            self.obs.counters.fires_unarmed += ctxts.len() as u64;
            results.resize_with(ctxts.len(), HookResult::default);
            return results;
        };
        let fires_before = self.obs.counters.fires;
        // Single-listener fast path (the common shape: one program
        // per hook): resolve the program instance and its table
        // pipeline once, then run key-extraction → cache probe →
        // action execution per context without re-walking the program
        // B-tree or re-hashing the hook name each firing.
        let single = match slot.listeners.as_slice() {
            &[(pid, _)] => self
                .programs
                .get_mut(&pid)
                .filter(|inst| inst.hook_tables.contains_key(hook))
                .map(|inst| (pid, inst)),
            _ => None,
        };
        if let Some((pid, inst)) = single {
            self.pipeline_scratch.clear();
            self.pipeline_scratch
                .extend_from_slice(&inst.hook_tables[hook]);
            for ctxt in ctxts.iter_mut() {
                results.push(Self::fire_one_prepared(
                    inst,
                    pid,
                    &self.pipeline_scratch,
                    &mut self.obs,
                    &mut self.scratch_queue,
                    &mut self.key_scratch,
                    self.tick,
                    self.table_gen,
                    self.decision_cache_cap,
                    sample_mask,
                    slot,
                    ctxt,
                ));
            }
        } else {
            for ctxt in ctxts.iter_mut() {
                results.push(Self::fire_in_slot(
                    &mut self.programs,
                    &mut self.obs,
                    &mut self.scratch_queue,
                    &mut self.key_scratch,
                    &mut self.pipeline_scratch,
                    self.tick,
                    self.table_gen,
                    self.decision_cache_cap,
                    sample_mask,
                    slot,
                    hook,
                    ctxt,
                ));
            }
        }
        if self
            .obs
            .flight
            .due_span(fires_before, self.obs.counters.fires)
        {
            self.capture_flight_frame();
        }
        results
    }

    /// Opens the `Fire` span for one firing if the sampling layer
    /// says so: consumes an ingress-injected decision, or (when
    /// self-sampled) derives the trace id from the hook's consumed
    /// flow-key fields. `None` — the overwhelmingly common case — is
    /// one branch, no allocation, no clock read.
    fn span_begin_fire(
        obs: &mut Obs,
        consumed: &[FieldId],
        ctxt: &Ctxt,
        key_scratch: &mut Vec<u64>,
    ) -> Option<FireSpan> {
        let active = obs.spans.fire_ctx()?;
        let trace_id = if active.trace_id != 0 {
            active.trace_id
        } else {
            ctxt.key_into(consumed, key_scratch);
            span::trace_id_from_key(key_scratch.iter().copied())
        };
        let span_id = obs.spans.alloc_id();
        Some(FireSpan {
            trace_id,
            span_id,
            parent_id: active.parent_id,
            start_ns: obs.spans.now_ns(),
        })
    }

    /// Latency-sampling mask from the obs config: a firing is timed
    /// when `(slot.fires - 1) & mask == 0`.
    fn sample_mask(cfg: &ObsConfig) -> u64 {
        if cfg.sample_shift >= 64 {
            u64::MAX
        } else {
            (1u64 << cfg.sample_shift) - 1
        }
    }

    /// The pipeline walk for one firing of an armed hook. Takes the
    /// machine's fields as disjoint borrows (the hook slot is a live
    /// `&mut` into `hook_index`, so `&mut self` is unavailable) —
    /// which is what lets [`RmtMachine::fire_batch`] hold the slot
    /// across a whole batch. Flight-recorder capture stays with the
    /// callers: it needs the whole machine.
    #[allow(clippy::too_many_arguments)]
    fn fire_in_slot(
        programs: &mut BTreeMap<u32, Installed>,
        obs: &mut Obs,
        scratch_queue: &mut Vec<usize>,
        key_scratch: &mut Vec<u64>,
        pipeline_scratch: &mut Vec<usize>,
        tick: u64,
        table_gen: u64,
        decision_cache_cap: usize,
        sample_mask: u64,
        slot: &mut HookSlot,
        hook: &str,
        ctxt: &mut Ctxt,
    ) -> HookResult {
        let mut result = HookResult::default();

        slot.fires += 1;
        obs.counters.fires += 1;
        let timed = obs.cfg.timing && (slot.fires - 1) & sample_mask == 0;
        let t0 = timed.then(Instant::now);
        let mut prev = t0;
        let fire_span = Self::span_begin_fire(obs, &slot.consumed, ctxt, key_scratch);
        let probe_t0 = fire_span.map(|_| obs.spans.now_ns());
        let mut cache =
            Self::cache_probe(slot, obs, key_scratch, table_gen, decision_cache_cap, ctxt);
        if let (Some(fs), Some(p0)) = (fire_span, probe_t0) {
            let end = obs.spans.now_ns();
            let id = obs.spans.alloc_id();
            obs.spans
                .record(fs.trace_id, id, fs.span_id, Stage::CacheProbe, p0, end);
        }
        for li in 0..slot.listeners.len() {
            let (pid, _first_table) = slot.listeners[li];
            let Some(inst) = programs.get_mut(&pid) else {
                continue;
            };
            inst.stats.invocations += 1;
            // Pipeline: all of this program's tables registered at this
            // hook, in declaration order; a tail call redirects and then
            // ends the pipeline.
            let Some(hook_tables) = inst.hook_tables.get(hook) else {
                continue;
            };
            pipeline_scratch.clear();
            pipeline_scratch.extend_from_slice(hook_tables);
            Self::run_pipeline(
                inst,
                pid,
                pipeline_scratch,
                slot.key_stable,
                &mut cache,
                obs,
                scratch_queue,
                tick,
                table_gen,
                timed,
                &mut prev,
                fire_span.map(|f| (f.trace_id, f.span_id)),
                ctxt,
                &mut result,
            );
        }
        let finish_t0 = fire_span.map(|_| obs.spans.now_ns());
        Self::cache_finish(slot, obs, key_scratch, table_gen, decision_cache_cap, cache);
        if let Some(fs) = fire_span {
            let end = obs.spans.now_ns();
            if let Some(f0) = finish_t0 {
                let id = obs.spans.alloc_id();
                obs.spans
                    .record(fs.trace_id, id, fs.span_id, Stage::CacheFinish, f0, end);
            }
            obs.spans.record(
                fs.trace_id,
                fs.span_id,
                fs.parent_id,
                Stage::Fire,
                fs.start_ns,
                end,
            );
        }
        if let (Some(start), Some(end)) = (t0, prev) {
            slot.hist
                .record(end.duration_since(start).as_nanos() as u64);
        }
        result
    }

    /// One firing with the listener's program instance and table
    /// pipeline already resolved — the single-listener fast path of
    /// [`RmtMachine::fire_batch`], which hoists the program B-tree
    /// walk and the hook→tables hash probe out of the per-context
    /// loop. Per-firing semantics are identical to
    /// [`RmtMachine::fire_in_slot`] with one listener: both call the
    /// same [`RmtMachine::cache_probe`] / [`RmtMachine::run_pipeline`]
    /// / [`RmtMachine::cache_finish`] sequence.
    #[allow(clippy::too_many_arguments)]
    fn fire_one_prepared(
        inst: &mut Installed,
        pid: u32,
        pipeline: &[usize],
        obs: &mut Obs,
        scratch_queue: &mut Vec<usize>,
        key_scratch: &mut Vec<u64>,
        tick: u64,
        table_gen: u64,
        decision_cache_cap: usize,
        sample_mask: u64,
        slot: &mut HookSlot,
        ctxt: &mut Ctxt,
    ) -> HookResult {
        let mut result = HookResult::default();
        slot.fires += 1;
        obs.counters.fires += 1;
        let timed = obs.cfg.timing && (slot.fires - 1) & sample_mask == 0;
        let t0 = timed.then(Instant::now);
        let mut prev = t0;
        let fire_span = Self::span_begin_fire(obs, &slot.consumed, ctxt, key_scratch);
        let probe_t0 = fire_span.map(|_| obs.spans.now_ns());
        let mut cache =
            Self::cache_probe(slot, obs, key_scratch, table_gen, decision_cache_cap, ctxt);
        if let (Some(fs), Some(p0)) = (fire_span, probe_t0) {
            let end = obs.spans.now_ns();
            let id = obs.spans.alloc_id();
            obs.spans
                .record(fs.trace_id, id, fs.span_id, Stage::CacheProbe, p0, end);
        }
        inst.stats.invocations += 1;
        Self::run_pipeline(
            inst,
            pid,
            pipeline,
            slot.key_stable,
            &mut cache,
            obs,
            scratch_queue,
            tick,
            table_gen,
            timed,
            &mut prev,
            fire_span.map(|f| (f.trace_id, f.span_id)),
            ctxt,
            &mut result,
        );
        let finish_t0 = fire_span.map(|_| obs.spans.now_ns());
        Self::cache_finish(slot, obs, key_scratch, table_gen, decision_cache_cap, cache);
        if let Some(fs) = fire_span {
            let end = obs.spans.now_ns();
            if let Some(f0) = finish_t0 {
                let id = obs.spans.alloc_id();
                obs.spans
                    .record(fs.trace_id, id, fs.span_id, Stage::CacheFinish, f0, end);
            }
            obs.spans.record(
                fs.trace_id,
                fs.span_id,
                fs.parent_id,
                Stage::Fire,
                fs.start_ns,
                end,
            );
        }
        if let (Some(start), Some(end)) = (t0, prev) {
            slot.hist
                .record(end.duration_since(start).as_nanos() as u64);
        }
        result
    }

    /// Decision-cache probe for one firing: hash the consumed ctxt
    /// fields (into the machine's reusable key scratch — no
    /// allocation on repeat flows) and, if a current-generation
    /// decision is cached, move its step chain out for replay
    /// (validated per table in [`RmtMachine::run_pipeline`]; actions
    /// always re-execute).
    fn cache_probe(
        slot: &mut HookSlot,
        obs: &mut Obs,
        key_scratch: &mut Vec<u64>,
        table_gen: u64,
        decision_cache_cap: usize,
        ctxt: &Ctxt,
    ) -> CacheRun {
        let enabled = decision_cache_cap > 0 && slot.eligible;
        if decision_cache_cap > 0 && !slot.eligible {
            obs.counters.decision_cache_bypasses += 1;
        }
        let mut cache = CacheRun {
            enabled,
            // Flow-independent hooks (no consumed fields) share a
            // single decision slot: no key extraction, no hash probe.
            flowless: slot.consumed.is_empty(),
            invalidated: false,
            recording: false,
            recorded: Vec::new(),
            replay: None,
            cursor: 0,
            diverged: false,
        };
        if enabled && cache.flowless {
            match slot.cache.flowless.take() {
                Some(c) if c.generation == table_gen => cache.replay = Some(c.steps),
                Some(_) => cache.invalidated = true,
                None => {}
            }
        } else if enabled {
            ctxt.key_into(&slot.consumed, key_scratch);
            match slot.cache.map.get_mut(key_scratch.as_slice()) {
                Some(c) if c.generation == table_gen => {
                    cache.replay = Some(std::mem::take(&mut c.steps));
                }
                Some(_) => cache.invalidated = true,
                None => {}
            }
        }
        cache.recording = enabled && cache.replay.is_none();
        cache
    }

    /// One listener's pipeline walk: the program's tables registered
    /// at the hook (pre-resolved by the caller into `pipeline`), in
    /// declaration order; a tail call redirects and then ends the
    /// pipeline. Shared by the scalar fire path and the
    /// single-listener batch fast path so their semantics (counters,
    /// traces, cache steps) cannot drift.
    #[allow(clippy::too_many_arguments)]
    fn run_pipeline(
        inst: &mut Installed,
        pid: u32,
        pipeline: &[usize],
        key_stable: bool,
        cache: &mut CacheRun,
        obs: &mut Obs,
        scratch_queue: &mut Vec<usize>,
        tick: u64,
        table_gen: u64,
        timed: bool,
        prev: &mut Option<Instant>,
        fire_span: Option<(u64, u64)>,
        ctxt: &mut Ctxt,
        result: &mut HookResult,
    ) {
        // (trace_id, own span id, parent fire span id, start) for the
        // RunPipeline span, when this firing is traced.
        let pipeline_span = fire_span.map(|(trace, fire_id)| {
            let id = obs.spans.alloc_id();
            (trace, id, fire_id, obs.spans.now_ns())
        });
        let verdicts_before = result.verdicts.len();
        scratch_queue.clear();
        scratch_queue.extend_from_slice(pipeline);
        let mut chain = 0usize;
        let mut qi = 0usize;
        while qi < scratch_queue.len() {
            let ti = scratch_queue[qi];
            qi += 1;
            // Match phase: replay a validated cached step, or
            // resolve live (recording if the cache missed).
            let mut replayed: Option<Option<usize>> = None;
            let mut fresh_key: Option<Vec<u64>> = None;
            if cache.enabled && !cache.recording {
                match cache.replay.as_deref().unwrap_or(&[]).get(cache.cursor) {
                    Some(st) => {
                        let t = &inst.tables[ti];
                        let ok = st.prog == pid
                            && st.table as usize == ti
                            && match &st.key {
                                // Key-independent decision: still
                                // valid iff the table is still
                                // empty (no key extraction).
                                None => t.is_empty(),
                                // Key-stable hook (specialized
                                // fast path): the probe-key match
                                // already pinned every reachable
                                // match key for this firing, so
                                // skip re-extraction.
                                Some(_) if key_stable => true,
                                Some(mk) => {
                                    let k = ctxt.key(&t.def().key_fields);
                                    let same = *mk == k;
                                    fresh_key = Some(k);
                                    same
                                }
                            }
                            && match st.entry {
                                Some(ei) => (ei as usize) < t.entries().len(),
                                None => true,
                            };
                        if ok {
                            replayed = Some(st.entry.map(|ei| ei as usize));
                            cache.cursor += 1;
                        } else {
                            let mut r = cache.replay.take().unwrap_or_default();
                            r.truncate(cache.cursor);
                            cache.recorded = r;
                            cache.recording = true;
                            cache.diverged = true;
                        }
                    }
                    None => {
                        // Live pipeline outran the memo (e.g. a
                        // tail call fires now that didn't before):
                        // divergence. The validated prefix seeds
                        // the re-recording.
                        cache.recorded = cache.replay.take().unwrap_or_default();
                        cache.recording = true;
                        cache.diverged = true;
                    }
                }
            }
            let (matched, action_id, arg) = match replayed {
                Some(Some(ei)) => {
                    let t = &inst.tables[ti];
                    t.note_hit();
                    let e = &t.entries()[ei];
                    (true, Some(e.action), e.arg)
                }
                Some(None) => {
                    let t = &inst.tables[ti];
                    t.note_miss();
                    (false, t.def().default_action, 0)
                }
                None => {
                    let t = &inst.tables[ti];
                    if cache.enabled && t.is_empty() {
                        // Empty table: the default action fires
                        // regardless of the key — skip extraction
                        // and memoize a key-independent step.
                        t.note_miss();
                        if cache.recording {
                            cache.recorded.push(CachedStep {
                                prog: pid,
                                table: ti as u16,
                                key: None,
                                entry: None,
                            });
                        }
                        (false, t.def().default_action, 0)
                    } else {
                        let key = fresh_key
                            .take()
                            .unwrap_or_else(|| ctxt.key(&t.def().key_fields));
                        let lookup_t0 = pipeline_span.map(|_| obs.spans.now_ns());
                        let looked_up = t.lookup_indexed(&key);
                        if let (Some((trace, rp_id, _, _)), Some(l0)) = (pipeline_span, lookup_t0) {
                            let end = obs.spans.now_ns();
                            let id = obs.spans.alloc_id();
                            obs.spans
                                .record(trace, id, rp_id, Stage::TableLookup, l0, end);
                        }
                        match looked_up {
                            Some((ei, e)) => {
                                let (action, arg) = (e.action, e.arg);
                                if cache.recording {
                                    cache.recorded.push(CachedStep {
                                        prog: pid,
                                        table: ti as u16,
                                        key: Some(key),
                                        entry: Some(ei as u32),
                                    });
                                }
                                (true, Some(action), arg)
                            }
                            None => {
                                if cache.recording {
                                    cache.recorded.push(CachedStep {
                                        prog: pid,
                                        table: ti as u16,
                                        key: Some(key),
                                        entry: None,
                                    });
                                }
                                (false, t.def().default_action, 0)
                            }
                        }
                    }
                }
            };
            if matched {
                obs.counters.table_hits += 1;
            } else {
                obs.counters.table_misses += 1;
            }
            let Some(action_id) = action_id else {
                continue; // Miss with no default: next table.
            };
            // A fused chain body replaces the unfused action when its
            // resolution stamp matches the live table generation; a
            // stale stamp (mutation since the last re-specialization)
            // falls back to the unfused body — same verdicts, unfused
            // cost — until `refresh_fused` catches up. The collapsed
            // links must also fit the remaining dynamic tail-chain
            // budget: a fused dispatch reached through a prior
            // (unresolved) redirect would otherwise execute links the
            // unfused chain's per-redirect `MAX_TAIL_CHAIN` check
            // refuses.
            let use_fused = inst.mode == ExecMode::Jit
                && inst
                    .fused
                    .get(action_id.0 as usize)
                    .and_then(|f| f.as_ref())
                    .is_some_and(|f| {
                        f.generation == table_gen && chain + f.steps.len() <= MAX_TAIL_CHAIN
                    });
            let fuel = if use_fused {
                inst.fused[action_id.0 as usize]
                    .as_ref()
                    .expect("checked above")
                    .worst_case
            } else {
                inst.worst_case
                    .get(action_id.0 as usize)
                    .copied()
                    .unwrap_or(1)
            };
            let outcome = {
                let mut env = ExecEnv {
                    ctxt,
                    maps: &mut inst.maps,
                    tensors: &inst.prog.tensors,
                    models: &inst.prog.models,
                    tick,
                    rng: &mut inst.rng,
                    ledger: &mut inst.ledger,
                    privacy: inst.prog.privacy,
                    ml_stats: &mut inst.model_stats,
                    time_ml: timed,
                };
                match inst.mode {
                    ExecMode::Interp => run_action(
                        &inst.prog.actions[action_id.0 as usize],
                        fuel,
                        arg,
                        &mut env,
                    ),
                    ExecMode::Jit if use_fused => inst.fused[action_id.0 as usize]
                        .as_ref()
                        .expect("checked above")
                        .compiled
                        .run(fuel, arg, &mut env),
                    ExecMode::Jit => inst.compiled[action_id.0 as usize].run(fuel, arg, &mut env),
                }
            };
            match outcome {
                Ok(ActionOutcome {
                    verdict,
                    effects,
                    tail_call,
                    insns_executed,
                    guard_trips,
                }) => {
                    inst.stats.actions_run += 1;
                    inst.stats.insns_executed += insns_executed;
                    inst.stats.guard_trips += guard_trips;
                    if guard_trips > 0 {
                        obs.counters.guard_trips += guard_trips;
                        obs.ring.push(TraceEvent {
                            tick,
                            prog: pid,
                            kind: TraceKind::GuardTrip,
                            info: guard_trips as i64,
                        });
                    }
                    if use_fused {
                        // The fused body collapsed a statically
                        // resolved match chain into one execution;
                        // synthesize the per-table observability the
                        // chain no longer performs live. Verdicts are
                        // the fusion-time constants, bit-identical to
                        // the unfused chain's; only `insns_executed`
                        // legitimately differs (that's the win).
                        let Installed {
                            fused,
                            tables,
                            stats,
                            ..
                        } = inst;
                        let fa = fused[action_id.0 as usize]
                            .as_ref()
                            .expect("use_fused checked");
                        result
                            .verdicts
                            .push((TableId(ti as u16), fa.steps[0].caller_verdict));
                        for (si, step) in fa.steps.iter().enumerate() {
                            stats.tail_calls += 1;
                            obs.counters.tail_calls += 1;
                            chain += 1;
                            let t = &tables[step.table as usize];
                            if step.entry.is_some() {
                                t.note_hit();
                                obs.counters.table_hits += 1;
                            } else {
                                t.note_miss();
                                obs.counters.table_misses += 1;
                            }
                            if step.action.is_some() {
                                stats.actions_run += 1;
                                let v = fa
                                    .steps
                                    .get(si + 1)
                                    .map(|n| n.caller_verdict)
                                    .unwrap_or(verdict);
                                result.verdicts.push((TableId(step.table), v));
                            }
                        }
                        // The chain redirected away from the rest of
                        // the queue at its first (collapsed) tail
                        // call, exactly as the unfused redirect
                        // truncates below.
                        scratch_queue.truncate(qi);
                    } else {
                        result.verdicts.push((TableId(ti as u16), verdict));
                    }
                    for e in effects {
                        if e.is_resource() {
                            if let Some(bucket) = &mut inst.bucket {
                                let cost = match e {
                                    Effect::Prefetch { count, .. } => count.max(1),
                                    _ => 1,
                                };
                                if !bucket.try_take(cost, tick) {
                                    inst.stats.effects_rate_limited += 1;
                                    obs.counters.rate_limit_drops += 1;
                                    obs.ring.push(TraceEvent {
                                        tick,
                                        prog: pid,
                                        kind: TraceKind::RateLimitDrop,
                                        info: ti as i64,
                                    });
                                    continue;
                                }
                            }
                        }
                        inst.stats.effects_emitted += 1;
                        result.effects.push(e);
                    }
                    if let Some(target) = tail_call {
                        chain += 1;
                        if chain > MAX_TAIL_CHAIN {
                            // §3.1: a tail call redirects and ends
                            // the pipeline — an over-long chain
                            // terminates it instead of letting the
                            // remaining queue run.
                            inst.stats.tail_chain_overflows += 1;
                            obs.counters.tail_chain_overflows += 1;
                            obs.ring.push(TraceEvent {
                                tick,
                                prog: pid,
                                kind: TraceKind::TailChainOverflow,
                                info: ti as i64,
                            });
                            break;
                        } else if target.0 as usize >= inst.tables.len() {
                            inst.stats.actions_aborted += 1;
                            obs.counters.aborts += 1;
                            obs.ring.push(TraceEvent {
                                tick,
                                prog: pid,
                                kind: TraceKind::Abort,
                                info: ti as i64,
                            });
                        } else {
                            inst.stats.tail_calls += 1;
                            obs.counters.tail_calls += 1;
                            // Redirect: the chain replaces the rest
                            // of the pipeline.
                            scratch_queue.truncate(qi);
                            scratch_queue.push(target.0 as usize);
                        }
                    }
                }
                Err(_) => {
                    inst.stats.actions_aborted += 1;
                    obs.counters.aborts += 1;
                    obs.ring.push(TraceEvent {
                        tick,
                        prog: pid,
                        kind: TraceKind::Abort,
                        info: ti as i64,
                    });
                }
            }
        }
        if let Some(start) = *prev {
            let now = Instant::now();
            inst.hist
                .record(now.duration_since(start).as_nanos() as u64);
            *prev = Some(now);
        }
        if obs.cfg.trace_fires {
            let verdict = result.verdicts[verdicts_before..]
                .last()
                .map_or(i64::MIN, |&(_, v)| v);
            obs.ring.push(TraceEvent {
                tick,
                prog: pid,
                kind: TraceKind::Fire,
                info: verdict,
            });
        }
        if let Some((trace, rp_id, fire_id, start)) = pipeline_span {
            let end = obs.spans.now_ns();
            obs.spans
                .record(trace, rp_id, fire_id, Stage::RunPipeline, start, end);
        }
    }

    /// Publishes the firing's decision-cache outcome: restore the
    /// step chain on a clean hit, or insert the recorded chain on a
    /// miss. The probe key is cloned out of the machine scratch only
    /// on insert — the hot hit path never allocates.
    fn cache_finish(
        slot: &mut HookSlot,
        obs: &mut Obs,
        key_scratch: &[u64],
        table_gen: u64,
        decision_cache_cap: usize,
        mut cache: CacheRun,
    ) {
        if !cache.enabled {
            return;
        }
        let hit = !cache.diverged
            && cache
                .replay
                .as_deref()
                .is_some_and(|s| s.len() == cache.cursor);
        if hit {
            obs.counters.decision_cache_hits += 1;
            // Restore the step chain taken at probe time; nothing
            // evicts mid-firing.
            let steps = cache.replay.take().unwrap_or_default();
            if cache.flowless {
                slot.cache.flowless = Some(CachedDecision {
                    generation: table_gen,
                    steps,
                });
            } else if let Some(c) = slot.cache.map.get_mut(key_scratch) {
                c.steps = steps;
            }
        } else {
            obs.counters.decision_cache_misses += 1;
            if cache.invalidated {
                obs.counters.decision_cache_invalidations += 1;
            }
            if !cache.recording {
                // Every replayed step validated but the live
                // pipeline ended early: memoize what actually ran.
                cache.recorded = cache.replay.take().map_or_else(Vec::new, |mut s| {
                    s.truncate(cache.cursor);
                    s
                });
            }
            let dec = CachedDecision {
                generation: table_gen,
                steps: cache.recorded,
            };
            if cache.flowless {
                slot.cache.flowless = Some(dec);
            } else {
                let evicted = slot
                    .cache
                    .insert(key_scratch.to_vec(), dec, decision_cache_cap);
                obs.counters.decision_cache_evictions += evicted;
            }
        }
    }

    /// Captures one flight-recorder frame from current obs state.
    fn capture_flight_frame(&mut self) {
        let mut hooks: Vec<FlightHookPoint> = self
            .hook_index
            .iter()
            .map(|(name, s)| FlightHookPoint {
                hook: name.clone(),
                fires: s.fires,
                p50: s.hist.percentile(50),
                p99: s.hist.percentile(99),
            })
            .collect();
        hooks.sort_by(|a, b| a.hook.cmp(&b.hook));
        let mut models = Vec::new();
        for (&id, inst) in &self.programs {
            for (slot, ms) in inst.model_stats.iter().enumerate() {
                models.push(FlightModelPoint {
                    prog: id,
                    slot: slot as u16,
                    served: ms.served(),
                    outcomes: ms.outcomes(),
                    acc_permille: ms.rolling_accuracy_permille().map_or(-1, |v| v as i64),
                    drift_suspected: ms.drift_suspected(),
                });
            }
        }
        let frame = FlightFrame {
            seq: 0, // stamped by the recorder
            tick: self.tick,
            fires: self.obs.counters.fires,
            counters: self.obs.counters,
            hooks,
            models,
        };
        self.obs.flight.push(frame);
    }

    /// Inserts or replaces a runtime entry (control-plane API).
    pub fn insert_entry(
        &mut self,
        prog: ProgId,
        table: TableId,
        entry: Entry,
    ) -> Result<(), VmError> {
        let inst = self
            .programs
            .get_mut(&prog.0)
            .ok_or(VmError::NoSuchProgram(prog.0))?;
        if entry.action.0 as usize >= inst.prog.actions.len() {
            return Err(VmError::BadEntry(format!(
                "action {} does not exist",
                entry.action.0
            )));
        }
        let t = inst
            .tables
            .get_mut(table.0 as usize)
            .ok_or(VmError::NoSuchTable(table.0))?;
        let hook = t.def().hook.clone();
        t.insert(entry)?;
        self.table_gen += 1;
        self.refresh_hook_cache_meta(&hook);
        // The new entry may change (or newly enable) chain resolution
        // in plans that route through this table; everything else —
        // including other programs, whose tables a tail call can never
        // target — just restamps to the new generation.
        self.refresh_fused(Some(prog.0), Some(table));
        Ok(())
    }

    /// Removes a runtime entry by key.
    pub fn remove_entry(
        &mut self,
        prog: ProgId,
        table: TableId,
        key: &crate::table::MatchKey,
    ) -> Result<bool, VmError> {
        let inst = self
            .programs
            .get_mut(&prog.0)
            .ok_or(VmError::NoSuchProgram(prog.0))?;
        let t = inst
            .tables
            .get_mut(table.0 as usize)
            .ok_or(VmError::NoSuchTable(table.0))?;
        let hook = t.def().hook.clone();
        let removed = t.remove(key);
        if removed {
            self.table_gen += 1;
            self.refresh_hook_cache_meta(&hook);
            self.refresh_fused(Some(prog.0), Some(table));
        }
        Ok(removed)
    }

    /// Replaces an ML model at runtime (the periodic "quantize and push
    /// to the kernel" update). The replacement is re-verified: same
    /// feature arity and within the slot's latency-class budget.
    pub fn update_model(
        &mut self,
        prog: ProgId,
        slot: crate::bytecode::ModelSlot,
        spec: ModelSpec,
    ) -> Result<(), VmError> {
        let inst = self
            .programs
            .get_mut(&prog.0)
            .ok_or(VmError::NoSuchProgram(prog.0))?;
        let def = inst
            .prog
            .models
            .get_mut(slot.0 as usize)
            .ok_or(VmError::NoSuchModel(slot.0))?;
        if spec.n_features() != def.spec.n_features() {
            return Err(VmError::BadEntry(format!(
                "model arity {} != {}",
                spec.n_features(),
                def.spec.n_features()
            )));
        }
        CostBudget::for_class(def.latency_class)
            .admit(&spec.cost())
            .map_err(|source| {
                VmError::Verify(crate::error::VerifyError::ModelOverBudget {
                    model: slot.0,
                    source,
                })
            })?;
        def.spec = spec;
        // The swapped-in model starts with a clean prequential window
        // and drift latch — the old model's recent accuracy says
        // nothing about its replacement. Cumulative counters (served,
        // confusion, latency) survive: they describe the slot's
        // lifetime, and obs_reset is the explicit way to clear them.
        if let Some(ms) = inst.model_stats.get_mut(slot.0 as usize) {
            ms.reset_windows();
        }
        self.obs.ring.push(TraceEvent {
            tick: self.tick,
            prog: prog.0,
            kind: TraceKind::ModelSwap,
            info: slot.0 as i64,
        });
        // Model behavior feeds tail-call decisions; cached chains
        // recorded against the old model must not replay, and fused
        // bodies must be re-planned (fusion already refuses CallMl
        // callees, but the caller's constant state can change).
        self.table_gen += 1;
        self.refresh_fused(Some(prog.0), None);
        Ok(())
    }

    /// Reports the ground-truth outcome of one earlier model
    /// prediction (control-plane `ReportOutcome`): updates the slot's
    /// confusion matrix and prequential-accuracy window, latching
    /// `drift_suspected` on a threshold crossing — §3.1's "past
    /// prediction accuracy" feedback loop.
    pub fn report_outcome(
        &mut self,
        prog: ProgId,
        slot: crate::bytecode::ModelSlot,
        predicted: i64,
        actual: i64,
    ) -> Result<(), VmError> {
        let cfg = self.obs.cfg;
        let inst = self
            .programs
            .get_mut(&prog.0)
            .ok_or(VmError::NoSuchProgram(prog.0))?;
        let ms = inst
            .model_stats
            .get_mut(slot.0 as usize)
            .ok_or(VmError::NoSuchModel(slot.0))?;
        ms.record_outcome(predicted, actual, &cfg);
        Ok(())
    }

    /// Reads one model slot's prediction telemetry (control-plane
    /// `QueryModelStats`).
    pub fn model_stats(
        &self,
        prog: ProgId,
        slot: crate::bytecode::ModelSlot,
    ) -> Result<ModelStatsSnapshot, VmError> {
        let inst = self
            .programs
            .get(&prog.0)
            .ok_or(VmError::NoSuchProgram(prog.0))?;
        let ms = inst
            .model_stats
            .get(slot.0 as usize)
            .ok_or(VmError::NoSuchModel(slot.0))?;
        let name = inst
            .prog
            .models
            .get(slot.0 as usize)
            .map(|d| d.name.clone())
            .unwrap_or_default();
        Ok(ms.snapshot(prog.0, slot.0, name))
    }

    /// Reads a program's statistics.
    pub fn stats(&self, prog: ProgId) -> Result<ProgStats, VmError> {
        self.programs
            .get(&prog.0)
            .map(|i| i.stats)
            .ok_or(VmError::NoSuchProgram(prog.0))
    }

    /// Reads a table's hit/miss statistics.
    pub fn table_stats(&self, prog: ProgId, table: TableId) -> Result<TableStats, VmError> {
        let inst = self
            .programs
            .get(&prog.0)
            .ok_or(VmError::NoSuchProgram(prog.0))?;
        inst.tables
            .get(table.0 as usize)
            .map(|t| t.stats())
            .ok_or(VmError::NoSuchTable(table.0))
    }

    /// Remaining privacy budget in milli-epsilon.
    pub fn privacy_remaining(&self, prog: ProgId) -> Result<u64, VmError> {
        self.programs
            .get(&prog.0)
            .map(|i| i.ledger.remaining_milli_eps())
            .ok_or(VmError::NoSuchProgram(prog.0))
    }

    /// Control-plane map write (e.g. seeding monitoring state).
    pub fn map_update(
        &mut self,
        prog: ProgId,
        map: MapId,
        key: u64,
        value: i64,
    ) -> Result<(), VmError> {
        let inst = self
            .programs
            .get_mut(&prog.0)
            .ok_or(VmError::NoSuchProgram(prog.0))?;
        inst.maps
            .get_mut(map.0 as usize)
            .ok_or(VmError::MapError("no such map"))?
            .update(key, value)
    }

    /// Control-plane map read. Reads of shared maps go through DP and
    /// charge the program ledger, enforcing §3.3 on the control path
    /// too.
    pub fn map_lookup(
        &mut self,
        prog: ProgId,
        map: MapId,
        key: u64,
    ) -> Result<Option<i64>, VmError> {
        let inst = self
            .programs
            .get_mut(&prog.0)
            .ok_or(VmError::NoSuchProgram(prog.0))?;
        let shared = inst
            .prog
            .maps
            .get(map.0 as usize)
            .ok_or(VmError::MapError("no such map"))?
            .shared;
        let m = inst
            .maps
            .get_mut(map.0 as usize)
            .ok_or(VmError::MapError("no such map"))?;
        if shared {
            let sum = m.aggregate_sum();
            let noised = crate::dp::noised_query(
                sum,
                &mut inst.ledger,
                inst.prog.privacy.per_query_milli_eps,
                inst.prog.privacy.sensitivity,
                &mut inst.rng,
            )?;
            Ok(Some(noised))
        } else {
            Ok(m.lookup(key))
        }
    }

    /// The declaration of one of a program's maps.
    pub fn map_def(&self, prog: ProgId, map: MapId) -> Result<&crate::maps::MapDef, VmError> {
        self.programs
            .get(&prog.0)
            .ok_or(VmError::NoSuchProgram(prog.0))?
            .prog
            .maps
            .get(map.0 as usize)
            .ok_or(VmError::MapError("no such map"))
    }

    /// Shared-borrow control-plane map read: same value as
    /// [`RmtMachine::map_lookup`] for non-shared maps, but without
    /// `&mut self` and without refreshing LRU recency — the read the
    /// sharded control plane uses to aggregate per-CPU replicas
    /// without perturbing datapath state. Shared maps are refused:
    /// their only legal read is the DP-noised one, which must charge
    /// the ledger (and therefore needs `&mut`).
    pub fn map_peek(&self, prog: ProgId, map: MapId, key: u64) -> Result<Option<i64>, VmError> {
        let inst = self
            .programs
            .get(&prog.0)
            .ok_or(VmError::NoSuchProgram(prog.0))?;
        let def = inst
            .prog
            .maps
            .get(map.0 as usize)
            .ok_or(VmError::MapError("no such map"))?;
        if def.shared {
            return Err(VmError::MapError(
                "shared map reads must go through the DP path (map_lookup)",
            ));
        }
        Ok(inst.maps[map.0 as usize].peek(key))
    }

    /// Number of installed programs.
    pub fn program_count(&self) -> usize {
        self.programs.len()
    }

    /// Installed program ids.
    pub fn program_ids(&self) -> Vec<ProgId> {
        self.programs.keys().map(|&k| ProgId(k)).collect()
    }

    /// Execution mode of a program.
    pub fn mode(&self, prog: ProgId) -> Result<ExecMode, VmError> {
        self.programs
            .get(&prog.0)
            .map(|i| i.mode)
            .ok_or(VmError::NoSuchProgram(prog.0))
    }

    /// Current observability configuration.
    pub fn obs_config(&self) -> ObsConfig {
        self.obs.cfg
    }

    /// Reconfigures the observability layer at runtime. Counters and
    /// histograms are kept; the trace ring and flight recorder are
    /// resized (evicting — and counting — oldest entries if they
    /// shrink).
    pub fn set_obs_config(&mut self, cfg: ObsConfig) {
        self.obs.cfg = cfg;
        self.obs.ring.set_capacity(cfg.trace_capacity);
        self.obs
            .flight
            .configure(cfg.flight_interval, cfg.flight_capacity);
    }

    /// Machine-wide datapath counters.
    pub fn machine_counters(&self) -> crate::obs::MachineCounters {
        self.obs.counters
    }

    /// Per-hook statistics (fires + latency histogram). Errors on a
    /// hook the machine has never had a table installed at.
    pub fn hook_stats(&self, hook: &str) -> Result<HookStats, VmError> {
        self.hook_index
            .get(hook)
            .map(|s| HookStats {
                hook: hook.to_string(),
                fires: s.fires,
                hist: s.hist.clone(),
            })
            .ok_or_else(|| VmError::BadRequest(format!("unknown hook {hook:?}")))
    }

    /// Drains up to `max` trace events (oldest first) along with the
    /// cumulative dropped count — the control-plane consumer side of
    /// the trace ring.
    pub fn trace_read(&mut self, max: usize) -> TraceSnapshot {
        TraceSnapshot {
            events: self.obs.ring.drain(max),
            dropped: self.obs.ring.dropped(),
        }
    }

    /// Reconfigures span tracing: sample 1-in-2^`sample_shift` fires
    /// (>= 64 disables sampling entirely) into a ring bounded at
    /// `capacity` spans — the `SpanConfig` control verb.
    pub fn set_span_config(&mut self, sample_shift: u32, capacity: usize) {
        self.obs.spans.configure(sample_shift, capacity);
    }

    /// Drains up to `max` recorded spans (oldest first) plus the
    /// evict count — the `SpanRead` control verb.
    pub fn span_read(&mut self, max: usize) -> SpanSnapshot {
        self.obs.spans.drain(max)
    }

    /// Clears recorded spans and the stage profile — the `SpanReset`
    /// control verb. Sampling configuration survives.
    pub fn span_reset(&mut self) {
        self.obs.spans.reset();
    }

    /// The aggregated per-stage span profile (non-draining).
    pub fn stage_profile(&self) -> StageProfile {
        self.obs.spans.profile()
    }

    /// Direct access to the span collector for in-crate
    /// instrumentation sites (shard workers, the journal).
    pub(crate) fn spans_mut(&mut self) -> &mut SpanCollector {
        &mut self.obs.spans
    }

    /// Nanoseconds since this machine's span epoch.
    pub(crate) fn span_now_ns(&self) -> u64 {
        self.obs.spans.now_ns()
    }

    /// Aligns the span collector into a sharded deployment: shared
    /// epoch, per-replica id namespace, ingress-owned sampling.
    pub(crate) fn align_span_identity(&mut self, shard: u64, epoch: Instant, self_sample: bool) {
        self.obs.spans.set_identity(shard, epoch, self_sample);
    }

    /// Resets the observability layer: counters (including the
    /// decision-cache hit/miss/invalidation/eviction/bypass counters —
    /// they are observations *about* the cache, owned by the obs
    /// layer), per-hook and per-program histograms, per-model
    /// prediction telemetry (confusion matrices, prequential windows,
    /// the drift latch), the trace ring, and the flight recorder.
    ///
    /// The reset is observational only: cached decisions themselves
    /// survive, so a warm flow still hits the cache on its next firing
    /// — resetting telemetry must not change datapath behavior or
    /// performance. [`ProgStats`] and [`TableStats`] are likewise not
    /// touched — they belong to the programs, not the obs layer.
    pub fn obs_reset(&mut self) {
        self.obs.counters = crate::obs::MachineCounters::default();
        self.obs.ring.reset();
        self.obs.flight.reset();
        for slot in self.hook_index.values_mut() {
            slot.fires = 0;
            slot.hist.reset();
        }
        for inst in self.programs.values_mut() {
            inst.hist.reset();
            for ms in &mut inst.model_stats {
                ms.reset();
            }
        }
    }

    /// Full observability snapshot (counters, per-hook and per-program
    /// histograms, trace-ring occupancy), serializable via
    /// [`crate::snapshot::to_json_string`] for offline analysis. Does
    /// not drain the trace ring.
    pub fn obs_snapshot(&self) -> ObsSnapshot {
        let mut hooks: Vec<HookStats> = self
            .hook_index
            .iter()
            .map(|(name, s)| HookStats {
                hook: name.clone(),
                fires: s.fires,
                hist: s.hist.clone(),
            })
            .collect();
        hooks.sort_by(|a, b| a.hook.cmp(&b.hook));
        let programs = self
            .programs
            .iter()
            .map(|(&id, inst)| ProgHist {
                prog: id,
                hist: inst.hist.clone(),
            })
            .collect();
        let mut models = Vec::new();
        for (&id, inst) in &self.programs {
            for (slot, ms) in inst.model_stats.iter().enumerate() {
                let name = inst
                    .prog
                    .models
                    .get(slot)
                    .map(|d| d.name.clone())
                    .unwrap_or_default();
                models.push(ms.snapshot(id, slot as u16, name));
            }
        }
        ObsSnapshot {
            tick: self.tick,
            counters: self.obs.counters,
            hooks,
            programs,
            models,
            trace_dropped: self.obs.ring.dropped(),
            trace_pending: self.obs.ring.len() as u64,
            ingress: Vec::new(),
            // A lone machine has no skew balancer to consult.
            ingress_should_rebalance: -1,
        }
    }

    /// Serializable copy of the flight recorder (control-plane
    /// `FlightRead`). Non-draining: frames stay buffered until evicted
    /// by newer frames, a reconfigure, or an obs reset.
    pub fn flight_snapshot(&self) -> FlightSnapshot {
        self.obs.flight.snapshot()
    }

    /// Serves exactly one metrics scrape from `listener` and returns
    /// the request path served: `GET /metrics` answers Prometheus text
    /// exposition, `GET /metrics.json` the JSON rendering of the same
    /// [`ObsSnapshot`] (see [`crate::obs::export`]). Blocking by
    /// design — the embedding decides when to donate a thread; the
    /// machine itself never spawns one.
    pub fn serve_metrics_once(&self, listener: &std::net::TcpListener) -> std::io::Result<String> {
        crate::obs::export::serve_once(listener, &self.obs_snapshot())
    }

    /// Serves metrics scrapes and read-only `/ctrl/*` queries from
    /// `listener` until `stop` flips — the persistent sibling of
    /// [`RmtMachine::serve_metrics_once`] for operating a long-running
    /// machine (see [`crate::obs::export::serve_until`]). Returns the
    /// number of connections answered.
    pub fn serve_metrics_until(
        &mut self,
        listener: &std::net::TcpListener,
        stop: &std::sync::atomic::AtomicBool,
    ) -> std::io::Result<u64> {
        crate::obs::export::serve_until(
            listener,
            self,
            stop,
            crate::obs::export::ServeOptions::default(),
        )
    }
}

impl crate::obs::export::MetricsSource for RmtMachine {
    fn obs(&mut self) -> ObsSnapshot {
        self.obs_snapshot()
    }

    fn ctrl_query(&mut self, path: &str) -> Option<String> {
        match path {
            "/ctrl/counters" => Some(rkd_testkit::json::to_string(&self.machine_counters())),
            "/ctrl/models" => Some(rkd_testkit::json::to_string(&self.obs_snapshot().models)),
            "/ctrl/stages" => Some(rkd_testkit::json::to_string(&self.stage_profile())),
            _ => None,
        }
    }

    fn trace_json(&mut self) -> Option<String> {
        Some(span::chrome_trace_json(&self.span_read(usize::MAX)))
    }
}

/// Serialized state of one table: entries in insertion order (the
/// order that reproduces seq-based tie-breaks on re-insert) plus
/// hit/miss statistics.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TableState {
    /// Live entries, oldest insertion first.
    pub entries: Vec<Entry>,
    /// Hit/miss counters.
    pub stats: TableStats,
}

/// Serialized runtime state of one installed program: the program
/// itself (re-verified on restore) plus everything the machine mutates
/// after install.
#[derive(Clone, Debug)]
pub struct ProgramState {
    /// Installed program id.
    pub id: u32,
    /// The full program, including its opt level. Restore re-runs the
    /// verifier over this — a snapshot is control-plane input, not
    /// trusted state.
    pub prog: RmtProgram,
    /// Execution mode (JIT bodies are recompiled on restore, never
    /// serialized).
    pub mode: ExecMode,
    /// Per-table runtime entries and stats, in table declaration order.
    pub tables: Vec<TableState>,
    /// Per-map contents, in map declaration order.
    pub maps: Vec<MapState>,
    /// Exact PRNG position, so restored DP noise continues the stream.
    pub rng_state: [u64; 4],
    /// Privacy budget already spent, in milli-epsilon.
    pub ledger_spent_milli_eps: u64,
    /// Rate-limiter fill as `(tokens, last_tick)`, if the program has
    /// a rate limit.
    pub bucket: Option<(u64, u64)>,
    /// Per-program runtime counters.
    pub stats: ProgStats,
    /// Per-pipeline-run latency histogram.
    pub hist: Log2Hist,
    /// Per-model-slot telemetry (confusion matrices, windows, drift
    /// latch), in model-slot order.
    pub model_stats: Vec<ModelStatsState>,
    /// Optimizer telemetry from the program's last (re)compile: pass
    /// fire counts, instruction before/after, fused-chain footprint.
    pub opt_stats: OptStats,
}

/// Per-hook observability carried across snapshot/restore.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HookState {
    /// Hook name.
    pub hook: String,
    /// Armed firings since the last obs reset.
    pub fires: u64,
    /// Whole-fire latency histogram (ns).
    pub hist: Log2Hist,
}

/// Complete serializable state of an [`RmtMachine`]: installed
/// programs with their runtime state, per-hook observability, and the
/// observability layer. Produced by [`RmtMachine::snapshot`], consumed
/// by [`RmtMachine::restore`]; serializes through
/// [`crate::snapshot::to_json_string`].
///
/// Decision caches are deliberately absent: they are memoization, not
/// state — a restored machine rebuilds them on first firings and
/// produces bit-identical verdicts either way.
#[derive(Clone, Debug)]
pub struct MachineSnapshot {
    /// Monotonic tick at snapshot time.
    pub tick: u64,
    /// Next program id the machine would assign.
    pub next_id: u32,
    /// Table generation (cache-invalidation counter).
    pub table_generation: u64,
    /// Per-hook decision-cache capacity.
    pub decision_cache_cap: usize,
    /// Installed programs, ascending id order.
    pub programs: Vec<ProgramState>,
    /// Per-hook fires/latency, sorted by hook name.
    pub hooks: Vec<HookState>,
    /// Observability layer (counters, trace backlog, flight recorder).
    pub obs: ObsState,
}

impl RmtMachine {
    /// Captures the machine's complete state as a serializable
    /// [`MachineSnapshot`]. Lossless for everything that affects
    /// behavior or telemetry: a [`RmtMachine::restore`] of the result
    /// fires identically to this machine from here on.
    pub fn snapshot(&self) -> MachineSnapshot {
        let programs = self
            .programs
            .iter()
            .map(|(&id, inst)| ProgramState {
                id,
                prog: inst.prog.clone(),
                mode: inst.mode,
                tables: inst
                    .tables
                    .iter()
                    .map(|t| TableState {
                        entries: t.entries_in_insertion_order(),
                        stats: t.stats(),
                    })
                    .collect(),
                maps: inst.maps.iter().map(MapInstance::export_state).collect(),
                rng_state: inst.rng.state(),
                ledger_spent_milli_eps: inst.ledger.spent_milli_eps(),
                bucket: inst.bucket.as_ref().map(TokenBucket::level),
                stats: inst.stats,
                hist: inst.hist.clone(),
                model_stats: inst
                    .model_stats
                    .iter()
                    .map(ModelStats::export_state)
                    .collect(),
                opt_stats: inst.opt_stats,
            })
            .collect();
        let mut hooks: Vec<HookState> = self
            .hook_index
            .iter()
            .map(|(name, s)| HookState {
                hook: name.clone(),
                fires: s.fires,
                hist: s.hist.clone(),
            })
            .collect();
        hooks.sort_by(|a, b| a.hook.cmp(&b.hook));
        MachineSnapshot {
            tick: self.tick,
            next_id: self.next_id,
            table_generation: self.table_gen,
            decision_cache_cap: self.decision_cache_cap,
            programs,
            hooks,
            obs: self.obs.export_state(),
        }
    }

    /// Rebuilds a machine from a snapshot. Every program **re-passes
    /// the verifier** (against `vcfg`) before installation — a snapshot
    /// is untrusted control-plane input, so recovery stays outside the
    /// trusted base; a program that no longer verifies rejects the
    /// whole snapshot. Runtime state (table entries, map contents, RNG
    /// position, ledgers, rate-limiter fill, telemetry) is overlaid
    /// after installation, and in JIT mode actions are recompiled from
    /// the verified program rather than deserialized.
    pub fn restore(snap: MachineSnapshot, vcfg: &VerifierConfig) -> Result<RmtMachine, VmError> {
        let mut m = RmtMachine::new();
        let mut last_id = 0u32;
        for ps in snap.programs {
            if ps.id <= last_id {
                return Err(VmError::BadRequest(format!(
                    "snapshot program ids must be ascending and nonzero (saw {} after {})",
                    ps.id, last_id
                )));
            }
            // The trust boundary: nothing from the snapshot executes
            // unless the program passes the same verifier gate a fresh
            // install would.
            let vp = verify_with(ps.prog.clone(), vcfg).map_err(VmError::Verify)?;
            m.next_id = ps.id;
            let got = m.install_seeded(vp, ps.mode, 0)?;
            debug_assert_eq!(got.0, ps.id);
            let inst = m.programs.get_mut(&ps.id).expect("just installed");
            if inst.tables.len() != ps.tables.len() {
                return Err(VmError::BadRequest(format!(
                    "snapshot of program {} has {} table states for {} tables",
                    ps.id,
                    ps.tables.len(),
                    inst.tables.len()
                )));
            }
            for (t, ts) in inst.tables.iter_mut().zip(ps.tables) {
                // Install populated `initial_entries`; the snapshot's
                // runtime entry set replaces it wholesale, re-inserted
                // in insertion order so seq tie-breaks reproduce.
                t.clear();
                for e in ts.entries {
                    t.insert(e)?;
                }
                t.restore_stats(ts.stats);
            }
            if inst.maps.len() != ps.maps.len() {
                return Err(VmError::BadRequest(format!(
                    "snapshot of program {} has {} map states for {} maps",
                    ps.id,
                    ps.maps.len(),
                    inst.maps.len()
                )));
            }
            for (slot, state) in inst.maps.iter_mut().zip(ps.maps) {
                let imported = MapInstance::import_state(state)?;
                if std::mem::discriminant(&imported) != std::mem::discriminant(&*slot)
                    || imported.capacity() != slot.capacity()
                {
                    return Err(VmError::MapError("snapshot map kind/capacity mismatch"));
                }
                *slot = imported;
            }
            inst.rng = StdRng::from_state(ps.rng_state);
            inst.ledger = PrivacyLedger::restore(
                inst.prog.privacy.budget_milli_eps,
                ps.ledger_spent_milli_eps,
            );
            if let (Some(b), Some((tokens, last_tick))) = (inst.bucket.as_mut(), ps.bucket) {
                b.restore_level(tokens, last_tick);
            }
            inst.stats = ps.stats;
            inst.hist = ps.hist;
            if inst.model_stats.len() != ps.model_stats.len() {
                return Err(VmError::BadRequest(format!(
                    "snapshot of program {} has {} model-stat states for {} model slots",
                    ps.id,
                    ps.model_stats.len(),
                    inst.model_stats.len()
                )));
            }
            inst.model_stats = ps
                .model_stats
                .into_iter()
                .map(ModelStats::import_state)
                .collect();
            inst.opt_stats = ps.opt_stats;
            last_id = ps.id;
        }
        // Entry overlay may have changed which tables are empty —
        // recompute cache probe keys and eligibility per hook.
        let hooks: Vec<String> = m.hook_index.keys().cloned().collect();
        for hook in &hooks {
            m.refresh_hook_cache_meta(hook);
        }
        // Machine-level state goes last: the installs above pushed
        // Install trace events and bumped the generation counter, all
        // of which the snapshot overwrites.
        for hs in snap.hooks {
            let slot = m.hook_index.get_mut(&hs.hook).ok_or_else(|| {
                VmError::BadRequest(format!(
                    "snapshot hook {:?} has no installed table",
                    hs.hook
                ))
            })?;
            slot.fires = hs.fires;
            slot.hist = hs.hist;
        }
        m.tick = snap.tick;
        m.next_id = snap.next_id.max(last_id.saturating_add(1)).max(1);
        m.table_gen = snap.table_generation;
        m.decision_cache_cap = snap.decision_cache_cap;
        m.obs = Obs::import_state(snap.obs);
        // Fused chain bodies were specialized during install against
        // each program's seed entries and stamped before the snapshot
        // overlaid live entries and the generation counter; until this
        // re-specialization they are stale (and correctly dormant — the
        // generation check at dispatch refuses them). Recompute every
        // program against the restored tables so fusion is live from
        // the first fire.
        let ids: Vec<u32> = m.programs.keys().copied().collect();
        for id in ids {
            m.refresh_fused(Some(id), None);
        }
        Ok(m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bytecode::{Action, AluOp, Helper, Insn, Reg};
    use crate::prog::ProgramBuilder;
    use crate::table::{ActionId, MatchKey, MatchKind};
    use crate::verifier::verify;

    /// Program: one exact-match table on field "pid"; matched entries
    /// double the entry arg into the verdict; default action returns -1.
    fn doubling_program() -> VerifiedProgram {
        let mut b = ProgramBuilder::new("double");
        let pid = b.field_readonly("pid");
        let double = b.action(Action::new(
            "double",
            vec![
                Insn::Mov {
                    dst: Reg(0),
                    src: crate::bytecode::ARG_REG,
                },
                Insn::AluImm {
                    op: AluOp::Mul,
                    dst: Reg(0),
                    imm: 2,
                },
                Insn::Exit,
            ],
        ));
        let fallback = b.action(Action::new(
            "fallback",
            vec![
                Insn::LdImm {
                    dst: Reg(0),
                    imm: -1,
                },
                Insn::Exit,
            ],
        ));
        let t = b.table(
            "t",
            "test_hook",
            &[pid],
            MatchKind::Exact,
            Some(fallback),
            16,
        );
        b.entry(
            t,
            Entry {
                key: MatchKey::Exact(vec![7]),
                priority: 0,
                action: double,
                arg: 21,
            },
        );
        verify(b.build()).unwrap()
    }

    fn ctxt_with_pid(pid: i64) -> Ctxt {
        Ctxt::from_values(vec![pid])
    }

    #[test]
    fn install_fire_and_verdicts() {
        for mode in [ExecMode::Interp, ExecMode::Jit] {
            let mut m = RmtMachine::new();
            let id = m.install(doubling_program(), mode).unwrap();
            assert_eq!(m.mode(id).unwrap(), mode);
            let mut ctxt = ctxt_with_pid(7);
            let r = m.fire("test_hook", &mut ctxt);
            assert_eq!(r.verdict(), Some(42));
            let mut miss = ctxt_with_pid(8);
            let r = m.fire("test_hook", &mut miss);
            assert_eq!(r.verdict(), Some(-1), "default action on miss");
            let stats = m.stats(id).unwrap();
            assert_eq!(stats.invocations, 2);
            assert_eq!(stats.actions_run, 2);
            assert!(stats.insns_executed >= 5);
        }
    }

    #[test]
    fn unarmed_hook_is_a_noop() {
        let mut m = RmtMachine::new();
        assert!(!m.hook_armed("test_hook"));
        let mut ctxt = ctxt_with_pid(1);
        let r = m.fire("test_hook", &mut ctxt);
        assert!(r.verdicts.is_empty());
        m.install(doubling_program(), ExecMode::Interp).unwrap();
        assert!(m.hook_armed("test_hook"));
        assert!(!m.hook_armed("other_hook"));
    }

    #[test]
    fn remove_unhooks() {
        let mut m = RmtMachine::new();
        let id = m.install(doubling_program(), ExecMode::Interp).unwrap();
        assert_eq!(m.program_count(), 1);
        m.remove(id).unwrap();
        assert_eq!(m.program_count(), 0);
        assert!(!m.hook_armed("test_hook"));
        assert!(matches!(m.remove(id), Err(VmError::NoSuchProgram(_))));
    }

    #[test]
    fn runtime_entry_management() {
        let mut m = RmtMachine::new();
        let id = m.install(doubling_program(), ExecMode::Interp).unwrap();
        m.insert_entry(
            id,
            TableId(0),
            Entry {
                key: MatchKey::Exact(vec![100]),
                priority: 0,
                action: ActionId(0),
                arg: 50,
            },
        )
        .unwrap();
        let mut ctxt = ctxt_with_pid(100);
        assert_eq!(m.fire("test_hook", &mut ctxt).verdict(), Some(100));
        assert!(m
            .remove_entry(id, TableId(0), &MatchKey::Exact(vec![100]))
            .unwrap());
        let mut ctxt = ctxt_with_pid(100);
        assert_eq!(m.fire("test_hook", &mut ctxt).verdict(), Some(-1));
        // Invalid action id rejected.
        assert!(m
            .insert_entry(
                id,
                TableId(0),
                Entry {
                    key: MatchKey::Exact(vec![1]),
                    priority: 0,
                    action: ActionId(99),
                    arg: 0,
                },
            )
            .is_err());
    }

    #[test]
    fn rate_limiter_drops_excess_prefetches() {
        let mut b = ProgramBuilder::new("p");
        let pid = b.field_readonly("pid");
        let emit = b.action(Action::new(
            "emit",
            vec![
                Insn::LdImm {
                    dst: Reg(2),
                    imm: 0,
                },
                Insn::LdImm {
                    dst: Reg(3),
                    imm: 8,
                },
                Insn::Call {
                    helper: Helper::EmitPrefetch,
                },
                Insn::LdImm {
                    dst: Reg(0),
                    imm: 0,
                },
                Insn::Exit,
            ],
        ));
        b.table("t", "h", &[pid], MatchKind::Exact, Some(emit), 4);
        b.rate_limit(crate::prog::RateLimitCfg {
            capacity: 16,
            refill_per_tick: 8,
        });
        let vp = verify(b.build()).unwrap();
        let mut m = RmtMachine::new();
        let id = m.install(vp, ExecMode::Interp).unwrap();
        // Bucket = 16 tokens; each firing asks for 8 pages.
        let mut ctxt = ctxt_with_pid(0);
        assert_eq!(m.fire("h", &mut ctxt).effects.len(), 1);
        assert_eq!(m.fire("h", &mut ctxt).effects.len(), 1);
        assert_eq!(m.fire("h", &mut ctxt).effects.len(), 0, "bucket empty");
        let stats = m.stats(id).unwrap();
        assert_eq!(stats.effects_emitted, 2);
        assert_eq!(stats.effects_rate_limited, 1);
        // Refill after a tick.
        m.advance_tick(1);
        assert_eq!(m.fire("h", &mut ctxt).effects.len(), 1);
    }

    #[test]
    fn tail_call_cascades_and_is_bounded() {
        let mut b = ProgramBuilder::new("p");
        let pid = b.field_readonly("pid");
        // Action 0: tail-call table 1. Action 1: verdict 99.
        let a0 = b.action(Action::new(
            "tc",
            vec![
                Insn::LdImm {
                    dst: Reg(0),
                    imm: 1,
                },
                Insn::TailCall { table: TableId(1) },
            ],
        ));
        let a1 = b.action(Action::new(
            "leaf",
            vec![
                Insn::LdImm {
                    dst: Reg(0),
                    imm: 99,
                },
                Insn::Exit,
            ],
        ));
        b.table("t0", "h", &[pid], MatchKind::Exact, Some(a0), 4);
        b.table("t1", "other_hook", &[pid], MatchKind::Exact, Some(a1), 4);
        let vp = verify(b.build()).unwrap();
        let mut m = RmtMachine::new();
        let id = m.install(vp, ExecMode::Jit).unwrap();
        let mut ctxt = ctxt_with_pid(5);
        let r = m.fire("h", &mut ctxt);
        assert_eq!(r.verdicts.len(), 2);
        assert_eq!(r.verdict(), Some(99));
        assert_eq!(m.stats(id).unwrap().tail_calls, 1);
    }

    /// Three-link chain for fusion tests. `t0` ("h") defaults to `a0`,
    /// which stores constant 3 into scratch field `k` and tail-calls
    /// `t1`; `t1` (keyed on `k`) holds an entry for key 3 whose action
    /// `a1` tail-calls `t2`; `t2` is empty and defaults to `a2`
    /// (verdict = arg + 40). Every link resolves statically, so at the
    /// default O2 the whole chain fuses under JIT.
    fn chain_program() -> VerifiedProgram {
        let mut b = ProgramBuilder::new("chain");
        let pid = b.field_readonly("pid");
        let k = b.field_scratch("k");
        let a0 = b.action(Action::new(
            "root",
            vec![
                Insn::LdImm {
                    dst: Reg(1),
                    imm: 3,
                },
                Insn::StCtxt {
                    field: k,
                    src: Reg(1),
                },
                Insn::LdImm {
                    dst: Reg(0),
                    imm: 10,
                },
                Insn::TailCall { table: TableId(1) },
            ],
        ));
        let a1 = b.action(Action::new(
            "mid",
            vec![
                Insn::LdImm {
                    dst: Reg(0),
                    imm: 20,
                },
                Insn::TailCall { table: TableId(2) },
            ],
        ));
        let a2 = b.action(Action::new(
            "leaf",
            vec![
                Insn::Mov {
                    dst: Reg(0),
                    src: crate::bytecode::ARG_REG,
                },
                Insn::AluImm {
                    op: AluOp::Add,
                    dst: Reg(0),
                    imm: 40,
                },
                Insn::Exit,
            ],
        ));
        b.table("t0", "h", &[pid], MatchKind::Exact, Some(a0), 4);
        b.table("t1", "stage", &[k], MatchKind::Exact, None, 4);
        b.table("t2", "stage", &[k], MatchKind::Exact, Some(a2), 4);
        b.entry(
            TableId(1),
            Entry {
                key: MatchKey::Exact(vec![3]),
                priority: 0,
                action: a1,
                arg: 5,
            },
        );
        verify(b.build()).unwrap()
    }

    fn chain_ctxt(pid: i64) -> Ctxt {
        Ctxt::from_values(vec![pid, 0])
    }

    /// The tentpole's correctness contract: a fused chain produces the
    /// same verdict stream, effects, and per-table bookkeeping as the
    /// unfused chain, and the fusion actually happened (this is not a
    /// vacuous comparison).
    #[test]
    fn fused_chain_matches_unfused_execution() {
        let mut jit = RmtMachine::new();
        let jid = jit.install(chain_program(), ExecMode::Jit).unwrap();
        let os = jit.opt_stats(jid).unwrap();
        // `root` fuses both links; `mid` independently fuses its one.
        assert_eq!(os.fused_chains, 2, "{os:?}");
        assert_eq!(os.fused_links, 3, "{os:?}");
        let mut interp = RmtMachine::new();
        let iid = interp.install(chain_program(), ExecMode::Interp).unwrap();
        for pid in 0..4 {
            let rj = jit.fire("h", &mut chain_ctxt(pid));
            let ri = interp.fire("h", &mut chain_ctxt(pid));
            assert_eq!(rj.verdicts, ri.verdicts);
            assert_eq!(rj.effects, ri.effects);
        }
        let pinned = jit.fire("h", &mut chain_ctxt(9)).verdicts;
        assert_eq!(
            pinned,
            vec![(TableId(0), 10), (TableId(1), 20), (TableId(2), 40)]
        );
        assert_eq!(interp.fire("h", &mut chain_ctxt(9)).verdicts, pinned);
        let (sj, si) = (jit.stats(jid).unwrap(), interp.stats(iid).unwrap());
        assert_eq!(sj.actions_run, si.actions_run);
        assert_eq!(sj.tail_calls, si.tail_calls);
        assert_eq!(sj.guard_trips, si.guard_trips);
        for t in 0..3 {
            assert_eq!(
                jit.table_stats(jid, TableId(t)).unwrap(),
                interp.table_stats(iid, TableId(t)).unwrap(),
                "table {t} hit/miss bookkeeping must survive fusion"
            );
        }
        // The fused body runs fewer instructions — that is the win.
        assert!(
            sj.insns_executed < si.insns_executed,
            "fused {} !< unfused {}",
            sj.insns_executed,
            si.insns_executed
        );
    }

    /// Control-plane churn on a table a fused chain resolved through
    /// must re-specialize the plan (eagerly — the generation check is
    /// only a backstop), and verdicts must track the live entries
    /// exactly as the unfused interpreter's do.
    #[test]
    fn entry_churn_respecializes_fused_chains() {
        let mut jit = RmtMachine::new();
        let jid = jit.install(chain_program(), ExecMode::Jit).unwrap();
        let mut interp = RmtMachine::new();
        let iid = interp.install(chain_program(), ExecMode::Interp).unwrap();
        let key = MatchKey::Exact(vec![3]);
        let fire_both = |jit: &mut RmtMachine, interp: &mut RmtMachine| {
            let rj = jit.fire("h", &mut chain_ctxt(1));
            let ri = interp.fire("h", &mut chain_ctxt(1));
            assert_eq!(rj.verdicts, ri.verdicts);
            rj.verdicts
        };
        assert_eq!(fire_both(&mut jit, &mut interp).len(), 3);
        // Remove the mid link's entry: t1 goes empty with no default,
        // so the chain now ends there.
        assert!(jit.remove_entry(jid, TableId(1), &key).unwrap());
        assert!(interp.remove_entry(iid, TableId(1), &key).unwrap());
        assert_eq!(
            fire_both(&mut jit, &mut interp),
            vec![(TableId(0), 10)],
            "chain must end at the miss with no default"
        );
        // Re-point key 3 straight at the leaf with a live arg.
        let e = Entry {
            key: key.clone(),
            priority: 0,
            action: ActionId(2),
            arg: 100,
        };
        jit.insert_entry(jid, TableId(1), e.clone()).unwrap();
        interp.insert_entry(iid, TableId(1), e).unwrap();
        assert_eq!(
            fire_both(&mut jit, &mut interp),
            vec![(TableId(0), 10), (TableId(1), 140)],
            "re-specialization must bake the new entry (arg 100)"
        );
        // Still fused after all the churn, not silently degraded.
        assert!(jit.opt_stats(jid).unwrap().fused_chains >= 1);
    }

    /// The sharded `SetOptLevel` bugfix at machine level: switching
    /// levels restamps/recomputes fused plans and bumps the table
    /// generation so stale cached or fused decisions cannot serve.
    #[test]
    fn set_opt_level_recomputes_fusion_and_bumps_generation() {
        use crate::opt::OptLevel;
        let mut m = RmtMachine::new();
        let id = m.install(chain_program(), ExecMode::Jit).unwrap();
        assert_eq!(m.opt_stats(id).unwrap().fused_chains, 2);
        let baseline = m.fire("h", &mut chain_ctxt(1)).verdicts;
        m.set_opt_level(id, OptLevel::O0).unwrap();
        assert_eq!(
            m.opt_stats(id).unwrap().fused_chains,
            0,
            "O0 must drop every fused body"
        );
        assert_eq!(m.fire("h", &mut chain_ctxt(1)).verdicts, baseline);
        m.set_opt_level(id, OptLevel::O2).unwrap();
        assert_eq!(m.opt_stats(id).unwrap().fused_chains, 2);
        assert_eq!(m.fire("h", &mut chain_ctxt(1)).verdicts, baseline);
    }

    /// Restore must re-specialize fused chains against the *restored*
    /// entries (which may differ from the program's seed entries), and
    /// optimizer stats must round-trip through the snapshot.
    #[test]
    fn restore_respecializes_fused_chains_against_restored_entries() {
        let mut m = RmtMachine::new();
        let id = m.install(chain_program(), ExecMode::Jit).unwrap();
        // Diverge runtime entries from the seed: key 3 now routes to
        // the leaf with arg 7.
        let key = MatchKey::Exact(vec![3]);
        assert!(m.remove_entry(id, TableId(1), &key).unwrap());
        m.insert_entry(
            id,
            TableId(1),
            Entry {
                key,
                priority: 0,
                action: ActionId(2),
                arg: 7,
            },
        )
        .unwrap();
        let want = m.fire("h", &mut chain_ctxt(1)).verdicts;
        assert_eq!(want, vec![(TableId(0), 10), (TableId(1), 47)]);
        let snap = m.snapshot();
        let mut r = RmtMachine::restore(snap, &VerifierConfig::default()).unwrap();
        assert_eq!(r.opt_stats(id).unwrap(), m.opt_stats(id).unwrap());
        assert!(r.opt_stats(id).unwrap().fused_chains >= 1);
        assert_eq!(r.fire("h", &mut chain_ctxt(1)).verdicts, want);
    }

    #[test]
    fn model_hot_swap_validates() {
        use rkd_ml::cost::LatencyClass;
        use rkd_ml::dataset::{Dataset, Sample};
        use rkd_ml::fixed::Fix;
        use rkd_ml::svm::IntSvm;
        use rkd_ml::tree::{DecisionTree, TreeConfig};
        let ds = Dataset::from_samples(vec![
            Sample::from_f64(&[0.0], 0),
            Sample::from_f64(&[1.0], 0),
            Sample::from_f64(&[8.0], 1),
            Sample::from_f64(&[9.0], 1),
        ])
        .unwrap();
        let tree = DecisionTree::train(&ds, &TreeConfig::default()).unwrap();
        let mut b = ProgramBuilder::new("p");
        let f = b.field_readonly("x");
        let slot = b.model("m", ModelSpec::Tree(tree), LatencyClass::Scheduler);
        let act = b.action(Action::new(
            "ml",
            vec![
                Insn::VectorLdCtxt {
                    dst: crate::bytecode::VReg(0),
                    base: f,
                    len: 1,
                },
                Insn::CallMl {
                    model: slot,
                    src: crate::bytecode::VReg(0),
                },
                Insn::Exit,
            ],
        ));
        b.table("t", "h", &[f], MatchKind::Exact, Some(act), 4);
        let vp = verify(b.build()).unwrap();
        let mut m = RmtMachine::new();
        let id = m.install(vp, ExecMode::Interp).unwrap();
        let mut ctxt = Ctxt::from_values(vec![9]);
        assert_eq!(m.fire("h", &mut ctxt).verdict(), Some(1));
        // Swap in an SVM that always predicts 0 for x >= 0 w = -1.
        let svm = IntSvm {
            weights: vec![Fix::NEG_ONE],
            bias: Fix::ZERO,
        };
        m.update_model(id, slot, ModelSpec::Svm(svm)).unwrap();
        let mut ctxt = Ctxt::from_values(vec![9]);
        assert_eq!(m.fire("h", &mut ctxt).verdict(), Some(0));
        // Wrong arity rejected.
        let bad = IntSvm {
            weights: vec![Fix::ONE, Fix::ONE],
            bias: Fix::ZERO,
        };
        assert!(m.update_model(id, slot, ModelSpec::Svm(bad)).is_err());
        // Over-budget model rejected (scheduler class).
        let huge = IntSvm {
            weights: vec![Fix::ONE; 1],
            bias: Fix::ZERO,
        };
        // 1 weight is fine; build a huge tree instead via many weights.
        let too_big = IntSvm {
            weights: vec![Fix::ONE; 4096],
            bias: Fix::ZERO,
        };
        assert!(m.update_model(id, slot, ModelSpec::Svm(huge)).is_ok());
        assert!(matches!(
            m.update_model(id, slot, ModelSpec::Svm(too_big)),
            Err(VmError::BadEntry(_)) | Err(VmError::Verify(_))
        ));
    }

    /// Builds a one-model program (tree: x<4 -> class 0, else 1)
    /// whose single table default-action runs `CallMl` on ctxt field
    /// "x", and installs it.
    fn ml_machine(mode: ExecMode) -> (RmtMachine, ProgId, crate::bytecode::ModelSlot) {
        use rkd_ml::cost::LatencyClass;
        use rkd_ml::dataset::{Dataset, Sample};
        use rkd_ml::tree::{DecisionTree, TreeConfig};
        let ds = Dataset::from_samples(vec![
            Sample::from_f64(&[0.0], 0),
            Sample::from_f64(&[1.0], 0),
            Sample::from_f64(&[8.0], 1),
            Sample::from_f64(&[9.0], 1),
        ])
        .unwrap();
        let tree = DecisionTree::train(&ds, &TreeConfig::default()).unwrap();
        let mut b = ProgramBuilder::new("mlprog");
        let f = b.field_readonly("x");
        let slot = b.model("clf", ModelSpec::Tree(tree), LatencyClass::Scheduler);
        let act = b.action(Action::new(
            "ml",
            vec![
                Insn::VectorLdCtxt {
                    dst: crate::bytecode::VReg(0),
                    base: f,
                    len: 1,
                },
                Insn::CallMl {
                    model: slot,
                    src: crate::bytecode::VReg(0),
                },
                Insn::Exit,
            ],
        ));
        b.table("t", "h", &[f], MatchKind::Exact, Some(act), 4);
        let vp = verify(b.build()).unwrap();
        let mut m = RmtMachine::new();
        let id = m.install(vp, mode).unwrap();
        (m, id, slot)
    }

    #[test]
    fn model_telemetry_counts_served_predictions() {
        for mode in [ExecMode::Interp, ExecMode::Jit] {
            let (mut m, id, slot) = ml_machine(mode);
            for x in [0i64, 1, 9, 9, 9] {
                let mut ctxt = Ctxt::from_values(vec![x]);
                m.fire("h", &mut ctxt);
            }
            let ms = m.model_stats(id, slot).unwrap();
            assert_eq!(ms.served, 5, "{mode:?}");
            assert_eq!(ms.class_counts[0], 2, "{mode:?}");
            assert_eq!(ms.class_counts[1], 3, "{mode:?}");
            assert_eq!(ms.name, "clf");
            assert_eq!(ms.outcomes, 0, "no ground truth reported yet");
            assert_eq!(ms.acc_permille, -1);
            // Default config times 1-in-8 fires: exactly the first fire
            // of this cold hook is sampled.
            assert_eq!(ms.latency.count(), 1, "{mode:?}");
        }
    }

    #[test]
    fn model_outcomes_drive_drift_latch_and_swap_clears_it() {
        let (mut m, id, slot) = ml_machine(ExecMode::Interp);
        m.set_obs_config(ObsConfig {
            accuracy_window: 4,
            accuracy_windows: 2,
            drift_threshold_permille: 500,
            ..ObsConfig::default()
        });
        for _ in 0..4 {
            m.report_outcome(id, slot, 1, 1).unwrap();
        }
        let ms = m.model_stats(id, slot).unwrap();
        assert_eq!(ms.acc_permille, 1000);
        assert!(!ms.drift_suspected);
        for _ in 0..8 {
            m.report_outcome(id, slot, 1, 0).unwrap();
        }
        let ms = m.model_stats(id, slot).unwrap();
        assert!(ms.drift_suspected);
        assert_eq!(ms.confusion[0][1], 8);
        // Hot-swap clears the prequential windows and the latch but
        // keeps cumulative counters.
        let svm = rkd_ml::svm::IntSvm {
            weights: vec![rkd_ml::fixed::Fix::ONE],
            bias: rkd_ml::fixed::Fix::ZERO,
        };
        m.update_model(id, slot, ModelSpec::Svm(svm)).unwrap();
        let ms = m.model_stats(id, slot).unwrap();
        assert!(!ms.drift_suspected);
        assert_eq!(ms.acc_permille, -1, "windows cleared");
        assert_eq!(ms.outcomes, 12, "cumulative counters survive swap");
        // Bad slot / program errors.
        assert!(m
            .report_outcome(id, crate::bytecode::ModelSlot(9), 0, 0)
            .is_err());
        assert!(m.model_stats(ProgId(999), slot).is_err());
        // obs_reset clears everything.
        m.obs_reset();
        let ms = m.model_stats(id, slot).unwrap();
        assert_eq!((ms.served, ms.outcomes, ms.hits), (0, 0, 0));
    }

    #[test]
    fn flight_recorder_captures_periodic_frames() {
        let (mut m, id, slot) = ml_machine(ExecMode::Interp);
        m.set_obs_config(ObsConfig {
            flight_interval: 4,
            flight_capacity: 2,
            ..ObsConfig::default()
        });
        for i in 0..10 {
            if i == 5 {
                m.report_outcome(id, slot, 1, 1).unwrap();
            }
            let mut ctxt = Ctxt::from_values(vec![9]);
            m.fire("h", &mut ctxt);
        }
        let fs = m.flight_snapshot();
        assert_eq!(fs.interval, 4);
        // Frames due at fires 4 and 8; capacity 2 keeps both.
        assert_eq!(fs.frames.len(), 2);
        assert_eq!(fs.dropped, 0);
        assert_eq!(fs.frames[0].fires, 4);
        assert_eq!(fs.frames[1].fires, 8);
        assert_eq!(fs.frames[1].counters.fires, 8);
        assert_eq!(fs.frames[1].hooks.len(), 1);
        assert_eq!(fs.frames[1].hooks[0].hook, "h");
        assert_eq!(fs.frames[1].models.len(), 1);
        assert_eq!(fs.frames[1].models[0].served, 8);
        assert_eq!(fs.frames[0].models[0].outcomes, 0);
        assert_eq!(fs.frames[1].models[0].outcomes, 1);
        // Reset clears the ring.
        m.obs_reset();
        assert!(m.flight_snapshot().frames.is_empty());
    }

    #[test]
    fn obs_snapshot_includes_model_stats() {
        let (mut m, id, _slot) = ml_machine(ExecMode::Jit);
        let mut ctxt = Ctxt::from_values(vec![9]);
        m.fire("h", &mut ctxt);
        let snap = m.obs_snapshot();
        assert_eq!(snap.models.len(), 1);
        assert_eq!(snap.models[0].prog, id.0);
        assert_eq!(snap.models[0].served, 1);
        // And it still round-trips through JSON with models attached.
        let json = crate::snapshot::to_json_string(&snap);
        let back: ObsSnapshot = crate::snapshot::from_json_str(&json).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn control_plane_map_access_and_privacy() {
        use crate::maps::MapKind;
        let mut b = ProgramBuilder::new("p");
        let m_priv = b.map("local", MapKind::Hash, 8);
        let m_shared = b.shared_map("agg", MapKind::Histogram, 4);
        b.action(Action::new(
            "noop",
            vec![
                Insn::LdImm {
                    dst: Reg(0),
                    imm: 0,
                },
                Insn::Exit,
            ],
        ));
        let vp = verify(b.build()).unwrap();
        let mut m = RmtMachine::new();
        let id = m.install(vp, ExecMode::Interp).unwrap();
        m.map_update(id, m_priv, 5, 123).unwrap();
        assert_eq!(m.map_lookup(id, m_priv, 5).unwrap(), Some(123));
        assert_eq!(m.map_lookup(id, m_priv, 6).unwrap(), None);
        // Shared map reads are noised and charge the ledger.
        m.map_update(id, m_shared, 0, 1000).unwrap();
        let before = m.privacy_remaining(id).unwrap();
        let v = m.map_lookup(id, m_shared, 0).unwrap().unwrap();
        assert!((v - 1000).abs() < 500, "noised {v}");
        assert!(m.privacy_remaining(id).unwrap() < before);
    }

    #[test]
    fn two_programs_share_a_hook() {
        let mut m = RmtMachine::new();
        m.install(doubling_program(), ExecMode::Interp).unwrap();
        m.install(doubling_program(), ExecMode::Jit).unwrap();
        let mut ctxt = ctxt_with_pid(7);
        let r = m.fire("test_hook", &mut ctxt);
        assert_eq!(r.verdicts.len(), 2);
        assert!(r.verdicts.iter().all(|(_, v)| *v == 42));
        assert_eq!(m.program_ids().len(), 2);
    }

    #[test]
    fn obs_counters_track_fires_hits_and_misses() {
        let mut m = RmtMachine::new();
        m.install(doubling_program(), ExecMode::Interp).unwrap();
        m.fire("test_hook", &mut ctxt_with_pid(7)); // Hit.
        m.fire("test_hook", &mut ctxt_with_pid(8)); // Miss -> default.
        m.fire("nobody_home", &mut ctxt_with_pid(7)); // Unarmed.
        let c = m.machine_counters();
        assert_eq!(c.fires, 2);
        assert_eq!(c.fires_unarmed, 1);
        assert_eq!(c.table_hits, 1);
        assert_eq!(c.table_misses, 1);
        assert_eq!(c.aborts, 0);
    }

    #[test]
    fn hook_stats_report_fires_and_latency() {
        let mut m = RmtMachine::with_obs_config(crate::obs::ObsConfig {
            sample_shift: 0, // Time every firing.
            ..crate::obs::ObsConfig::default()
        });
        m.install(doubling_program(), ExecMode::Interp).unwrap();
        for _ in 0..5 {
            m.fire("test_hook", &mut ctxt_with_pid(7));
        }
        let hs = m.hook_stats("test_hook").unwrap();
        assert_eq!(hs.fires, 5);
        // With sample_shift 0, every fire is recorded.
        assert_eq!(hs.hist.count(), 5);
        assert!(hs.hist.sum() > 0, "monotonic clock should advance");
        assert!(matches!(
            m.hook_stats("unknown"),
            Err(VmError::BadRequest(_))
        ));
    }

    #[test]
    fn timing_sampling_and_disable() {
        let mut m = RmtMachine::new();
        m.set_obs_config(crate::obs::ObsConfig {
            sample_shift: 2, // 1 in 4 firings timed.
            ..crate::obs::ObsConfig::default()
        });
        m.install(doubling_program(), ExecMode::Interp).unwrap();
        for _ in 0..8 {
            m.fire("test_hook", &mut ctxt_with_pid(7));
        }
        assert_eq!(m.hook_stats("test_hook").unwrap().hist.count(), 2);
        m.set_obs_config(crate::obs::ObsConfig {
            timing: false,
            ..crate::obs::ObsConfig::default()
        });
        m.fire("test_hook", &mut ctxt_with_pid(7));
        let hs = m.hook_stats("test_hook").unwrap();
        assert_eq!(hs.fires, 9, "fires counted even with timing off");
        assert_eq!(hs.hist.count(), 2, "no new samples with timing off");
    }

    /// Acceptance criterion: overflowing the trace ring must be counted
    /// in `dropped`, never silently lost.
    #[test]
    fn trace_ring_overflow_counts_dropped() {
        let mut m = RmtMachine::new();
        m.set_obs_config(crate::obs::ObsConfig {
            trace_fires: true,
            trace_capacity: 4,
            ..crate::obs::ObsConfig::default()
        });
        m.install(doubling_program(), ExecMode::Interp).unwrap();
        // 1 Install event + 10 Fire events into a 4-slot ring.
        for _ in 0..10 {
            m.fire("test_hook", &mut ctxt_with_pid(7));
        }
        let snap = m.trace_read(usize::MAX);
        assert_eq!(snap.events.len(), 4);
        assert_eq!(snap.dropped, 7, "11 events - 4 kept = 7 dropped");
        assert!(snap
            .events
            .iter()
            .all(|e| e.kind == crate::obs::TraceKind::Fire));
        assert_eq!(snap.events[3].info, 42, "Fire event carries verdict");
        // Drained: a second read is empty but keeps the dropped count.
        let again = m.trace_read(usize::MAX);
        assert!(again.events.is_empty());
        assert_eq!(again.dropped, 7);
        m.obs_reset();
        assert_eq!(m.trace_read(usize::MAX).dropped, 0);
    }

    /// Satellite 3: an over-long dynamic tail-call chain terminates the
    /// pipeline instead of falling through to the rest of the queue,
    /// and is counted as `tail_chain_overflows`, not a plain abort.
    #[test]
    fn tail_chain_overflow_terminates_pipeline() {
        use crate::verifier::{verify_with, VerifierConfig};
        // Tables t0..=t11; t_i's default action tail-calls t_{i+1},
        // t11's exits. Static depth 12 needs a relaxed verifier bound;
        // the dynamic MAX_TAIL_CHAIN (8) is what trips.
        let mut b = ProgramBuilder::new("chain");
        let pid = b.field_readonly("pid");
        let mut actions = Vec::new();
        for i in 0..12u16 {
            let code = if i < 11 {
                vec![
                    Insn::LdImm {
                        dst: Reg(0),
                        imm: i as i64,
                    },
                    Insn::TailCall {
                        table: TableId(i + 1),
                    },
                ]
            } else {
                vec![
                    Insn::LdImm {
                        dst: Reg(0),
                        imm: 11,
                    },
                    Insn::Exit,
                ]
            };
            actions.push(b.action(Action::new(&format!("a{i}"), code)));
        }
        for (i, &act) in actions.iter().enumerate() {
            b.table(
                &format!("t{i}"),
                "chain_hook",
                &[pid],
                MatchKind::Exact,
                Some(act),
                4,
            );
        }
        let vp = verify_with(
            b.build(),
            &VerifierConfig {
                max_tail_depth: 16,
                ..VerifierConfig::default()
            },
        )
        .unwrap();
        let mut m = RmtMachine::new();
        let id = m.install(vp, ExecMode::Interp).unwrap();
        let r = m.fire("chain_hook", &mut ctxt_with_pid(1));
        // t0 runs, then 8 successful redirects (t1..=t8); t8's call to
        // t9 is chain hop 9 > MAX_TAIL_CHAIN, terminating the pipeline.
        assert_eq!(r.verdicts.len(), 9, "t0..=t8 only: {:?}", r.verdicts);
        assert_eq!(r.verdicts.last().unwrap().1, 8);
        let stats = m.stats(id).unwrap();
        assert_eq!(stats.tail_calls, 8);
        assert_eq!(stats.tail_chain_overflows, 1);
        assert_eq!(stats.actions_aborted, 0, "overflow is not an abort");
        let c = m.machine_counters();
        assert_eq!(c.tail_calls, 8);
        assert_eq!(c.tail_chain_overflows, 1);
        let snap = m.trace_read(usize::MAX);
        assert!(snap
            .events
            .iter()
            .any(|e| e.kind == crate::obs::TraceKind::TailChainOverflow));
    }

    #[test]
    fn obs_reset_preserves_program_stats() {
        let mut m = RmtMachine::new();
        let id = m.install(doubling_program(), ExecMode::Interp).unwrap();
        m.fire("test_hook", &mut ctxt_with_pid(7));
        m.obs_reset();
        assert_eq!(m.machine_counters().fires, 0);
        assert_eq!(m.hook_stats("test_hook").unwrap().fires, 0);
        let stats = m.stats(id).unwrap();
        assert_eq!(stats.invocations, 1, "ProgStats survive an obs reset");
    }

    /// Program: one range table on "pid" matching 0..=100 (priority 1,
    /// doubles arg 21 -> 42); default action returns -1.
    fn range_program() -> VerifiedProgram {
        let mut b = ProgramBuilder::new("range");
        let pid = b.field_readonly("pid");
        let double = b.action(Action::new(
            "double",
            vec![
                Insn::Mov {
                    dst: Reg(0),
                    src: crate::bytecode::ARG_REG,
                },
                Insn::AluImm {
                    op: AluOp::Mul,
                    dst: Reg(0),
                    imm: 2,
                },
                Insn::Exit,
            ],
        ));
        let fallback = b.action(Action::new(
            "fallback",
            vec![
                Insn::LdImm {
                    dst: Reg(0),
                    imm: -1,
                },
                Insn::Exit,
            ],
        ));
        let t = b.table(
            "t",
            "range_hook",
            &[pid],
            MatchKind::Range,
            Some(fallback),
            16,
        );
        b.entry(
            t,
            Entry {
                key: MatchKey::Range(vec![(0, 100)]),
                priority: 1,
                action: double,
                arg: 21,
            },
        );
        verify(b.build()).unwrap()
    }

    #[test]
    fn decision_cache_replays_stable_flows() {
        let mut m = RmtMachine::new();
        m.install(range_program(), ExecMode::Interp).unwrap();
        for _ in 0..10 {
            let r = m.fire("range_hook", &mut ctxt_with_pid(50));
            assert_eq!(r.verdict(), Some(42));
        }
        let c = m.machine_counters();
        assert_eq!(c.decision_cache_misses, 1, "first firing records");
        assert_eq!(c.decision_cache_hits, 9, "repeat flows replay");
        assert_eq!(c.decision_cache_bypasses, 0);
        // A different flow key is its own cache line.
        assert_eq!(
            m.fire("range_hook", &mut ctxt_with_pid(200)).verdict(),
            Some(-1)
        );
        assert_eq!(
            m.fire("range_hook", &mut ctxt_with_pid(200)).verdict(),
            Some(-1)
        );
        let c = m.machine_counters();
        assert_eq!(c.decision_cache_misses, 2);
        assert_eq!(c.decision_cache_hits, 10);
        // Replayed firings keep TableStats faithful: 10 in-range hits,
        // 2 out-of-range misses.
        let ts = m.table_stats(ProgId(1), TableId(0)).unwrap();
        assert_eq!(
            ts,
            TableStats {
                hits: 10,
                misses: 2
            }
        );
    }

    #[test]
    fn decision_cache_invalidated_by_control_plane_mutations() {
        let mut m = RmtMachine::new();
        let id = m.install(range_program(), ExecMode::Interp).unwrap();
        assert_eq!(
            m.fire("range_hook", &mut ctxt_with_pid(50)).verdict(),
            Some(42)
        );
        assert_eq!(
            m.fire("range_hook", &mut ctxt_with_pid(50)).verdict(),
            Some(42)
        );
        // A higher-priority entry shadows the cached decision; the
        // generation bump must force a live re-resolve.
        m.insert_entry(
            id,
            TableId(0),
            Entry {
                key: MatchKey::Range(vec![(40, 60)]),
                priority: 9,
                action: ActionId(0),
                arg: 100,
            },
        )
        .unwrap();
        assert_eq!(
            m.fire("range_hook", &mut ctxt_with_pid(50)).verdict(),
            Some(200),
            "no stale decision after insert_entry"
        );
        assert!(m.machine_counters().decision_cache_invalidations >= 1);
        // Removing it must invalidate again.
        assert!(m
            .remove_entry(id, TableId(0), &MatchKey::Range(vec![(40, 60)]))
            .unwrap());
        assert_eq!(
            m.fire("range_hook", &mut ctxt_with_pid(50)).verdict(),
            Some(42),
            "no stale decision after remove_entry"
        );
        assert!(m.machine_counters().decision_cache_invalidations >= 2);
    }

    /// A hook whose only live tables are exact-match bypasses the
    /// cache (a lookup is already one hash probe), while an entry-less
    /// exact table stays eligible — its key-independent default
    /// decision replays without any key extraction.
    #[test]
    fn decision_cache_bypasses_exact_only_hooks() {
        let mut m = RmtMachine::new();
        let id = m.install(doubling_program(), ExecMode::Interp).unwrap();
        m.fire("test_hook", &mut ctxt_with_pid(7));
        m.fire("test_hook", &mut ctxt_with_pid(7));
        let c = m.machine_counters();
        assert_eq!(c.decision_cache_bypasses, 2);
        assert_eq!(c.decision_cache_hits + c.decision_cache_misses, 0);
        // Empty the exact table: the hook becomes cache-eligible and
        // repeat firings replay the default-action decision.
        assert!(m
            .remove_entry(id, TableId(0), &MatchKey::Exact(vec![7]))
            .unwrap());
        m.fire("test_hook", &mut ctxt_with_pid(7));
        m.fire("test_hook", &mut ctxt_with_pid(7));
        let c = m.machine_counters();
        assert_eq!(c.decision_cache_misses, 1);
        assert_eq!(c.decision_cache_hits, 1);
    }

    #[test]
    fn decision_cache_capacity_bounds_and_disable() {
        let mut m = RmtMachine::new();
        m.install(range_program(), ExecMode::Interp).unwrap();
        m.set_decision_cache_capacity(4);
        for pid in 0..8 {
            m.fire("range_hook", &mut ctxt_with_pid(pid));
        }
        let c = m.machine_counters();
        assert_eq!(c.decision_cache_misses, 8);
        assert_eq!(c.decision_cache_evictions, 4, "FIFO bound enforced");
        // Capacity 0 disables probing entirely.
        m.set_decision_cache_capacity(0);
        let before = m.machine_counters();
        m.fire("range_hook", &mut ctxt_with_pid(1));
        m.fire("range_hook", &mut ctxt_with_pid(1));
        let after = m.machine_counters();
        assert_eq!(after.decision_cache_hits, before.decision_cache_hits);
        assert_eq!(after.decision_cache_misses, before.decision_cache_misses);
        assert_eq!(
            after.decision_cache_bypasses,
            before.decision_cache_bypasses
        );
    }

    #[test]
    fn obs_snapshot_aggregates_hooks_and_programs() {
        let mut m = RmtMachine::new();
        let id = m.install(doubling_program(), ExecMode::Interp).unwrap();
        m.fire("test_hook", &mut ctxt_with_pid(7));
        let snap = m.obs_snapshot();
        assert_eq!(snap.counters.fires, 1);
        assert_eq!(snap.hooks.len(), 1);
        assert_eq!(snap.hooks[0].hook, "test_hook");
        assert_eq!(snap.hooks[0].fires, 1);
        assert_eq!(snap.programs.len(), 1);
        assert_eq!(snap.programs[0].prog, id.0);
        assert_eq!(snap.programs[0].hist.count(), 1);
        assert_eq!(snap.trace_dropped, 0);
    }

    /// A hook whose listeners never write consumed fields and whose
    /// non-empty tables key only consumed fields is key-stable: cached
    /// decisions replay without per-step key re-extraction, and
    /// distinct flows still resolve their own cache lines.
    #[test]
    fn key_stable_hook_replays_without_key_reextraction() {
        let mut m = RmtMachine::new();
        m.install(range_program(), ExecMode::Interp).unwrap();
        assert!(
            m.hook_index["range_hook"].key_stable,
            "no ctxt writes + keys within consumed => key-stable"
        );
        for _ in 0..3 {
            assert_eq!(
                m.fire("range_hook", &mut ctxt_with_pid(50)).verdict(),
                Some(42)
            );
            assert_eq!(
                m.fire("range_hook", &mut ctxt_with_pid(200)).verdict(),
                Some(-1)
            );
        }
        let c = m.machine_counters();
        assert_eq!(c.decision_cache_misses, 2, "one recording per flow");
        assert_eq!(c.decision_cache_hits, 4, "fast-path replays");
    }

    /// Cross-hook tail-call counterexample: the tail-call target keys
    /// a field the origin hook does not consume, so two flows with the
    /// same probe key can resolve different entries at the target. The
    /// hook must not be key-stable, and the per-step validation must
    /// catch the divergence.
    #[test]
    fn tail_call_to_unconsumed_key_defeats_key_stability() {
        let mut b = ProgramBuilder::new("xhook");
        let f0 = b.field_readonly("f0");
        let f1 = b.field_readonly("f1");
        let hit2 = b.action(Action::new(
            "hit2",
            vec![
                Insn::Mov {
                    dst: Reg(0),
                    src: crate::bytecode::ARG_REG,
                },
                Insn::Exit,
            ],
        ));
        let fallback = b.action(Action::new(
            "fallback",
            vec![
                Insn::LdImm {
                    dst: Reg(0),
                    imm: -1,
                },
                Insn::Exit,
            ],
        ));
        // t2 is declared first so the redirect action can name it.
        let t2 = b.table("t2", "h2", &[f1], MatchKind::Exact, Some(fallback), 16);
        let redirect = b.action(Action::new(
            "redirect",
            vec![
                Insn::LdImm {
                    dst: Reg(0),
                    imm: 0,
                },
                Insn::TailCall { table: t2 },
            ],
        ));
        let t1 = b.table("t1", "h1", &[f0], MatchKind::Range, Some(fallback), 16);
        b.entry(
            t1,
            Entry {
                key: MatchKey::Range(vec![(0, 100)]),
                priority: 1,
                action: redirect,
                arg: 0,
            },
        );
        b.entry(
            t2,
            Entry {
                key: MatchKey::Exact(vec![5]),
                priority: 0,
                action: hit2,
                arg: 111,
            },
        );
        let mut m = RmtMachine::new();
        m.install(verify(b.build()).unwrap(), ExecMode::Interp)
            .unwrap();
        assert!(
            !m.hook_index["h1"].key_stable,
            "t2 keys f1, which h1 does not consume"
        );
        // Same h1 probe key (f0 = 50), different f1: the second firing
        // must re-resolve at t2, not replay the cached entry.
        let mut a = Ctxt::from_values(vec![50, 5]);
        assert_eq!(m.fire("h1", &mut a).verdict(), Some(111));
        let mut b2 = Ctxt::from_values(vec![50, 6]);
        assert_eq!(
            m.fire("h1", &mut b2).verdict(),
            Some(-1),
            "divergent tail-call key must fall back, not replay"
        );
    }

    /// A listener that stores to a field some table at the hook keys
    /// on also defeats key stability: the probe key cannot pin a field
    /// the pipeline itself rewrites.
    #[test]
    fn consumed_field_write_defeats_key_stability() {
        let mut b = ProgramBuilder::new("selfwrite");
        let s = b.field_scratch("s");
        let act = b.action(Action::new(
            "bump",
            vec![
                Insn::LdImm {
                    dst: Reg(0),
                    imm: 1,
                },
                Insn::StCtxt {
                    field: s,
                    src: Reg(0),
                },
                Insn::Exit,
            ],
        ));
        let t = b.table("t", "wh", &[s], MatchKind::Range, Some(act), 16);
        b.entry(
            t,
            Entry {
                key: MatchKey::Range(vec![(0, 100)]),
                priority: 1,
                action: act,
                arg: 0,
            },
        );
        let mut m = RmtMachine::new();
        m.install(verify(b.build()).unwrap(), ExecMode::Interp)
            .unwrap();
        assert!(!m.hook_index["wh"].key_stable);
    }

    /// Switching OptLevel recompiles through the optimize → re-verify
    /// → compile path and never changes verdicts: O0 is the oracle.
    #[test]
    fn set_opt_level_is_behavior_preserving() {
        use crate::opt::OptLevel;
        let mut m = RmtMachine::new();
        let id = m.install(doubling_program(), ExecMode::Jit).unwrap();
        assert_eq!(m.opt_level(id).unwrap(), OptLevel::O2, "default on");
        let v_opt = m.fire("test_hook", &mut ctxt_with_pid(7)).verdict();
        for level in [OptLevel::O0, OptLevel::O1, OptLevel::O2] {
            m.set_opt_level(id, level).unwrap();
            assert_eq!(m.opt_level(id).unwrap(), level);
            assert_eq!(
                m.fire("test_hook", &mut ctxt_with_pid(7)).verdict(),
                v_opt,
                "level {level:?} diverged from the oracle"
            );
        }
        assert!(matches!(
            m.set_opt_level(ProgId(999), OptLevel::O0),
            Err(VmError::NoSuchProgram(_))
        ));
    }
}

rkd_testkit::impl_json_newtype!(ProgId(u32));

rkd_testkit::impl_json_unit_enum!(ExecMode { Interp, Jit });

rkd_testkit::impl_json_struct!(ProgStats {
    invocations,
    actions_run,
    insns_executed,
    effects_emitted,
    effects_rate_limited,
    actions_aborted,
    tail_calls,
    tail_chain_overflows,
    guard_trips
});

rkd_testkit::impl_json_struct!(TableState { entries, stats });

rkd_testkit::impl_json_struct!(ProgramState {
    id,
    prog,
    mode,
    tables,
    maps,
    rng_state,
    ledger_spent_milli_eps,
    bucket,
    stats,
    hist,
    model_stats,
    opt_stats
});

rkd_testkit::impl_json_struct!(HookState { hook, fires, hist });

rkd_testkit::impl_json_struct!(MachineSnapshot {
    tick,
    next_id,
    table_generation,
    decision_cache_cap,
    programs,
    hooks,
    obs
});
