//! Std-only metric exporters for [`ObsSnapshot`].
//!
//! Two render targets, byte-for-byte deterministic for a given
//! snapshot:
//!
//! - [`to_prometheus`] — Prometheus text exposition format (version
//!   0.0.4): `# HELP`/`# TYPE` headers, one sample per line, log2
//!   histograms rendered as cumulative `le`-labelled bucket series with
//!   `_sum`/`_count`. Scrapeable by any Prometheus-compatible
//!   collector.
//! - [`to_json`] — the same snapshot through the hermetic
//!   `rkd-testkit` JSON codec (identical to
//!   [`crate::snapshot::to_json_string`]), for offline analysis.
//!
//! Both render the *same* [`ObsSnapshot`], so every counter value in
//! the Prometheus text can be cross-checked against the JSON document
//! (and is, in `tests/obs_export.rs`).
//!
//! [`serve_once`] is an optional blocking one-shot HTTP responder over
//! `std::net::TcpListener`: it accepts a single connection, answers
//! one `GET /metrics` (Prometheus text) or `GET /metrics.json` (JSON)
//! request, and returns. There is no server loop, thread pool, or
//! keep-alive — the caller decides when (and whether) to block, which
//! keeps the machine itself free of any network dependency. See
//! [`crate::machine::RmtMachine::serve_metrics_once`].
//!
//! [`serve_until`] is the persistent sibling: the same hardened
//! single-request parser in a loop, answering scrapes and read-only
//! `GET /ctrl/*` queries from a live [`MetricsSource`] until a stop
//! flag flips — one machine, one server, its whole life. Still
//! single-threaded, still std-only: the caller donates exactly one
//! thread, and a slow or broken client can delay the next accept but
//! never wedge the loop past the read timeout.

use std::io::{Read as _, Write as _};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

use super::{Log2Hist, MachineCounters, ObsSnapshot};

/// Escapes a Prometheus label value (backslash, quote, newline).
fn escape_label(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            _ => out.push(c),
        }
    }
    out
}

/// Appends a `# HELP` + `# TYPE` family header.
fn family(out: &mut String, name: &str, kind: &str, help: &str) {
    out.push_str("# HELP ");
    out.push_str(name);
    out.push(' ');
    out.push_str(help);
    out.push_str("\n# TYPE ");
    out.push_str(name);
    out.push(' ');
    out.push_str(kind);
    out.push('\n');
}

/// Renders a [`Log2Hist`] as a Prometheus histogram: cumulative
/// `le`-labelled buckets (one per occupied log2 bucket, upper bound =
/// the bucket ceiling), a `+Inf` bucket, `_sum`, and `_count`.
/// `labels` is the pre-rendered shared label set (no braces), empty
/// for an unlabelled family.
fn histogram(out: &mut String, name: &str, labels: &str, hist: &Log2Hist) {
    let mut cumulative = 0u64;
    for (i, &n) in hist.buckets().iter().enumerate() {
        if n == 0 {
            continue;
        }
        cumulative += n;
        let le = Log2Hist::bucket_ceil(i);
        if labels.is_empty() {
            out.push_str(&format!("{name}_bucket{{le=\"{le}\"}} {cumulative}\n"));
        } else {
            out.push_str(&format!(
                "{name}_bucket{{{labels},le=\"{le}\"}} {cumulative}\n"
            ));
        }
    }
    let (lb, rb) = if labels.is_empty() {
        (String::from("{"), String::from("}"))
    } else {
        (format!("{{{labels},"), String::from("}"))
    };
    out.push_str(&format!(
        "{name}_bucket{lb}le=\"+Inf\"{rb} {}\n",
        hist.count()
    ));
    let braced = if labels.is_empty() {
        String::new()
    } else {
        format!("{{{labels}}}")
    };
    out.push_str(&format!("{name}_sum{braced} {}\n", hist.sum()));
    out.push_str(&format!("{name}_count{braced} {}\n", hist.count()));
}

/// The machine-counter fields as `(name, value)` pairs, in declaration
/// order. Shared by the Prometheus renderer and the export tests so a
/// new counter cannot silently miss the exposition.
pub fn counter_samples(c: &MachineCounters) -> Vec<(&'static str, u64)> {
    vec![
        ("fires", c.fires),
        ("fires_unarmed", c.fires_unarmed),
        ("table_hits", c.table_hits),
        ("table_misses", c.table_misses),
        ("aborts", c.aborts),
        ("guard_trips", c.guard_trips),
        ("rate_limit_drops", c.rate_limit_drops),
        ("tail_calls", c.tail_calls),
        ("tail_chain_overflows", c.tail_chain_overflows),
        ("decision_cache_hits", c.decision_cache_hits),
        ("decision_cache_misses", c.decision_cache_misses),
        (
            "decision_cache_invalidations",
            c.decision_cache_invalidations,
        ),
        ("decision_cache_evictions", c.decision_cache_evictions),
        ("decision_cache_bypasses", c.decision_cache_bypasses),
        ("opt_fixpoint_cap_hits", c.opt_fixpoint_cap_hits),
    ]
}

/// Renders the snapshot as Prometheus text exposition format.
///
/// Families emitted (all prefixed `rkd_`):
///
/// - `rkd_tick` — machine tick at snapshot time (gauge)
/// - `rkd_machine_events_total{event=...}` — every
///   [`MachineCounters`] field (counter)
/// - `rkd_trace_dropped_total` / `rkd_trace_pending`
/// - `rkd_hook_fires_total{hook=...}` and the
///   `rkd_hook_latency_ns{hook=...}` histogram
/// - `rkd_prog_latency_ns{prog=...}` histogram
/// - per-model: `rkd_model_predictions_total`,
///   `rkd_model_class_total{class=...}`, `rkd_model_outcomes_total`,
///   `rkd_model_outcome_hits_total`,
///   `rkd_model_confusion_total{actual=...,predicted=...}` (non-zero
///   cells only), the `rkd_model_inference_ns` histogram,
///   `rkd_model_window_accuracy_permille` (gauge, -1 before any
///   outcome), and `rkd_model_drift_suspected` (gauge, 0/1) — all
///   labelled `{prog=...,slot=...,model=...}`.
pub fn to_prometheus(snap: &ObsSnapshot) -> String {
    let mut out = String::new();

    family(
        &mut out,
        "rkd_tick",
        "gauge",
        "Machine tick at snapshot time.",
    );
    out.push_str(&format!("rkd_tick {}\n", snap.tick));

    family(
        &mut out,
        "rkd_machine_events_total",
        "counter",
        "Machine-wide datapath event counters.",
    );
    for (name, value) in counter_samples(&snap.counters) {
        out.push_str(&format!(
            "rkd_machine_events_total{{event=\"{name}\"}} {value}\n"
        ));
    }

    family(
        &mut out,
        "rkd_trace_dropped_total",
        "counter",
        "Trace events overwritten before being read.",
    );
    out.push_str(&format!("rkd_trace_dropped_total {}\n", snap.trace_dropped));
    family(
        &mut out,
        "rkd_trace_pending",
        "gauge",
        "Trace events buffered and unread.",
    );
    out.push_str(&format!("rkd_trace_pending {}\n", snap.trace_pending));

    family(
        &mut out,
        "rkd_hook_fires_total",
        "counter",
        "Armed firings per hook.",
    );
    for h in &snap.hooks {
        out.push_str(&format!(
            "rkd_hook_fires_total{{hook=\"{}\"}} {}\n",
            escape_label(&h.hook),
            h.fires
        ));
    }
    family(
        &mut out,
        "rkd_hook_latency_ns",
        "histogram",
        "Whole-fire latency per hook (sampled, nanoseconds).",
    );
    for h in &snap.hooks {
        let labels = format!("hook=\"{}\"", escape_label(&h.hook));
        histogram(&mut out, "rkd_hook_latency_ns", &labels, &h.hist);
    }

    family(
        &mut out,
        "rkd_prog_latency_ns",
        "histogram",
        "Per-pipeline-run latency per program (sampled, nanoseconds).",
    );
    for p in &snap.programs {
        let labels = format!("prog=\"{}\"", p.prog);
        histogram(&mut out, "rkd_prog_latency_ns", &labels, &p.hist);
    }

    family(
        &mut out,
        "rkd_model_predictions_total",
        "counter",
        "Predictions served by the datapath per model slot.",
    );
    for m in &snap.models {
        out.push_str(&format!(
            "rkd_model_predictions_total{{{}}} {}\n",
            model_labels(m),
            m.served
        ));
    }
    family(
        &mut out,
        "rkd_model_class_total",
        "counter",
        "Served predictions per class bin (last bin = overflow).",
    );
    for m in &snap.models {
        for (class, &n) in m.class_counts.iter().enumerate() {
            if n != 0 {
                out.push_str(&format!(
                    "rkd_model_class_total{{{},class=\"{class}\"}} {n}\n",
                    model_labels(m)
                ));
            }
        }
    }
    family(
        &mut out,
        "rkd_model_outcomes_total",
        "counter",
        "Ground-truth outcomes reported per model slot.",
    );
    for m in &snap.models {
        out.push_str(&format!(
            "rkd_model_outcomes_total{{{}}} {}\n",
            model_labels(m),
            m.outcomes
        ));
    }
    family(
        &mut out,
        "rkd_model_outcome_hits_total",
        "counter",
        "Outcomes where the prediction was correct.",
    );
    for m in &snap.models {
        out.push_str(&format!(
            "rkd_model_outcome_hits_total{{{}}} {}\n",
            model_labels(m),
            m.hits
        ));
    }
    family(
        &mut out,
        "rkd_model_confusion_total",
        "counter",
        "Confusion matrix cells (actual x predicted class bins, non-zero only).",
    );
    for m in &snap.models {
        for (actual, row) in m.confusion.iter().enumerate() {
            for (predicted, &n) in row.iter().enumerate() {
                if n != 0 {
                    out.push_str(&format!(
                        "rkd_model_confusion_total{{{},actual=\"{actual}\",predicted=\"{predicted}\"}} {n}\n",
                        model_labels(m)
                    ));
                }
            }
        }
    }
    family(
        &mut out,
        "rkd_model_inference_ns",
        "histogram",
        "Sampled model inference latency (nanoseconds).",
    );
    for m in &snap.models {
        let labels = model_labels(m);
        histogram(&mut out, "rkd_model_inference_ns", &labels, &m.latency);
    }
    family(
        &mut out,
        "rkd_model_window_accuracy_permille",
        "gauge",
        "Rolling prequential accuracy in permille (-1 before any outcome).",
    );
    for m in &snap.models {
        out.push_str(&format!(
            "rkd_model_window_accuracy_permille{{{}}} {}\n",
            model_labels(m),
            m.acc_permille
        ));
    }
    family(
        &mut out,
        "rkd_model_drift_suspected",
        "gauge",
        "1 when windowed accuracy has crossed below the drift threshold.",
    );
    for m in &snap.models {
        out.push_str(&format!(
            "rkd_model_drift_suspected{{{}}} {}\n",
            model_labels(m),
            u64::from(m.drift_suspected)
        ));
    }
    if !snap.ingress.is_empty() {
        family(
            &mut out,
            "rkd_ingress_depth",
            "gauge",
            "Messages queued in the shard's ingress ring at snapshot time.",
        );
        for i in &snap.ingress {
            out.push_str(&format!(
                "rkd_ingress_depth{{shard=\"{}\"}} {}\n",
                i.shard, i.depth
            ));
        }
        family(
            &mut out,
            "rkd_ingress_enqueued_total",
            "counter",
            "Messages ever pushed into the shard's ingress ring.",
        );
        for i in &snap.ingress {
            out.push_str(&format!(
                "rkd_ingress_enqueued_total{{shard=\"{}\"}} {}\n",
                i.shard, i.enqueued
            ));
        }
        family(
            &mut out,
            "rkd_ingress_full_stalls_total",
            "counter",
            "Times the driver found the shard's ingress ring full.",
        );
        for i in &snap.ingress {
            out.push_str(&format!(
                "rkd_ingress_full_stalls_total{{shard=\"{}\"}} {}\n",
                i.shard, i.full_stalls
            ));
        }
        family(
            &mut out,
            "rkd_ingress_parks_total",
            "counter",
            "Times the shard worker parked waiting for ingress.",
        );
        for i in &snap.ingress {
            out.push_str(&format!(
                "rkd_ingress_parks_total{{shard=\"{}\"}} {}\n",
                i.shard, i.parks
            ));
        }
    }
    if snap.ingress_should_rebalance >= 0 {
        family(
            &mut out,
            "rkd_shard_should_rebalance",
            "gauge",
            "1 when the skew balancer would rotate the partition seed.",
        );
        out.push_str(&format!(
            "rkd_shard_should_rebalance {}\n",
            snap.ingress_should_rebalance
        ));
    }

    out
}

fn model_labels(m: &super::ModelStatsSnapshot) -> String {
    format!(
        "prog=\"{}\",slot=\"{}\",model=\"{}\"",
        m.prog,
        m.slot,
        escape_label(&m.name)
    )
}

/// Renders the snapshot as compact JSON through the hermetic testkit
/// codec — the same document [`crate::snapshot::to_json_string`]
/// produces, so it parses back with
/// [`crate::snapshot::from_json_str`].
pub fn to_json(snap: &ObsSnapshot) -> String {
    rkd_testkit::json::to_string(snap)
}

/// Tunables for [`serve_once_with`]. `Default` gives the historical
/// [`serve_once`] behaviour: 5-second read timeout, 16 KiB head cap.
#[derive(Clone, Copy, Debug)]
pub struct ServeOptions {
    /// How long a blocking read may wait for request bytes before the
    /// client is answered with `408 Request Timeout` and dropped.
    pub read_timeout: Duration,
    /// Maximum bytes of request head accepted before the client is
    /// answered with `431 Request Header Fields Too Large`.
    pub max_head_bytes: usize,
}

impl Default for ServeOptions {
    fn default() -> ServeOptions {
        ServeOptions {
            read_timeout: Duration::from_secs(5),
            max_head_bytes: 16 * 1024,
        }
    }
}

/// Serves exactly one HTTP request from `listener` with the default
/// [`ServeOptions`], then returns. See [`serve_once_with`].
pub fn serve_once(listener: &TcpListener, snap: &ObsSnapshot) -> std::io::Result<String> {
    serve_once_with(listener, snap, ServeOptions::default())
}

/// Serves exactly one HTTP request from `listener`, then returns.
///
/// Routes:
///
/// - `GET /metrics` → `200`, `text/plain; version=0.0.4`, the
///   [`to_prometheus`] rendering
/// - `GET /metrics.json` → `200`, `application/json`, the [`to_json`]
///   rendering
/// - `GET` anything else → `404`
/// - non-`GET` method → `405` (with `Allow: GET`)
/// - unparseable request line → `400`
/// - client stalls past `opts.read_timeout` → `408`, connection
///   dropped
/// - request head exceeds `opts.max_head_bytes` → `431`
///
/// Blocking by design: `accept` waits for a client, every read is
/// bounded by `opts.read_timeout` so a slow-loris client cannot wedge
/// the caller, and the connection is closed after the response
/// (`Connection: close`). Returns the request path served (for error
/// responses, a `"!"`-prefixed status tag such as `"!408"` so callers
/// can distinguish scrapes from junk).
pub fn serve_once_with(
    listener: &TcpListener,
    snap: &ObsSnapshot,
    opts: ServeOptions,
) -> std::io::Result<String> {
    let (mut stream, _peer) = listener.accept()?;
    handle_conn(
        &mut stream,
        &mut |path| match path {
            "/metrics" => Some((PROMETHEUS_CONTENT_TYPE, to_prometheus(snap))),
            "/metrics.json" => Some(("application/json", to_json(snap))),
            _ => None,
        },
        opts,
    )
}

/// Content type of the Prometheus text exposition.
const PROMETHEUS_CONTENT_TYPE: &str = "text/plain; version=0.0.4; charset=utf-8";

/// What a persistent server ([`serve_until`]) answers from: a live
/// source of observability snapshots plus read-only control-plane
/// queries. Methods take `&mut self` so implementers may refresh
/// internal state per request; the provided implementations
/// ([`RmtMachine`](crate::machine::RmtMachine) and
/// [`ShardedMachine`](crate::shard::ShardedMachine)) only read.
pub trait MetricsSource {
    /// Snapshot served at `/metrics` and `/metrics.json`.
    fn obs(&mut self) -> ObsSnapshot;

    /// JSON body for a read-only `GET /ctrl/*` query, or `None` for
    /// 404. The provided implementations answer `/ctrl/counters`
    /// (machine-wide counters), `/ctrl/models` (per-model telemetry),
    /// `/ctrl/stages` (the aggregated span stage profile), and —
    /// sharded only — `/ctrl/shards` (per-shard convergence).
    fn ctrl_query(&mut self, path: &str) -> Option<String>;

    /// Chrome `trace_event` JSON for `GET /trace`, draining the span
    /// rings (see [`crate::obs::span::chrome_trace_json`]). `None` —
    /// the default — answers 404 for sources without span tracing.
    fn trace_json(&mut self) -> Option<String> {
        None
    }
}

/// Serves requests from `listener` until `stop` becomes `true`,
/// returning how many connections were answered (error responses
/// included).
///
/// Routes: everything [`serve_once_with`] answers, rendered fresh from
/// `source` per request, plus read-only `GET /ctrl/*` queries
/// (JSON; see [`MetricsSource::ctrl_query`]). Each request goes
/// through the same hardened parser as the one-shot server — same
/// timeouts, head cap, and error statuses — and a client that fails
/// mid-request is dropped without taking the loop down.
///
/// Shutdown is graceful: the listener polls in short non-blocking
/// waits, so the loop notices `stop` within a few milliseconds even
/// when idle, finishes any request already accepted, restores the
/// listener to blocking mode, and returns.
pub fn serve_until<S: MetricsSource + ?Sized>(
    listener: &TcpListener,
    source: &mut S,
    stop: &AtomicBool,
    opts: ServeOptions,
) -> std::io::Result<u64> {
    listener.set_nonblocking(true)?;
    let mut served = 0u64;
    let result = loop {
        if stop.load(Ordering::Acquire) {
            break Ok(served);
        }
        match listener.accept() {
            Ok((mut stream, _peer)) => {
                // The listener is non-blocking; the accepted stream
                // must not be — reads are bounded by the timeout.
                if stream.set_nonblocking(false).is_err() {
                    continue;
                }
                let r = handle_conn(
                    &mut stream,
                    &mut |path| match path {
                        "/metrics" => Some((PROMETHEUS_CONTENT_TYPE, to_prometheus(&source.obs()))),
                        "/metrics.json" => Some(("application/json", to_json(&source.obs()))),
                        "/trace" => source.trace_json().map(|body| ("application/json", body)),
                        p if p.starts_with("/ctrl/") => {
                            source.ctrl_query(p).map(|body| ("application/json", body))
                        }
                        _ => None,
                    },
                    opts,
                );
                // A client that vanished mid-response is its problem,
                // not the server's.
                if r.is_ok() {
                    served += 1;
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(e) => break Err(e),
        }
    };
    let _ = listener.set_nonblocking(false);
    result
}

/// Reads one request head from `stream`, routes it, writes one
/// response, and returns the tag ([`serve_once_with`] semantics).
/// `route` maps a GET path to `(content_type, body)`; `None` is 404.
fn handle_conn(
    stream: &mut TcpStream,
    route: &mut dyn FnMut(&str) -> Option<(&'static str, String)>,
    opts: ServeOptions,
) -> std::io::Result<String> {
    stream.set_read_timeout(Some(opts.read_timeout))?;

    // Read until the end of the request head. One request per
    // connection; the body (if any) is ignored.
    let mut buf = Vec::new();
    let mut chunk = [0u8; 1024];
    let mut overflow = false;
    let mut timed_out = false;
    loop {
        let n = match stream.read(&mut chunk) {
            Ok(n) => n,
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                timed_out = true;
                break;
            }
            Err(e) => return Err(e),
        };
        if n == 0 {
            break;
        }
        buf.extend_from_slice(&chunk[..n]);
        // The `\r\n\r\n` terminator can only appear where this chunk
        // landed (or straddling its boundary by up to 3 bytes), so
        // scan just that tail window — rescanning the whole head per
        // chunk is O(n²) against a drip-feeding client.
        let start = buf.len().saturating_sub(n + 3);
        if buf[start..].windows(4).any(|w| w == b"\r\n\r\n") {
            break;
        }
        if buf.len() > opts.max_head_bytes {
            overflow = true;
            break;
        }
    }

    // Parse the request line: METHOD SP PATH SP VERSION.
    let head = String::from_utf8_lossy(&buf);
    let request_line = head.lines().next().unwrap_or("");
    let mut words = request_line.split_whitespace();
    let method = words.next().unwrap_or("");
    let path = words.next();

    let (tag, status, content_type, extra_header, body) = if timed_out {
        (
            String::from("!408"),
            "408 Request Timeout",
            "text/plain; charset=utf-8",
            "",
            String::from("request head not received in time\n"),
        )
    } else if overflow {
        (
            String::from("!431"),
            "431 Request Header Fields Too Large",
            "text/plain; charset=utf-8",
            "",
            String::from("request head too large\n"),
        )
    } else if method.is_empty() || path.is_none() {
        (
            String::from("!400"),
            "400 Bad Request",
            "text/plain; charset=utf-8",
            "",
            String::from("malformed request line\n"),
        )
    } else if method != "GET" {
        (
            String::from("!405"),
            "405 Method Not Allowed",
            "text/plain; charset=utf-8",
            "Allow: GET\r\n",
            String::from("only GET is supported\n"),
        )
    } else {
        let path = path.unwrap_or("/").to_string();
        match route(&path) {
            Some((ct, body)) => (path, "200 OK", ct, "", body),
            None => (
                path,
                "404 Not Found",
                "text/plain; charset=utf-8",
                "",
                String::from("not found: try /metrics or /metrics.json\n"),
            ),
        }
    };
    let response = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\n{extra_header}Connection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(response.as_bytes())?;
    stream.flush()?;
    Ok(tag)
}

#[cfg(test)]
mod tests {
    use super::super::{HookStats, ModelStats, ObsConfig, ProgHist};
    use super::*;

    fn sample_snapshot() -> ObsSnapshot {
        let mut hist = Log2Hist::new();
        hist.record(100);
        hist.record(3000);
        let mut ms = ModelStats::new();
        let cfg = ObsConfig::default();
        ms.record_prediction(1, Some(250));
        ms.record_prediction(2, None);
        ms.record_outcome(1, 1, &cfg);
        ms.record_outcome(2, 1, &cfg);
        ObsSnapshot {
            tick: 42,
            counters: MachineCounters {
                fires: 7,
                table_hits: 5,
                table_misses: 2,
                decision_cache_hits: 3,
                ..MachineCounters::default()
            },
            hooks: vec![HookStats {
                hook: "net_rx".into(),
                fires: 7,
                hist: hist.clone(),
            }],
            programs: vec![ProgHist { prog: 1, hist }],
            models: vec![ms.snapshot(1, 0, "clf".into())],
            trace_dropped: 0,
            trace_pending: 2,
            ingress: vec![super::super::IngressShardStats {
                shard: 1,
                depth: 5,
                enqueued: 77,
                full_stalls: 3,
                parks: 9,
            }],
            ingress_should_rebalance: 1,
        }
    }

    #[test]
    fn prometheus_renders_all_counter_fields() {
        let snap = sample_snapshot();
        let text = to_prometheus(&snap);
        for (name, value) in counter_samples(&snap.counters) {
            let line = format!("rkd_machine_events_total{{event=\"{name}\"}} {value}");
            assert!(text.contains(&line), "missing {line:?}");
        }
        assert!(text.contains("rkd_tick 42"));
        assert!(text.contains("rkd_hook_fires_total{hook=\"net_rx\"} 7"));
        assert!(text.contains("rkd_model_predictions_total{prog=\"1\",slot=\"0\",model=\"clf\"} 2"));
        assert!(text
            .contains("rkd_model_confusion_total{prog=\"1\",slot=\"0\",model=\"clf\",actual=\"1\",predicted=\"1\"} 1"));
        assert!(text.contains(
            "rkd_model_window_accuracy_permille{prog=\"1\",slot=\"0\",model=\"clf\"} 500"
        ));
        // Exactly one TYPE header per family.
        let types = text
            .lines()
            .filter(|l| l.starts_with("# TYPE rkd_machine_events_total "))
            .count();
        assert_eq!(types, 1);
    }

    #[test]
    fn prometheus_histogram_buckets_are_cumulative() {
        let mut hist = Log2Hist::new();
        hist.record(3); // bucket ceil 3
        hist.record(3);
        hist.record(40); // bucket ceil 63
        let mut out = String::new();
        histogram(&mut out, "x_ns", "", &hist);
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(
            lines,
            [
                "x_ns_bucket{le=\"3\"} 2",
                "x_ns_bucket{le=\"63\"} 3",
                "x_ns_bucket{le=\"+Inf\"} 3",
                "x_ns_sum 46",
                "x_ns_count 3",
            ]
        );
    }

    #[test]
    fn label_escaping() {
        assert_eq!(escape_label("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }

    #[test]
    fn json_export_round_trips() {
        let snap = sample_snapshot();
        let json = to_json(&snap);
        let back: ObsSnapshot = rkd_testkit::json::from_str(&json).unwrap();
        assert_eq!(back, snap);
    }
}
