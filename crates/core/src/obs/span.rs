//! End-to-end span tracing and stage profiling.
//!
//! Every event that crosses the datapath passes through the same
//! sequence of layers — ingress ring, shard worker, fire pipeline,
//! table lookups, decision cache — and the cumulative counters in
//! [`crate::obs`] say *how often* each layer runs but not *where one
//! event's nanoseconds go*. This module adds the causal view: a
//! bounded, per-machine [`SpanCollector`] records sampled spans with
//! parent/child ids so a single traced event yields a connected tree
//! from ring enqueue down to individual table lookups.
//!
//! Design rules, in the spirit of the rest of the obs layer:
//!
//! - **Sampling is decided once, at ingress.** The sharded driver
//!   picks 1-in-2^shift batches (default 1-in-64) and propagates the
//!   decision with the message; replicas never make their own
//!   sampling calls, so a sampled event is traced through *all*
//!   layers or none. A standalone [`crate::machine::RmtMachine`] is
//!   its own ingress and samples per fire.
//! - **No allocation when unsampled.** The hot-path check is one
//!   branch on an `Option` plus, for self-sampling machines, a shift
//!   and mask; `sample_shift >= 64` disarms even the sequence
//!   counter.
//! - **Integer-only timestamps**, nanoseconds since one monotonic
//!   epoch captured at machine construction. The sharded driver
//!   aligns every replica (and its shadow) to a single epoch so
//!   cross-shard span ordering is meaningful.
//! - **Spans are memoization, not state.** Like decision caches, the
//!   collector is rebuilt empty on snapshot restore; traces describe
//!   a live run, not the machine's logical state, so
//!   [`crate::obs::ObsState`] excludes them.

use crate::obs::Log2Hist;
use rkd_testkit::json::{Json, ToJson};
use std::collections::VecDeque;
use std::time::Instant;

/// Default sampling shift: trace 1 in 2^6 = 64 ingress events.
pub const DEFAULT_SPAN_SAMPLE_SHIFT: u32 = 6;
/// Default bounded span-ring capacity per machine.
pub const DEFAULT_SPAN_CAPACITY: usize = 4096;
/// Sampling shifts at or above this disable tracing entirely.
pub const SPAN_SHIFT_OFF: u32 = 64;

/// The datapath stage a span measures. The discriminants index the
/// per-stage aggregation table, so they are dense and stable.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum Stage {
    /// Batch sat in the SPSC ingress ring: enqueue to worker pop.
    IngressWait = 0,
    /// Worker slept (spin/yield/park) waiting for ingress messages.
    IngressPark = 1,
    /// Worker processed one traced batch end to end.
    ShardRun = 2,
    /// Worker drained pending control-plane commands from the epoch
    /// log.
    CtrlDrain = 3,
    /// Coordinator rotated the partition seed (skew rebalance).
    RotatePartition = 4,
    /// One hook firing: cache probe through cache finish.
    Fire = 5,
    /// Decision-cache probe before running listener pipelines.
    CacheProbe = 6,
    /// One listener's table pipeline, entry to verdict.
    RunPipeline = 7,
    /// A single table `lookup()` inside a pipeline.
    TableLookup = 8,
    /// Decision-cache writeback after the listener loop.
    CacheFinish = 9,
    /// Journal record serialization + buffered write.
    JournalAppend = 10,
    /// Journal `sync_data` for one appended record.
    JournalFsync = 11,
    /// Journal checkpoint-and-truncate compaction.
    JournalCompact = 12,
}

/// Number of [`Stage`] variants; sizes the aggregation table.
pub const STAGE_COUNT: usize = 13;

impl Stage {
    /// Every stage, in discriminant order.
    pub const ALL: [Stage; STAGE_COUNT] = [
        Stage::IngressWait,
        Stage::IngressPark,
        Stage::ShardRun,
        Stage::CtrlDrain,
        Stage::RotatePartition,
        Stage::Fire,
        Stage::CacheProbe,
        Stage::RunPipeline,
        Stage::TableLookup,
        Stage::CacheFinish,
        Stage::JournalAppend,
        Stage::JournalFsync,
        Stage::JournalCompact,
    ];

    /// Stable display name, also used in Chrome trace output.
    pub fn name(self) -> &'static str {
        match self {
            Stage::IngressWait => "ingress_wait",
            Stage::IngressPark => "ingress_park",
            Stage::ShardRun => "shard_run",
            Stage::CtrlDrain => "ctrl_drain",
            Stage::RotatePartition => "rotate_partition",
            Stage::Fire => "fire",
            Stage::CacheProbe => "cache_probe",
            Stage::RunPipeline => "run_pipeline",
            Stage::TableLookup => "table_lookup",
            Stage::CacheFinish => "cache_finish",
            Stage::JournalAppend => "journal_append",
            Stage::JournalFsync => "journal_fsync",
            Stage::JournalCompact => "journal_compact",
        }
    }
}

/// One recorded span: a `[start_ns, end_ns]` interval attributed to a
/// [`Stage`], linked into a trace by `trace_id` and `parent_id`.
///
/// `parent_id == 0` marks a root span. Span ids are namespaced by the
/// recording machine (`(shard + 1) << 32 | counter`) so merged
/// cross-shard drains never collide. `trace_id == 0` marks background
/// work (parks, control-plane drains, journal writes) that is not
/// tied to any one flow.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Span {
    /// Flow-derived trace id (0 for background spans).
    pub trace_id: u64,
    /// This span's id, unique within a run.
    pub span_id: u64,
    /// Parent span id, 0 for roots.
    pub parent_id: u64,
    /// The stage measured.
    pub stage: Stage,
    /// Recording shard (replica index; shard count = shadow machine).
    pub shard: u64,
    /// Start, nanoseconds since the shared monotonic epoch.
    pub start_ns: u64,
    /// End, nanoseconds since the shared monotonic epoch.
    pub end_ns: u64,
}

/// A drained batch of spans plus the evict count since last reset.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SpanSnapshot {
    /// Drained spans, oldest first within each machine.
    pub spans: Vec<Span>,
    /// Spans evicted from bounded rings (or truncated by a capped
    /// read) since the last reset.
    pub dropped: u64,
}

/// Aggregated profile for one stage: latency histogram plus the
/// exemplar — the trace id of the slowest span seen, so a hot p99
/// bucket links to a concrete trace.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StageStats {
    /// The stage profiled.
    pub stage: Stage,
    /// Spans recorded.
    pub count: u64,
    /// Saturating total nanoseconds across spans.
    pub total_ns: u64,
    /// Approximate median span duration.
    pub p50_ns: u64,
    /// Approximate 99th-percentile span duration.
    pub p99_ns: u64,
    /// Exact slowest span duration.
    pub max_ns: u64,
    /// Trace id of the slowest span (0 if it was background work).
    pub exemplar_trace_id: u64,
    /// Duration of the exemplar span.
    pub exemplar_ns: u64,
    /// Full log2 latency histogram.
    pub hist: Log2Hist,
}

impl StageStats {
    fn from_agg(stage: Stage, agg: &StageAgg) -> StageStats {
        StageStats {
            stage,
            count: agg.hist.count(),
            total_ns: agg.hist.sum(),
            p50_ns: agg.hist.percentile(50),
            p99_ns: agg.hist.percentile(99),
            max_ns: agg.hist.max().unwrap_or(0),
            exemplar_trace_id: agg.exemplar_trace_id,
            exemplar_ns: agg.exemplar_ns,
            hist: agg.hist.clone(),
        }
    }

    fn merge(&mut self, other: &StageStats) {
        self.hist.merge(&other.hist);
        self.count = self.hist.count();
        self.total_ns = self.hist.sum();
        self.p50_ns = self.hist.percentile(50);
        self.p99_ns = self.hist.percentile(99);
        self.max_ns = self.hist.max().unwrap_or(0);
        if other.exemplar_ns > self.exemplar_ns {
            self.exemplar_ns = other.exemplar_ns;
            self.exemplar_trace_id = other.exemplar_trace_id;
        }
    }
}

/// Per-stage profile across every stage that recorded at least one
/// span, in [`Stage`] discriminant order. Merges across shards like
/// the rest of the telemetry surface.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct StageProfile {
    /// Stages with at least one recorded span.
    pub stages: Vec<StageStats>,
}

impl StageProfile {
    /// Merges another profile into this one, stage by stage.
    pub fn merge(&mut self, other: &StageProfile) {
        for theirs in &other.stages {
            match self.stages.iter_mut().find(|s| s.stage == theirs.stage) {
                Some(ours) => ours.merge(theirs),
                None => self.stages.push(theirs.clone()),
            }
        }
        self.stages.sort_by_key(|s| s.stage);
    }
}

/// Sampling decision propagated from ingress alongside a batch: the
/// flow-derived trace id and the enqueue timestamp (shared epoch).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BatchSpan {
    /// Trace id derived from the batch's first flow key.
    pub trace_id: u64,
    /// Enqueue time, nanoseconds since the shared epoch.
    pub enqueue_ns: u64,
}

/// An in-flight sampling decision handed to the next fire: which
/// trace it belongs to and which span to parent under.
#[derive(Clone, Copy, Debug)]
pub(crate) struct ActiveTrace {
    /// Trace id (0: derive from the flow key at fire time).
    pub trace_id: u64,
    /// Parent span id for the fire span (0 = root).
    pub parent_id: u64,
}

#[derive(Clone, Debug, Default)]
struct StageAgg {
    hist: Log2Hist,
    exemplar_trace_id: u64,
    exemplar_ns: u64,
}

/// Bounded span ring plus stage aggregation for one machine.
///
/// Cloned wholesale with [`crate::obs::Obs`] but never snapshotted:
/// span state is memoization over a live run.
#[derive(Clone, Debug)]
pub struct SpanCollector {
    /// Monotonic epoch all timestamps are relative to. The sharded
    /// driver overwrites this with one shared epoch at construction.
    epoch: Instant,
    /// Id namespace (replica index; the coordinator shadow uses the
    /// shard count).
    shard: u64,
    /// Sample 1-in-2^shift fires; >= [`SPAN_SHIFT_OFF`] disables.
    sample_shift: u32,
    /// Whether this machine makes its own sampling decisions. Shard
    /// replicas set this false: ingress decides for them.
    self_sample: bool,
    /// Fires seen by the self-sampler.
    seq: u64,
    /// Span id counter (low 32 bits of issued ids).
    next_id: u64,
    /// Bounded ring of recorded spans, oldest first.
    ring: VecDeque<Span>,
    /// Ring capacity; eviction increments `dropped`.
    capacity: usize,
    /// Spans evicted since last reset.
    dropped: u64,
    /// Per-stage aggregation, indexed by discriminant.
    stages: Vec<StageAgg>,
    /// Externally injected sampling decision for the next fire.
    active: Option<ActiveTrace>,
}

impl Default for SpanCollector {
    fn default() -> SpanCollector {
        SpanCollector::new()
    }
}

impl SpanCollector {
    /// An armed collector at the default 1-in-64 sampling rate.
    pub fn new() -> SpanCollector {
        SpanCollector {
            epoch: Instant::now(),
            shard: 0,
            sample_shift: DEFAULT_SPAN_SAMPLE_SHIFT,
            self_sample: true,
            seq: 0,
            next_id: 0,
            ring: VecDeque::new(),
            capacity: DEFAULT_SPAN_CAPACITY,
            dropped: 0,
            stages: vec![StageAgg::default(); STAGE_COUNT],
            active: None,
        }
    }

    /// Aligns this collector into a sharded deployment: one shared
    /// epoch, a unique id namespace, and (for replicas) ingress-owned
    /// sampling.
    pub(crate) fn set_identity(&mut self, shard: u64, epoch: Instant, self_sample: bool) {
        self.shard = shard;
        self.epoch = epoch;
        self.self_sample = self_sample;
    }

    /// Nanoseconds since the collector's epoch.
    #[inline]
    pub fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    /// Reconfigures sampling rate and ring capacity. Shrinking the
    /// ring evicts oldest spans (counted as dropped).
    pub fn configure(&mut self, sample_shift: u32, capacity: usize) {
        self.sample_shift = sample_shift;
        self.capacity = capacity;
        while self.ring.len() > self.capacity {
            self.ring.pop_front();
            self.dropped += 1;
        }
    }

    /// Current sampling shift.
    pub fn sample_shift(&self) -> u32 {
        self.sample_shift
    }

    /// The sampling decision for one fire. Consumes an injected
    /// ingress decision if present; otherwise, on self-sampling
    /// machines, samples 1-in-2^shift. The disarmed (`shift >= 64`)
    /// path skips even the sequence increment.
    #[inline]
    pub(crate) fn fire_ctx(&mut self) -> Option<ActiveTrace> {
        if let Some(active) = self.active.take() {
            return Some(active);
        }
        if !self.self_sample || self.sample_shift >= SPAN_SHIFT_OFF {
            return None;
        }
        let hit = self.seq & ((1u64 << self.sample_shift) - 1) == 0;
        self.seq = self.seq.wrapping_add(1);
        hit.then_some(ActiveTrace {
            trace_id: 0,
            parent_id: 0,
        })
    }

    /// Injects an ingress sampling decision for the next fire.
    pub(crate) fn set_active(&mut self, trace_id: u64, parent_id: u64) {
        self.active = Some(ActiveTrace {
            trace_id,
            parent_id,
        });
    }

    /// Clears any unconsumed injected decision (e.g. the batch's hook
    /// turned out to be unarmed) so it cannot leak into an unrelated
    /// later fire.
    pub(crate) fn take_active(&mut self) {
        self.active = None;
    }

    /// Issues a span id unique to this machine's namespace.
    #[inline]
    pub(crate) fn alloc_id(&mut self) -> u64 {
        self.next_id = self.next_id.wrapping_add(1);
        ((self.shard + 1) << 32) | (self.next_id & 0xFFFF_FFFF)
    }

    /// Records one completed span into the ring and its stage
    /// aggregate.
    pub(crate) fn record(
        &mut self,
        trace_id: u64,
        span_id: u64,
        parent_id: u64,
        stage: Stage,
        start_ns: u64,
        end_ns: u64,
    ) {
        let ns = end_ns.saturating_sub(start_ns);
        let agg = &mut self.stages[stage as usize];
        agg.hist.record(ns);
        if ns >= agg.exemplar_ns {
            agg.exemplar_ns = ns;
            agg.exemplar_trace_id = trace_id;
        }
        if self.capacity == 0 {
            self.dropped += 1;
            return;
        }
        while self.ring.len() >= self.capacity {
            self.ring.pop_front();
            self.dropped += 1;
        }
        self.ring.push_back(Span {
            trace_id,
            span_id,
            parent_id,
            stage,
            shard: self.shard,
            start_ns,
            end_ns,
        });
    }

    /// Drains up to `max` oldest spans plus the drop count, clearing
    /// the drop counter.
    pub fn drain(&mut self, max: usize) -> SpanSnapshot {
        let take = self.ring.len().min(max);
        let spans: Vec<Span> = self.ring.drain(..take).collect();
        let dropped = self.dropped;
        self.dropped = 0;
        SpanSnapshot { spans, dropped }
    }

    /// Spans currently buffered.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// Whether the ring is empty.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// Clears recorded spans, the stage aggregates, and the sampling
    /// sequence. Configuration and the id counter survive.
    pub fn reset(&mut self) {
        self.ring.clear();
        self.dropped = 0;
        self.seq = 0;
        self.active = None;
        for agg in &mut self.stages {
            *agg = StageAgg::default();
        }
    }

    /// The aggregated per-stage profile.
    pub fn profile(&self) -> StageProfile {
        let stages = Stage::ALL
            .iter()
            .filter_map(|&stage| {
                let agg = &self.stages[stage as usize];
                (agg.hist.count() > 0).then(|| StageStats::from_agg(stage, agg))
            })
            .collect();
        StageProfile { stages }
    }
}

/// Derives a trace id from flow-key words: a rotate-multiply fold
/// with a splitmix64 finalizer (the [`crate::machine`] flow-hash
/// idiom), pinned nonzero so 0 stays the background sentinel.
pub fn trace_id_from_key<I: IntoIterator<Item = u64>>(words: I) -> u64 {
    let mut h: u64 = 0x243F_6A88_85A3_08D3;
    for w in words {
        h = (h.rotate_left(29) ^ w).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    }
    h ^= h >> 30;
    h = h.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    h ^= h >> 27;
    h = h.wrapping_mul(0x94D0_49BB_1331_11EB);
    h ^= h >> 31;
    h.max(1)
}

/// Renders a span snapshot as Chrome `trace_event` JSON — the format
/// `about:tracing` and Perfetto load directly. Each span becomes one
/// complete (`"ph": "X"`) event; timestamps are microseconds with
/// fractional nanoseconds, `tid` is the recording shard.
pub fn chrome_trace_json(snap: &SpanSnapshot) -> String {
    let events: Vec<Json> = snap
        .spans
        .iter()
        .map(|s| {
            Json::Obj(vec![
                ("name".to_string(), Json::Str(s.stage.name().to_string())),
                ("cat".to_string(), Json::Str("rkd".to_string())),
                ("ph".to_string(), Json::Str("X".to_string())),
                ("ts".to_string(), Json::Float(s.start_ns as f64 / 1000.0)),
                (
                    "dur".to_string(),
                    Json::Float(s.end_ns.saturating_sub(s.start_ns) as f64 / 1000.0),
                ),
                ("pid".to_string(), Json::Int(1)),
                ("tid".to_string(), Json::UInt(s.shard)),
                (
                    "args".to_string(),
                    Json::Obj(vec![
                        ("trace_id".to_string(), Json::UInt(s.trace_id)),
                        ("span_id".to_string(), Json::UInt(s.span_id)),
                        ("parent_id".to_string(), Json::UInt(s.parent_id)),
                    ]),
                ),
            ])
        })
        .collect();
    Json::Obj(vec![
        ("traceEvents".to_string(), Json::Arr(events)),
        ("displayTimeUnit".to_string(), Json::Str("ns".to_string())),
        ("dropped".to_string(), snap.dropped.to_json()),
    ])
    .to_string_compact()
}

rkd_testkit::impl_json_unit_enum!(Stage {
    IngressWait,
    IngressPark,
    ShardRun,
    CtrlDrain,
    RotatePartition,
    Fire,
    CacheProbe,
    RunPipeline,
    TableLookup,
    CacheFinish,
    JournalAppend,
    JournalFsync,
    JournalCompact
});
rkd_testkit::impl_json_struct!(Span {
    trace_id,
    span_id,
    parent_id,
    stage,
    shard,
    start_ns,
    end_ns
});
rkd_testkit::impl_json_struct!(SpanSnapshot { spans, dropped });
rkd_testkit::impl_json_struct!(StageStats {
    stage,
    count,
    total_ns,
    p50_ns,
    p99_ns,
    max_ns,
    exemplar_trace_id,
    exemplar_ns,
    hist
});
rkd_testkit::impl_json_struct!(StageProfile { stages });

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn self_sampler_respects_shift() {
        let mut c = SpanCollector::new();
        c.configure(2, 64); // 1-in-4
        let hits: Vec<bool> = (0..8).map(|_| c.fire_ctx().is_some()).collect();
        assert_eq!(
            hits,
            vec![true, false, false, false, true, false, false, false]
        );
    }

    #[test]
    fn disarmed_shift_skips_sequence() {
        let mut c = SpanCollector::new();
        c.configure(SPAN_SHIFT_OFF, 64);
        for _ in 0..16 {
            assert!(c.fire_ctx().is_none());
        }
        assert_eq!(c.seq, 0, "disarmed path must not touch seq");
    }

    #[test]
    fn injected_decision_wins_and_is_consumed() {
        let mut c = SpanCollector::new();
        c.configure(SPAN_SHIFT_OFF, 64);
        c.set_active(42, 7);
        let active = c.fire_ctx().expect("injected decision consumed");
        assert_eq!((active.trace_id, active.parent_id), (42, 7));
        assert!(c.fire_ctx().is_none());
    }

    #[test]
    fn ring_bounds_and_drop_accounting() {
        let mut c = SpanCollector::new();
        c.configure(0, 2);
        for i in 0..5u64 {
            let id = c.alloc_id();
            c.record(1, id, 0, Stage::Fire, i, i + 1);
        }
        assert_eq!(c.len(), 2);
        let snap = c.drain(usize::MAX);
        assert_eq!(snap.spans.len(), 2);
        assert_eq!(snap.dropped, 3);
        assert_eq!(snap.spans[0].start_ns, 3, "oldest survivors first");
    }

    #[test]
    fn profile_tracks_exemplar_of_slowest_span() {
        let mut c = SpanCollector::new();
        c.configure(0, 64);
        let id = c.alloc_id();
        c.record(10, id, 0, Stage::TableLookup, 0, 5);
        let id = c.alloc_id();
        c.record(20, id, 0, Stage::TableLookup, 0, 50);
        let id = c.alloc_id();
        c.record(30, id, 0, Stage::TableLookup, 0, 7);
        let profile = c.profile();
        assert_eq!(profile.stages.len(), 1);
        let s = &profile.stages[0];
        assert_eq!(s.stage, Stage::TableLookup);
        assert_eq!(s.count, 3);
        assert_eq!(s.max_ns, 50);
        assert_eq!(s.exemplar_trace_id, 20);
        assert_eq!(s.exemplar_ns, 50);
    }

    #[test]
    fn profile_merge_keeps_slowest_exemplar() {
        let mut a = SpanCollector::new();
        a.configure(0, 64);
        let id = a.alloc_id();
        a.record(1, id, 0, Stage::Fire, 0, 10);
        let mut b = SpanCollector::new();
        b.configure(0, 64);
        let id = b.alloc_id();
        b.record(2, id, 0, Stage::Fire, 0, 90);
        let mut merged = a.profile();
        merged.merge(&b.profile());
        assert_eq!(merged.stages.len(), 1);
        assert_eq!(merged.stages[0].count, 2);
        assert_eq!(merged.stages[0].exemplar_trace_id, 2);
        assert_eq!(merged.stages[0].max_ns, 90);
    }

    #[test]
    fn span_ids_are_namespaced_by_shard() {
        let mut a = SpanCollector::new();
        let mut b = SpanCollector::new();
        b.set_identity(1, Instant::now(), false);
        assert_ne!(a.alloc_id(), b.alloc_id());
        assert_eq!(a.alloc_id() >> 32, 1);
        assert_eq!(b.alloc_id() >> 32, 2);
    }

    #[test]
    fn trace_id_never_zero_and_key_sensitive() {
        assert_ne!(trace_id_from_key([0u64]), 0);
        assert_ne!(trace_id_from_key([]), 0);
        assert_ne!(trace_id_from_key([1u64, 2]), trace_id_from_key([2u64, 1]));
    }

    #[test]
    fn chrome_trace_renders_parseable_json() {
        let mut c = SpanCollector::new();
        c.configure(0, 64);
        let id = c.alloc_id();
        c.record(9, id, 0, Stage::RunPipeline, 1_000, 4_500);
        let body = chrome_trace_json(&c.drain(usize::MAX));
        let parsed = Json::parse(&body).expect("valid JSON");
        let events = parsed.get("traceEvents").expect("traceEvents");
        match events {
            Json::Arr(items) => {
                assert_eq!(items.len(), 1);
                let ev = &items[0];
                assert_eq!(ev.get("ph"), Some(&Json::Str("X".to_string())));
                assert_eq!(ev.get("ts"), Some(&Json::Float(1.0)));
                assert_eq!(ev.get("dur"), Some(&Json::Float(3.5)));
            }
            other => panic!("traceEvents not an array: {other:?}"),
        }
    }

    #[test]
    fn snapshot_round_trips_through_json() {
        let mut c = SpanCollector::new();
        c.configure(0, 8);
        let id = c.alloc_id();
        c.record(3, id, 0, Stage::JournalFsync, 10, 30);
        let snap = c.drain(usize::MAX);
        let text = rkd_testkit::json::to_string(&snap);
        let back: SpanSnapshot = rkd_testkit::json::from_str(&text).expect("round trip");
        assert_eq!(back, snap);
    }
}
