//! Multi-core sharded datapath.
//!
//! The paper's datapath lives in the kernel, where hooks fire
//! concurrently on every CPU and per-CPU data structures are the
//! standard answer to contention. [`ShardedMachine`] reproduces that
//! architecture in userspace: N worker threads ("shards"), each owning
//! a full [`RmtMachine`] replica, fire hooks completely
//! contention-free — no lock, no atomic, no shared cache line on the
//! hot path. Everything cross-shard happens on the control plane:
//!
//! - **Epoch-published control plane** — every mutating
//!   [`CtrlRequest`] is appended to a sequenced command log and
//!   announced through one atomic publish counter. Shards notice the
//!   counter at *fire boundaries* (before each batch) and drain the
//!   log in order, so reconfiguration never stops the datapath and
//!   every shard converges to the same table/model generation. A
//!   never-firing *shadow replica* applies each mutation first,
//!   giving the caller a synchronous result (and [`ProgId`]
//!   assignment) that is deterministic across replicas.
//! - **Per-CPU maps** — a [`MapDef`](crate::maps::MapDef) with
//!   `per_cpu` set mirrors eBPF's `PERCPU_HASH`/`PERCPU_ARRAY`:
//!   datapath writes land in the firing shard's replica only;
//!   control-plane reads ([`CtrlRequest::MapLookup`]) sum the value
//!   per key across shards. Non-per-CPU maps are *shard-private*:
//!   reads route to shard 0 (documented, not linearizable across
//!   shards). Control-plane writes ([`CtrlRequest::MapUpdate`]) go
//!   through the log and therefore apply to every replica.
//! - **Merged telemetry** — [`ShardedMachine::obs_snapshot`] merges
//!   per-shard snapshots into one standard
//!   [`ObsSnapshot`](crate::obs::ObsSnapshot), so the Prometheus/JSON
//!   exporters (and [`ShardedMachine::serve_metrics_once`]) work on a
//!   sharded machine unchanged.
//!
//! ## What is and isn't linearizable
//!
//! Mutations are linearizable against each other (single append
//! point, single total order) but *asynchronous* with respect to the
//! datapath: a shard keeps firing under the old configuration until
//! its next fire boundary. [`ShardedMachine::sync`] is the barrier
//! that forces every shard to the published epoch. Per-shard apply
//! errors that depend on datapath state (e.g. a `MapUpdate` hitting a
//! hash map one shard filled) are absorbed and counted per shard
//! ([`ShardStatus::ctrl_apply_errors`]); errors determinable from
//! control state alone (verification, unknown ids, arity) are
//! reported synchronously by [`ShardedMachine::ctrl`] and never enter
//! the log.
//!
//! ## Reproducibility
//!
//! Shard `i` installs every program with RNG seed `base ^ i`, so DP
//! noise streams are deterministic per shard and shard 0 is
//! bit-identical to a single machine installed with `base`.

use crate::ctrl::{syscall_rmt_with, CtrlRequest, CtrlResponse};
use crate::ctxt::Ctxt;
use crate::error::VmError;
use crate::machine::{HookResult, ProgId, ProgStats, RmtMachine};
use crate::maps::MapId;
use crate::obs::span::{
    self, BatchSpan, SpanSnapshot, Stage, StageProfile, DEFAULT_SPAN_SAMPLE_SHIFT, SPAN_SHIFT_OFF,
};
use crate::obs::{
    FlightSnapshot, HookStats, IngressShardStats, MachineCounters, ObsConfig, ObsSnapshot,
};
use crate::spsc;
use crate::table::TableStats;
use crate::verifier::VerifierConfig;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

/// Ingress ring capacity per shard (messages, power of two). Sized so
/// a replay driver can keep a deep pipeline of batches in flight
/// before backpressure (a full ring spins the driver, it never
/// blocks a shard).
const INGRESS_RING_CAPACITY: usize = 1024;

/// Default skew-balancer policy: rebalance when the deepest ingress
/// ring holds more than `ratio_pct`% of the mean depth *and* at least
/// `min_depth` messages (see [`ShardedMachine::should_rebalance`]).
const DEFAULT_BALANCER_RATIO_PCT: u64 = 200;
const DEFAULT_BALANCER_MIN_DEPTH: u64 = 32;

/// The sequenced command log shards drain at fire boundaries.
struct CtrlLog {
    /// Number of commands published; shards compare against their
    /// applied count with one relaxed-cost atomic load per batch.
    published: AtomicU64,
    /// The commands themselves. Locked only to append (coordinator)
    /// and to clone a pending suffix (shard catching up) — never on
    /// the fire path itself.
    cmds: Mutex<Vec<CtrlRequest>>,
    /// Verifier configuration every replica re-verifies installs with.
    vcfg: VerifierConfig,
}

/// What a worker thread receives.
enum Msg {
    /// Fire a batch; reply with the mutated contexts and results.
    /// `span` carries the ingress sampling decision: when set, the
    /// worker traces this batch through every layer.
    Batch {
        hook: String,
        ctxts: Vec<Ctxt>,
        span: Option<BatchSpan>,
        reply: Sender<BatchOutput>,
    },
    /// Run an arbitrary closure against the shard's machine (the
    /// coordinator's read path).
    With(Box<dyn FnOnce(&mut RmtMachine) + Send>),
    /// Drain the log and report convergence state.
    Sync { reply: Sender<ShardStatus> },
    /// Exit the worker loop.
    Shutdown,
}

struct BatchOutput {
    ctxts: Vec<Ctxt>,
    results: Vec<HookResult>,
}

/// One shard's convergence report from [`ShardedMachine::sync`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ShardStatus {
    /// Shard index.
    pub shard: usize,
    /// Commands applied from the log (== published after a sync).
    pub applied: u64,
    /// Logged commands whose apply failed on this shard (absorbed;
    /// see the module docs on asynchronous control-plane semantics).
    pub ctrl_apply_errors: u64,
    /// The shard machine's table generation — equal across all shards
    /// (and to [`ShardedMachine::expected_generation`]) once synced.
    pub table_generation: u64,
}

struct ShardHandle {
    /// The ring's unique producer endpoint. Behind a mutex only so
    /// multiple coordinator threads can share `&ShardedMachine` —
    /// uncontended in the single-driver case, and never touched by
    /// the shard worker (which owns the consumer endpoint).
    tx: Mutex<spsc::Producer<Msg>>,
    /// Telemetry view of the ring (depth, stalls, parks) that does
    /// not need the producer lock.
    obs: spsc::Observer<Msg>,
    join: Option<JoinHandle<()>>,
}

/// An in-flight batch submitted with [`ShardedMachine::fire_batch_on`].
/// Dropping the ticket without waiting abandons the results (the shard
/// still executes the batch).
pub struct BatchTicket {
    rx: Receiver<BatchOutput>,
}

impl BatchTicket {
    /// Blocks until the shard has executed the batch, returning the
    /// mutated contexts and one [`HookResult`] per context.
    ///
    /// # Panics
    ///
    /// Panics if the shard worker died (a propagated shard panic).
    pub fn wait(self) -> (Vec<Ctxt>, Vec<HookResult>) {
        let out = self.rx.recv().expect("shard worker died");
        (out.ctxts, out.results)
    }
}

/// N datapath shards plus the epoch-published control plane. See the
/// module docs for the architecture.
pub struct ShardedMachine {
    shards: Vec<ShardHandle>,
    log: Arc<CtrlLog>,
    /// Current flow→shard partition seed, folded into
    /// [`ShardedMachine::shard_for_flow`]. Updated only through the
    /// published (and journaled) [`CtrlRequest::SetPartitionSeed`]
    /// command, so recovery restores the partition.
    partition: AtomicU64,
    /// Partition rotations applied (including any replayed during
    /// recovery).
    rebalances: AtomicU64,
    /// Skew-balancer trigger: deepest ring > `ratio_pct`% of mean.
    balancer_ratio_pct: AtomicU64,
    /// Absolute depth floor below which the balancer never triggers.
    balancer_min_depth: AtomicU64,
    /// Control-plane oracle: applies every mutation first (same code
    /// path as the shards), never fires, so its table generation and
    /// id assignment are what every shard converges to. Behind a
    /// mutex only to make the whole machine `Sync` — uncontended
    /// unless multiple control-plane threads race, and never touched
    /// by the fire path.
    shadow: Mutex<RmtMachine>,
    /// Optional durable journal: when attached, every published
    /// command is fsync'd to disk *before* the shadow applies it (the
    /// same write-ahead [`JournalRecord`](crate::journal::JournalRecord)
    /// format [`crate::journal::JournaledMachine`] uses), so
    /// [`ShardedMachine::recover`] can rebuild the control plane.
    journal: Option<Mutex<crate::journal::CtrlJournal>>,
    /// The one monotonic epoch every replica's span timestamps are
    /// relative to (captured at construction, shared with the shadow
    /// and the ingress side), so cross-shard span ordering is
    /// meaningful.
    epoch: Instant,
    /// Ingress events seen by the span sampler (batches count each
    /// context, so the rate is per *event*, not per batch).
    span_seq: AtomicU64,
    /// Current span sampling shift (mirrors the published
    /// [`CtrlRequest::SpanConfig`], consulted lock-free at ingress).
    span_shift: AtomicU64,
}

impl ShardedMachine {
    /// Spawns `shards` workers (at least 1) with default observability
    /// and the default verifier configuration.
    pub fn new(shards: usize) -> ShardedMachine {
        ShardedMachine::with_config(shards, ObsConfig::default(), VerifierConfig::default())
    }

    /// Spawns `shards` workers with explicit observability and
    /// verifier configurations (applied to every replica).
    pub fn with_config(shards: usize, obs: ObsConfig, vcfg: VerifierConfig) -> ShardedMachine {
        let n = shards.max(1);
        let log = Arc::new(CtrlLog {
            published: AtomicU64::new(0),
            cmds: Mutex::new(Vec::new()),
            vcfg,
        });
        let epoch = Instant::now();
        let mut handles = Vec::with_capacity(n);
        for shard in 0..n {
            let (tx, rx) = spsc::ring::<Msg>(INGRESS_RING_CAPACITY);
            let log = Arc::clone(&log);
            let mut machine = RmtMachine::with_obs_config(obs);
            // One shared epoch, a per-replica span-id namespace, and
            // ingress-owned sampling (replicas never self-sample:
            // the decision arrives with the batch).
            machine.align_span_identity(shard as u64, epoch, false);
            let ring_obs = tx.observer();
            let join = std::thread::Builder::new()
                .name(format!("rkd-shard-{shard}"))
                .spawn(move || worker(shard, machine, &log, rx))
                .expect("spawn shard worker");
            handles.push(ShardHandle {
                tx: Mutex::new(tx),
                obs: ring_obs,
                join: Some(join),
            });
        }
        let mut shadow = RmtMachine::with_obs_config(obs);
        // The shadow records control-plane spans (journal, rotate)
        // under the shard-count id namespace.
        shadow.align_span_identity(n as u64, epoch, false);
        ShardedMachine {
            shards: handles,
            log,
            partition: AtomicU64::new(0),
            rebalances: AtomicU64::new(0),
            balancer_ratio_pct: AtomicU64::new(DEFAULT_BALANCER_RATIO_PCT),
            balancer_min_depth: AtomicU64::new(DEFAULT_BALANCER_MIN_DEPTH),
            shadow: Mutex::new(shadow),
            journal: None,
            epoch,
            span_seq: AtomicU64::new(0),
            span_shift: AtomicU64::new(DEFAULT_SPAN_SAMPLE_SHIFT as u64),
        }
    }

    /// Spawns one shard per available CPU (clamped to
    /// [1, 32]) — the right default for a host whose core count is
    /// unknown, so a 1-CPU CI box gets one shard instead of a
    /// 4-thread configuration that loses to a single machine.
    pub fn auto() -> ShardedMachine {
        ShardedMachine::new(Self::auto_shards())
    }

    /// The shard count [`ShardedMachine::auto`] uses:
    /// `std::thread::available_parallelism()`, clamped to [1, 32].
    pub fn auto_shards() -> usize {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .clamp(1, 32)
    }

    /// Spawns a sharded machine whose control plane journals to
    /// `path` (the same write-ahead format as
    /// [`crate::journal::JournaledMachine`]): every published command
    /// is durable before any replica applies it.
    pub fn with_journal(
        shards: usize,
        obs: ObsConfig,
        vcfg: VerifierConfig,
        path: &std::path::Path,
    ) -> Result<ShardedMachine, crate::journal::JournalError> {
        let journal = crate::journal::CtrlJournal::open(path)?;
        let mut m = ShardedMachine::with_config(shards, obs, vcfg);
        m.journal = Some(Mutex::new(journal));
        Ok(m)
    }

    /// Recovers a sharded machine from a control-plane journal:
    /// republishes every journaled command through the normal epoch
    /// path, so the shadow and all shards converge to the pre-crash
    /// configuration (**shard-0 semantics** — per-shard datapath state
    /// such as per-CPU map contents is not persisted; it reaccumulates
    /// as traffic flows). The journal stays attached: new commands
    /// continue appending after the replayed suffix. Replay apply
    /// errors are absorbed exactly as live ones were.
    pub fn recover(
        shards: usize,
        obs: ObsConfig,
        vcfg: VerifierConfig,
        path: &std::path::Path,
    ) -> Result<ShardedMachine, crate::journal::JournalError> {
        let contents = crate::journal::read_journal(path)?;
        let mut m = ShardedMachine::with_config(shards, obs, vcfg);
        for rec in contents.records {
            let _ = m.publish(rec.req);
        }
        m.journal = Some(Mutex::new(crate::journal::CtrlJournal::open(path)?));
        Ok(m)
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Deterministic flow -> shard assignment (splitmix64 of the flow
    /// key XOR the current partition seed, modulo shard count). Any
    /// per-flow partition preserves per-flow outcomes; this one
    /// spreads flows evenly, and rotating the seed
    /// ([`ShardedMachine::rotate_partition`]) re-hashes every flow to
    /// break up a skew hotspot. With the initial seed (0) the mapping
    /// is identical to the pre-balancer one.
    pub fn shard_for_flow(&self, flow: u64) -> usize {
        let seed = self.partition.load(Ordering::Acquire);
        let mut x = (flow ^ seed).wrapping_add(0x9E37_79B9_7F4A_7C15);
        x ^= x >> 30;
        x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x ^= x >> 27;
        x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
        x ^= x >> 31;
        (x % self.shards.len() as u64) as usize
    }

    /// Submits a batch of contexts to one shard's datapath without
    /// blocking — this is what lets one driver thread keep every
    /// shard busy. The shard drains any pending control-plane
    /// commands first (the fire boundary), then runs
    /// [`RmtMachine::fire_batch`].
    pub fn fire_batch_on(&self, shard: usize, hook: &str, ctxts: Vec<Ctxt>) -> BatchTicket {
        let (reply, rx) = channel();
        let span = self.sample_ingress(&ctxts);
        self.send(
            shard,
            Msg::Batch {
                hook: hook.to_string(),
                ctxts,
                span,
                reply,
            },
        );
        BatchTicket { rx }
    }

    /// The once-at-ingress sampling decision: counts the batch's
    /// events against the 1-in-2^shift rate and, when the window
    /// covers a sampling point, stamps the batch with a trace id
    /// (derived from the first context's flow values) and the enqueue
    /// time. One relaxed `fetch_add` when armed, one load when not —
    /// never an allocation.
    fn sample_ingress(&self, ctxts: &[Ctxt]) -> Option<BatchSpan> {
        let shift = self.span_shift.load(Ordering::Relaxed);
        if shift >= SPAN_SHIFT_OFF as u64 || ctxts.is_empty() {
            return None;
        }
        let k = ctxts.len() as u64;
        let s = self.span_seq.fetch_add(k, Ordering::Relaxed);
        let mask = (1u64 << shift) - 1;
        // Sample iff [s, s + k) contains a multiple of 2^shift.
        let next = (s.wrapping_add(mask)) & !mask;
        if next.wrapping_sub(s) >= k {
            return None;
        }
        let trace_id = span::trace_id_from_key(ctxts[0].values().iter().map(|&v| v as u64));
        Some(BatchSpan {
            trace_id,
            enqueue_ns: self.epoch.elapsed().as_nanos() as u64,
        })
    }

    /// Pushes one message into a shard's ingress ring, spinning while
    /// the ring is full (backpressure never blocks the shard side).
    fn send(&self, shard: usize, msg: Msg) {
        let mut tx = self.shards[shard]
            .tx
            .lock()
            .expect("ingress producer poisoned");
        if tx.push_wait(msg).is_err() {
            panic!("shard worker died");
        }
    }

    /// Fires one context on one shard and waits for the result (the
    /// scalar convenience over [`ShardedMachine::fire_batch_on`]).
    pub fn fire_on(&self, shard: usize, hook: &str, ctxt: Ctxt) -> (Ctxt, HookResult) {
        let (mut ctxts, mut results) = self.fire_batch_on(shard, hook, vec![ctxt]).wait();
        (
            ctxts.pop().expect("batch of one"),
            results.pop().expect("batch of one"),
        )
    }

    /// Dispatches one control-plane request.
    ///
    /// Mutations apply to the shadow replica synchronously (reporting
    /// any deterministic error without publishing anything), then
    /// enter the command log for every shard to drain at its next
    /// fire boundary. Reads aggregate across shards — see
    /// [`CtrlRequest`] routing notes in the module docs.
    /// `ReportOutcome` is shard-targeted telemetry and routes to
    /// shard 0; use [`ShardedMachine::report_outcome_on`] to credit
    /// the shard that actually served the prediction.
    pub fn ctrl(&self, req: CtrlRequest) -> Result<CtrlResponse, VmError> {
        match req {
            CtrlRequest::Install { .. }
            | CtrlRequest::Remove { .. }
            | CtrlRequest::InsertEntry { .. }
            | CtrlRequest::RemoveEntry { .. }
            | CtrlRequest::UpdateModel { .. }
            | CtrlRequest::MapUpdate { .. }
            | CtrlRequest::ObsReset
            | CtrlRequest::SetOptLevel { .. }
            | CtrlRequest::SetDecisionCacheCapacity { .. }
            | CtrlRequest::SetPartitionSeed { .. }
            | CtrlRequest::SetBalancerPolicy { .. }
            | CtrlRequest::SpanConfig { .. }
            | CtrlRequest::SpanReset => self.publish(req),
            CtrlRequest::MapLookup { prog, map, key } => self.map_lookup(prog, map, key),
            CtrlRequest::QueryStats { prog } => Ok(CtrlResponse::Stats(self.stats(prog)?)),
            // Optimizer stats are compile-time telemetry, identical on
            // every replica by construction (same program, same opt
            // level, deterministic optimizer) — read the shadow rather
            // than merging shards.
            CtrlRequest::QueryOptStats { prog } => Ok(CtrlResponse::OptStats(
                self.shadow
                    .lock()
                    .expect("shadow poisoned")
                    .opt_stats(prog)?,
            )),
            CtrlRequest::QueryTableStats { prog, table } => {
                let per_shard = self.collect(move |m| m.table_stats(prog, table));
                let mut total = TableStats::default();
                for ts in transpose(per_shard)? {
                    total.hits = total.hits.saturating_add(ts.hits);
                    total.misses = total.misses.saturating_add(ts.misses);
                }
                Ok(CtrlResponse::TableStats(total))
            }
            CtrlRequest::QueryPrivacyBudget { prog } => {
                let per_shard = self.collect(move |m| m.privacy_remaining(prog));
                let min = transpose(per_shard)?.into_iter().min().unwrap_or_default();
                Ok(CtrlResponse::PrivacyBudget(min))
            }
            CtrlRequest::HookStats { hook } => {
                let per_shard = self.collect({
                    let hook = hook.clone();
                    move |m| m.hook_stats(&hook)
                });
                let mut merged: Option<HookStats> = None;
                for hs in transpose(per_shard)? {
                    match &mut merged {
                        Some(acc) => {
                            acc.fires = acc.fires.saturating_add(hs.fires);
                            acc.hist.merge(&hs.hist);
                        }
                        None => merged = Some(hs),
                    }
                }
                Ok(CtrlResponse::HookStats(Box::new(
                    merged.expect("at least one shard"),
                )))
            }
            CtrlRequest::TraceRead { max } => {
                // Drain each shard in index order: events are FIFO
                // within a shard, shard-major across shards.
                let mut events = Vec::new();
                let mut dropped = 0u64;
                let per_fetch = max.min(usize::MAX as u64) as usize;
                for snap in self.collect(move |m| m.trace_read(per_fetch)) {
                    dropped = dropped.saturating_add(snap.dropped);
                    events.extend(snap.events);
                }
                // The concatenation can exceed `max` (each shard
                // honored it independently); what the truncate cuts is
                // lost to the caller and must be counted as dropped,
                // not silently discarded.
                let truncated = events.len().saturating_sub(per_fetch) as u64;
                dropped = dropped.saturating_add(truncated);
                events.truncate(per_fetch);
                Ok(CtrlResponse::Trace(crate::obs::TraceSnapshot {
                    events,
                    dropped,
                }))
            }
            CtrlRequest::SpanRead { max } => {
                // Shard-major drain, like TraceRead: spans are FIFO
                // within a machine; the shadow (journal and rotate
                // spans) drains last. Whatever the final truncate
                // cuts is counted as dropped, never silently lost.
                let per_fetch = max.min(usize::MAX as u64) as usize;
                let mut spans = Vec::new();
                let mut dropped = 0u64;
                for snap in self.collect(move |m| m.span_read(per_fetch)) {
                    dropped = dropped.saturating_add(snap.dropped);
                    spans.extend(snap.spans);
                }
                let shadow_snap = self
                    .shadow
                    .lock()
                    .expect("shadow poisoned")
                    .span_read(per_fetch);
                dropped = dropped.saturating_add(shadow_snap.dropped);
                spans.extend(shadow_snap.spans);
                let truncated = spans.len().saturating_sub(per_fetch) as u64;
                dropped = dropped.saturating_add(truncated);
                spans.truncate(per_fetch);
                Ok(CtrlResponse::Spans(Box::new(SpanSnapshot {
                    spans,
                    dropped,
                })))
            }
            CtrlRequest::QueryMachineCounters => {
                Ok(CtrlResponse::Counters(self.machine_counters()))
            }
            CtrlRequest::ReportOutcome {
                prog,
                slot,
                predicted,
                actual,
            } => {
                self.report_outcome_on(0, prog, slot, predicted, actual)?;
                Ok(CtrlResponse::Ok)
            }
            CtrlRequest::QueryModelStats { prog, slot } => {
                let per_shard = self.collect(move |m| m.model_stats(prog, slot));
                let mut merged: Option<crate::obs::ModelStatsSnapshot> = None;
                for ms in transpose(per_shard)? {
                    match &mut merged {
                        Some(acc) => acc.merge(&ms),
                        None => merged = Some(ms),
                    }
                }
                Ok(CtrlResponse::ModelStats(Box::new(
                    merged.expect("at least one shard"),
                )))
            }
            CtrlRequest::FlightRead => {
                // Frames concatenate shard-major; `seq` stays
                // per-shard (each shard's recorder numbers its own
                // frames), `dropped` sums.
                let mut merged: Option<FlightSnapshot> = None;
                for fs in self.collect(|m| m.flight_snapshot()) {
                    match &mut merged {
                        Some(acc) => {
                            acc.frames.extend(fs.frames);
                            acc.dropped = acc.dropped.saturating_add(fs.dropped);
                        }
                        None => merged = Some(fs),
                    }
                }
                Ok(CtrlResponse::Flight(Box::new(
                    merged.expect("at least one shard"),
                )))
            }
        }
    }

    /// Applies a mutation to the shadow replica, then publishes it.
    /// The shadow lock is held across the log append so concurrent
    /// publishers cannot reorder the log against shadow state (lock
    /// order: shadow, then cmds).
    fn publish(&self, req: CtrlRequest) -> Result<CtrlResponse, VmError> {
        let mut shadow = self.shadow.lock().expect("shadow poisoned");
        // Write-ahead: the journal is a superset of the applied log. A
        // journaled command whose shadow apply fails below replays to
        // the same deterministic no-op on recovery.
        if let Some(journal) = &self.journal {
            let t0 = shadow.span_now_ns();
            let (_seq, write_ns, sync_ns) = journal
                .lock()
                .expect("journal poisoned")
                .append_timed(&req)
                .map_err(|e| VmError::BadRequest(format!("ctrl journal: {e}")))?;
            let spans = shadow.spans_mut();
            let id = spans.alloc_id();
            spans.record(0, id, 0, Stage::JournalAppend, t0, t0 + write_ns);
            let id = spans.alloc_id();
            spans.record(
                0,
                id,
                0,
                Stage::JournalFsync,
                t0 + write_ns,
                t0 + write_ns + sync_ns,
            );
        }
        let resp = syscall_rmt_with(&mut shadow, req.clone(), &self.log.vcfg)?;
        // Coordinator-side directives: the shard replicas apply these
        // as no-ops, but the coordinator's partition/balancer state
        // updates here — inside the shadow lock, so the seed and the
        // log stay ordered — and is therefore restored by recovery's
        // journal replay like every other mutation.
        match &req {
            CtrlRequest::SetPartitionSeed { seed } => {
                self.partition.store(*seed, Ordering::Release);
                self.rebalances.fetch_add(1, Ordering::Relaxed);
            }
            CtrlRequest::SetBalancerPolicy {
                ratio_pct,
                min_depth,
            } => {
                self.balancer_ratio_pct.store(*ratio_pct, Ordering::Release);
                self.balancer_min_depth.store(*min_depth, Ordering::Release);
            }
            CtrlRequest::SpanConfig { sample_shift, .. } => {
                // Mirror the sampling rate into the lock-free ingress
                // sampler (restored by recovery replay like the
                // partition seed).
                self.span_shift
                    .store(*sample_shift as u64, Ordering::Release);
            }
            _ => {}
        }
        let mut cmds = self.log.cmds.lock().expect("ctrl log poisoned");
        cmds.push(req);
        self.log
            .published
            .store(cmds.len() as u64, Ordering::Release);
        Ok(resp)
    }

    /// Reports a ground-truth outcome to the shard that served the
    /// prediction (model telemetry is per-shard; broadcasting an
    /// outcome would multiply it in the merged confusion matrix).
    pub fn report_outcome_on(
        &self,
        shard: usize,
        prog: ProgId,
        slot: crate::bytecode::ModelSlot,
        predicted: i64,
        actual: i64,
    ) -> Result<(), VmError> {
        self.with_shard(shard, move |m| {
            m.report_outcome(prog, slot, predicted, actual)
        })
    }

    /// Control-plane map read with per-CPU aggregation: `per_cpu` maps
    /// sum the key's value across every shard that holds it (via the
    /// recency-preserving [`RmtMachine::map_peek`]); plain maps read
    /// shard 0's replica; shared maps take shard 0's DP-noised path,
    /// charging shard 0's ledger.
    pub fn map_lookup(&self, prog: ProgId, map: MapId, key: u64) -> Result<CtrlResponse, VmError> {
        let def = {
            let shadow = self.shadow.lock().expect("shadow poisoned");
            shadow.map_def(prog, map).map(|d| (d.per_cpu, d.shared))?
        };
        match def {
            (true, _) => {
                let per_shard = self.collect(move |m| m.map_peek(prog, map, key));
                let mut sum: Option<i64> = None;
                for v in transpose(per_shard)?.into_iter().flatten() {
                    sum = Some(sum.unwrap_or(0).saturating_add(v));
                }
                Ok(CtrlResponse::Value(sum))
            }
            (false, true) => self
                .with_shard(0, move |m| m.map_lookup(prog, map, key))
                .map(CtrlResponse::Value),
            (false, false) => self
                .with_shard(0, move |m| m.map_peek(prog, map, key))
                .map(CtrlResponse::Value),
        }
    }

    /// Program statistics summed across shards.
    pub fn stats(&self, prog: ProgId) -> Result<ProgStats, VmError> {
        let per_shard = self.collect(move |m| m.stats(prog));
        let mut total = ProgStats::default();
        for s in transpose(per_shard)? {
            total.merge(&s);
        }
        Ok(total)
    }

    /// Machine counters summed across shards.
    pub fn machine_counters(&self) -> MachineCounters {
        let mut total = MachineCounters::default();
        for c in self.collect(|m| m.machine_counters()) {
            total.merge(&c);
        }
        total
    }

    /// Each shard's own (unmerged) machine counters, indexed by shard
    /// — per-shard hit rates for the case-study binaries.
    pub fn shard_counters(&self) -> Vec<MachineCounters> {
        self.collect(|m| m.machine_counters())
    }

    /// Merged observability snapshot: per-shard snapshots folded with
    /// [`ObsSnapshot::merge`], so the exporters see one machine.
    pub fn obs_snapshot(&self) -> ObsSnapshot {
        let mut merged: Option<ObsSnapshot> = None;
        for snap in self.collect(|m| m.obs_snapshot()) {
            match &mut merged {
                Some(acc) => acc.merge(&snap),
                None => merged = Some(snap),
            }
        }
        let mut merged = merged.expect("at least one shard");
        // Per-machine snapshots know nothing about the ingress rings
        // or the balancer (they are coordinator state); fill both
        // here.
        merged.ingress = self.ingress_stats();
        merged.ingress_should_rebalance = i64::from(self.should_rebalance());
        merged
    }

    /// Aggregated per-stage span profile merged across every shard
    /// plus the shadow (whose rings hold the journal and rotate
    /// spans) — the `/ctrl/stages` payload.
    pub fn stage_profile(&self) -> StageProfile {
        let mut merged = StageProfile::default();
        for p in self.collect(|m| m.stage_profile()) {
            merged.merge(&p);
        }
        merged.merge(&self.shadow.lock().expect("shadow poisoned").stage_profile());
        merged
    }

    /// Each shard's own (unmerged) snapshot, indexed by shard.
    pub fn shard_obs_snapshots(&self) -> Vec<ObsSnapshot> {
        self.collect(|m| m.obs_snapshot())
    }

    /// Serves one metrics scrape of the *merged* snapshot — the
    /// sharded analogue of [`RmtMachine::serve_metrics_once`].
    pub fn serve_metrics_once(&self, listener: &std::net::TcpListener) -> std::io::Result<String> {
        crate::obs::export::serve_once(listener, &self.obs_snapshot())
    }

    /// Serves merged scrapes and read-only `/ctrl/*` queries until
    /// `stop` flips (see [`crate::obs::export::serve_until`]). `&self`
    /// — the control plane stays usable from other threads while one
    /// thread donates itself to the server.
    pub fn serve_metrics_until(
        &self,
        listener: &std::net::TcpListener,
        stop: &std::sync::atomic::AtomicBool,
    ) -> std::io::Result<u64> {
        let mut source = self;
        crate::obs::export::serve_until(
            listener,
            &mut source,
            stop,
            crate::obs::export::ServeOptions::default(),
        )
    }

    /// Advances every replica's clock (shards and shadow) by `by`.
    /// Shards tick concurrently (submit to all, then collect) rather
    /// than one blocking round-trip at a time.
    pub fn advance_tick(&self, by: u64) {
        self.shadow
            .lock()
            .expect("shadow poisoned")
            .advance_tick(by);
        let _ = self.collect(move |m| m.advance_tick(by));
    }

    /// Barrier: forces every shard to drain the command log to the
    /// published epoch and reports per-shard convergence state. After
    /// `sync` returns, every [`ShardStatus::table_generation`] equals
    /// [`ShardedMachine::expected_generation`].
    pub fn sync(&self) -> Vec<ShardStatus> {
        let mut pending = Vec::with_capacity(self.shards.len());
        for shard in 0..self.shards.len() {
            let (reply, rx) = channel();
            self.send(shard, Msg::Sync { reply });
            pending.push(rx);
        }
        pending
            .into_iter()
            .map(|rx| rx.recv().expect("shard worker died"))
            .collect()
    }

    /// The table/model generation every shard converges to (the
    /// shadow replica's — mutations apply there first).
    pub fn expected_generation(&self) -> u64 {
        self.shadow
            .lock()
            .expect("shadow poisoned")
            .table_generation()
    }

    /// Commands published to the log so far.
    pub fn published(&self) -> u64 {
        self.log.published.load(Ordering::Acquire)
    }

    /// The current flow→shard partition seed (0 until the first
    /// [`ShardedMachine::rotate_partition`]).
    pub fn partition_seed(&self) -> u64 {
        self.partition.load(Ordering::Acquire)
    }

    /// Partition rotations applied so far (including any replayed
    /// from the journal by [`ShardedMachine::recover`]).
    pub fn rebalances(&self) -> u64 {
        self.rebalances.load(Ordering::Relaxed)
    }

    /// Each shard's current ingress-ring depth (messages published
    /// but not yet consumed), indexed by shard — the skew signal the
    /// balancer triggers on. Lock-free: reads the ring cursors, never
    /// the producer lock.
    pub fn queue_depths(&self) -> Vec<u64> {
        self.shards.iter().map(|h| h.obs.depth()).collect()
    }

    /// Per-shard ingress-ring telemetry (depth plus the cumulative
    /// enqueue/stall/park counters) — what
    /// [`ShardedMachine::obs_snapshot`] folds into the merged
    /// snapshot's `ingress` section.
    pub fn ingress_stats(&self) -> Vec<IngressShardStats> {
        self.shards
            .iter()
            .enumerate()
            .map(|(shard, h)| IngressShardStats {
                shard: shard as u64,
                depth: h.obs.depth(),
                enqueued: h.obs.pushed(),
                full_stalls: h.obs.full_stalls(),
                parks: h.obs.parks(),
            })
            .collect()
    }

    /// True when the ingress depths are skewed enough that a
    /// partition rotation is worth it under the configured policy
    /// ([`CtrlRequest::SetBalancerPolicy`]): the deepest ring exceeds
    /// `ratio_pct`% of the mean depth *and* the absolute
    /// `min_depth` floor. Never triggers with one shard.
    pub fn should_rebalance(&self) -> bool {
        if self.shards.len() < 2 {
            return false;
        }
        let depths = self.queue_depths();
        let max = depths.iter().copied().max().unwrap_or(0);
        if max < self.balancer_min_depth.load(Ordering::Acquire) {
            return false;
        }
        let mean = depths.iter().sum::<u64>() / depths.len() as u64;
        let ratio_pct = self.balancer_ratio_pct.load(Ordering::Acquire);
        // max > mean * ratio_pct / 100, in integer arithmetic.
        max.saturating_mul(100) > mean.saturating_mul(ratio_pct)
    }

    /// Rotates the partition seed (golden-ratio increment — each
    /// generation is a fresh, deterministic re-hash of every flow)
    /// through the published command log, so the rotation is
    /// sequenced — and journaled — like every other control-plane
    /// mutation. Returns the new seed.
    ///
    /// **Driver contract:** the caller must quiesce its in-flight
    /// batches (wait on every outstanding [`BatchTicket`]) *before*
    /// rotating and re-partitioning, otherwise one flow's events can
    /// be in two shards' rings at once and per-flow ordering is lost.
    /// [`ShardedMachine::shard_for_flow`] picks up the new seed
    /// immediately after this returns.
    pub fn rotate_partition(&self) -> Result<u64, VmError> {
        let t0 = self.epoch.elapsed().as_nanos() as u64;
        let next = self
            .partition
            .load(Ordering::Acquire)
            .wrapping_add(0x9E37_79B9_7F4A_7C15);
        self.publish(CtrlRequest::SetPartitionSeed { seed: next })?;
        let end = self.epoch.elapsed().as_nanos() as u64;
        let mut shadow = self.shadow.lock().expect("shadow poisoned");
        let spans = shadow.spans_mut();
        let id = spans.alloc_id();
        spans.record(0, id, 0, Stage::RotatePartition, t0, end);
        Ok(next)
    }

    /// Runs `f` against one shard's machine and waits for the result.
    /// The worker drains the log first, so reads see every published
    /// mutation (read-your-writes for the coordinator).
    fn with_shard<R, F>(&self, shard: usize, f: F) -> R
    where
        R: Send + 'static,
        F: FnOnce(&mut RmtMachine) -> R + Send + 'static,
    {
        let (tx, rx) = channel();
        self.send(
            shard,
            Msg::With(Box::new(move |m| {
                let _ = tx.send(f(m));
            })),
        );
        rx.recv().expect("shard worker died")
    }

    /// Runs `f` on every shard (submitting to all before collecting,
    /// so shards execute concurrently), returning results in shard
    /// order.
    fn collect<R, F>(&self, f: F) -> Vec<R>
    where
        R: Send + 'static,
        F: Fn(&mut RmtMachine) -> R + Clone + Send + 'static,
    {
        let mut pending = Vec::with_capacity(self.shards.len());
        for shard in 0..self.shards.len() {
            let (tx, rx) = channel();
            let f = f.clone();
            self.send(
                shard,
                Msg::With(Box::new(move |m| {
                    let _ = tx.send(f(m));
                })),
            );
            pending.push(rx);
        }
        pending
            .into_iter()
            .map(|rx| rx.recv().expect("shard worker died"))
            .collect()
    }
}

impl Drop for ShardedMachine {
    fn drop(&mut self) {
        for h in &self.shards {
            // A dead worker (propagated panic) already dropped its
            // consumer endpoint; push_wait errors out instead of
            // spinning, and the join below re-raises.
            let _ =
                h.tx.lock()
                    .expect("ingress producer poisoned")
                    .push_wait(Msg::Shutdown);
        }
        for h in &mut self.shards {
            if let Some(join) = h.join.take() {
                let _ = join.join();
            }
        }
    }
}

/// First error wins, otherwise all values — cross-shard reads of
/// per-program state fail identically on every shard (the id spaces
/// are lockstep), so reporting the first is reporting all.
fn transpose<T>(results: Vec<Result<T, VmError>>) -> Result<Vec<T>, VmError> {
    results.into_iter().collect()
}

/// The shard worker loop: pop a *run* of queued messages from the
/// ingress ring, drain the command log **once per run** (the
/// per-batch epoch amortization — the old mpsc loop paid the atomic
/// load and potential log catch-up per message), then serve every
/// message in the run. Messages pushed after the pop are picked up
/// by the next run; a publish that happened-before a message's push
/// is always visible to the drain that precedes serving it, so the
/// coordinator keeps read-your-writes.
fn worker(shard: usize, mut machine: RmtMachine, log: &CtrlLog, mut rx: spsc::Consumer<Msg>) {
    let mut applied = 0u64;
    let mut ctrl_errors = 0u64;
    let mut run: Vec<Msg> = Vec::new();
    'serve: loop {
        run.clear();
        let (n, waited_ns) = rx.pop_run_wait_timed(usize::MAX, &mut run);
        if n == 0 {
            // Producer endpoint gone without a Shutdown message — the
            // coordinator died mid-drop; exit like a close.
            break;
        }
        if waited_ns > 0 {
            // Background span: how long this worker sat idle before
            // the run arrived (trace id 0 — not tied to one flow).
            let spans = machine.spans_mut();
            let end = spans.now_ns();
            let id = spans.alloc_id();
            spans.record(
                0,
                id,
                0,
                Stage::IngressPark,
                end.saturating_sub(waited_ns),
                end,
            );
        }
        if log.published.load(Ordering::Acquire) > applied {
            let t0 = machine.span_now_ns();
            drain(shard, &mut machine, log, &mut applied, &mut ctrl_errors);
            let end = machine.span_now_ns();
            let spans = machine.spans_mut();
            let id = spans.alloc_id();
            spans.record(0, id, 0, Stage::CtrlDrain, t0, end);
        }
        for msg in run.drain(..) {
            match msg {
                Msg::Batch {
                    hook,
                    mut ctxts,
                    span,
                    reply,
                } => {
                    let results = match span {
                        Some(bs) => {
                            // The traced batch: close the IngressWait
                            // span (enqueue → pop), open ShardRun,
                            // and arm the machine so its first fire
                            // parents under ShardRun.
                            let spans = machine.spans_mut();
                            let pop_ns = spans.now_ns();
                            let wait_id = spans.alloc_id();
                            spans.record(
                                bs.trace_id,
                                wait_id,
                                0,
                                Stage::IngressWait,
                                bs.enqueue_ns,
                                pop_ns,
                            );
                            let run_id = spans.alloc_id();
                            spans.set_active(bs.trace_id, run_id);
                            let results = machine.fire_batch(&hook, &mut ctxts);
                            let spans = machine.spans_mut();
                            // An unarmed hook never consumed the
                            // decision; drop it rather than leak it
                            // into an unrelated later fire.
                            spans.take_active();
                            let end = spans.now_ns();
                            spans.record(
                                bs.trace_id,
                                run_id,
                                wait_id,
                                Stage::ShardRun,
                                pop_ns,
                                end,
                            );
                            results
                        }
                        None => machine.fire_batch(&hook, &mut ctxts),
                    };
                    let _ = reply.send(BatchOutput { ctxts, results });
                }
                Msg::With(f) => f(&mut machine),
                Msg::Sync { reply } => {
                    let _ = reply.send(ShardStatus {
                        shard,
                        applied,
                        ctrl_apply_errors: ctrl_errors,
                        table_generation: machine.table_generation(),
                    });
                }
                Msg::Shutdown => break 'serve,
            }
        }
    }
}

/// Applies every published-but-unapplied command, in log order.
/// Installs re-seed with `seed ^ shard` so each shard's DP noise
/// stream is deterministic and distinct (and shard 0 matches a single
/// machine installed with the base seed).
fn drain(
    shard: usize,
    machine: &mut RmtMachine,
    log: &CtrlLog,
    applied: &mut u64,
    ctrl_errors: &mut u64,
) {
    let published = log.published.load(Ordering::Acquire);
    if *applied >= published {
        return;
    }
    let pending: Vec<CtrlRequest> = {
        let cmds = log.cmds.lock().expect("ctrl log poisoned");
        cmds[*applied as usize..published as usize].to_vec()
    };
    for req in pending {
        let req = match req {
            CtrlRequest::Install { prog, mode, seed } => CtrlRequest::Install {
                prog,
                mode,
                seed: seed ^ shard as u64,
            },
            other => other,
        };
        if syscall_rmt_with(machine, req, &log.vcfg).is_err() {
            *ctrl_errors += 1;
        }
        *applied += 1;
    }
}

/// `/ctrl/*` queries answer from the merged view; `/ctrl/shards`
/// additionally reports per-shard convergence ([`ShardStatus`] JSON).
/// Implemented on `&ShardedMachine` so a server thread can hold the
/// source while other threads keep driving the control plane.
impl crate::obs::export::MetricsSource for &ShardedMachine {
    fn obs(&mut self) -> ObsSnapshot {
        self.obs_snapshot()
    }

    fn ctrl_query(&mut self, path: &str) -> Option<String> {
        match path {
            "/ctrl/counters" => Some(rkd_testkit::json::to_string(&self.machine_counters())),
            "/ctrl/models" => Some(rkd_testkit::json::to_string(&self.obs_snapshot().models)),
            "/ctrl/shards" => Some(rkd_testkit::json::to_string(&self.sync())),
            "/ctrl/stages" => Some(rkd_testkit::json::to_string(&self.stage_profile())),
            _ => None,
        }
    }

    fn trace_json(&mut self) -> Option<String> {
        match self.ctrl(CtrlRequest::SpanRead { max: u64::MAX }) {
            Ok(CtrlResponse::Spans(snap)) => Some(span::chrome_trace_json(&snap)),
            _ => None,
        }
    }
}

rkd_testkit::impl_json_struct!(ShardStatus {
    shard,
    applied,
    ctrl_apply_errors,
    table_generation
});
