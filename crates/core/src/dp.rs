//! Differential privacy for cross-application queries.
//!
//! §3.3: "if an RMT query returns some aggregate statistics, we can
//! leverage differential privacy (DP) to noise the outputs. … The
//! kernel can maintain a 'privacy budget', in DP terms, and subtract
//! from this overall budget for each table match."
//!
//! Noise is drawn from the **two-sided geometric (discrete Laplace)
//! mechanism**, the integer analogue of Laplace noise — appropriate
//! here because the kernel-side datapath is integer-only. For an
//! epsilon-DP query of sensitivity `s`, noise is `X - Y` where `X, Y`
//! are geometric with parameter `p = 1 - exp(-eps/s)`.

use crate::error::VmError;
use rkd_testkit::rng::Rng;

/// A privacy-budget ledger, in milli-epsilon units.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PrivacyLedger {
    budget_milli_eps: u64,
    spent_milli_eps: u64,
}

impl PrivacyLedger {
    /// Creates a ledger with the given total budget.
    pub fn new(budget_milli_eps: u64) -> PrivacyLedger {
        PrivacyLedger {
            budget_milli_eps,
            spent_milli_eps: 0,
        }
    }

    /// Rebuilds a ledger from snapshotted accounting: total budget plus
    /// what had already been spent. `spent` is clamped to the budget so
    /// a hand-edited snapshot can never manufacture negative spend.
    pub fn restore(budget_milli_eps: u64, spent_milli_eps: u64) -> PrivacyLedger {
        PrivacyLedger {
            budget_milli_eps,
            spent_milli_eps: spent_milli_eps.min(budget_milli_eps),
        }
    }

    /// Total budget the ledger was created with.
    pub fn budget_milli_eps(&self) -> u64 {
        self.budget_milli_eps
    }

    /// Remaining budget.
    pub fn remaining_milli_eps(&self) -> u64 {
        self.budget_milli_eps.saturating_sub(self.spent_milli_eps)
    }

    /// Total spent so far.
    pub fn spent_milli_eps(&self) -> u64 {
        self.spent_milli_eps
    }

    /// Charges one query; fails closed when the budget is exhausted.
    pub fn charge(&mut self, milli_eps: u64) -> Result<(), VmError> {
        if milli_eps == 0 {
            return Err(VmError::BadRequest("zero-epsilon charge".into()));
        }
        if self.remaining_milli_eps() < milli_eps {
            return Err(VmError::PrivacyBudgetExhausted);
        }
        self.spent_milli_eps += milli_eps;
        Ok(())
    }
}

/// Draws two-sided geometric noise calibrated for `milli_eps`-DP at the
/// given sensitivity.
///
/// The success probability is `p = 1 - exp(-eps / sensitivity)`; each
/// side of the noise is the number of Bernoulli failures before the
/// first success, capped at a generous bound to keep the datapath
/// wait-free.
pub fn geometric_noise(rng: &mut impl Rng, milli_eps: u64, sensitivity: u64) -> i64 {
    let eps = (milli_eps.max(1)) as f64 / 1000.0;
    let s = sensitivity.max(1) as f64;
    let p = 1.0 - (-eps / s).exp();
    let pos = sample_geometric(rng, p);
    let neg = sample_geometric(rng, p);
    pos - neg
}

fn sample_geometric(rng: &mut impl Rng, p: f64) -> i64 {
    // Inverse-CDF sampling: floor(ln(U) / ln(1-p)), capped.
    if p >= 1.0 {
        return 0;
    }
    if p <= 0.0 {
        return 1 << 20;
    }
    let u: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
    let v = (u.ln() / (1.0 - p).ln()).floor();
    (v as i64).min(1 << 20)
}

/// Answers an aggregate query under DP: charges the ledger and returns
/// the noised value, or fails closed without revealing anything.
pub fn noised_query(
    true_value: i64,
    ledger: &mut PrivacyLedger,
    milli_eps: u64,
    sensitivity: u64,
    rng: &mut impl Rng,
) -> Result<i64, VmError> {
    ledger.charge(milli_eps)?;
    Ok(true_value.saturating_add(geometric_noise(rng, milli_eps, sensitivity)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rkd_testkit::rng::SeedableRng;
    use rkd_testkit::rng::StdRng;

    #[test]
    fn ledger_charges_and_exhausts() {
        let mut l = PrivacyLedger::new(250);
        assert_eq!(l.remaining_milli_eps(), 250);
        l.charge(100).unwrap();
        l.charge(100).unwrap();
        assert_eq!(l.spent_milli_eps(), 200);
        assert!(matches!(
            l.charge(100),
            Err(VmError::PrivacyBudgetExhausted)
        ));
        // Failed charge spends nothing.
        assert_eq!(l.remaining_milli_eps(), 50);
        l.charge(50).unwrap();
        assert_eq!(l.remaining_milli_eps(), 0);
    }

    #[test]
    fn zero_charge_rejected() {
        let mut l = PrivacyLedger::new(10);
        assert!(matches!(l.charge(0), Err(VmError::BadRequest(_))));
    }

    #[test]
    fn noise_is_zero_mean_ish() {
        let mut rng = StdRng::seed_from_u64(51);
        let n = 20_000;
        let sum: i64 = (0..n).map(|_| geometric_noise(&mut rng, 1000, 1)).sum();
        let mean = sum as f64 / n as f64;
        assert!(mean.abs() < 0.2, "mean {mean}");
    }

    #[test]
    fn smaller_epsilon_means_more_noise() {
        let mut rng = StdRng::seed_from_u64(52);
        let spread = |milli_eps: u64, rng: &mut StdRng| -> f64 {
            let n = 5_000;
            let var: f64 = (0..n)
                .map(|_| {
                    let x = geometric_noise(rng, milli_eps, 1) as f64;
                    x * x
                })
                .sum::<f64>()
                / n as f64;
            var
        };
        let tight = spread(2000, &mut rng); // eps = 2.
        let loose = spread(100, &mut rng); // eps = 0.1.
        assert!(
            loose > tight * 4.0,
            "low-eps variance {loose} should dwarf high-eps {tight}"
        );
    }

    #[test]
    fn noised_query_fails_closed() {
        let mut rng = StdRng::seed_from_u64(53);
        let mut l = PrivacyLedger::new(100);
        let v = noised_query(1000, &mut l, 100, 1, &mut rng).unwrap();
        // eps = 0.1, sensitivity 1: noise can be large but the value is
        // still centered near 1000.
        assert!((v - 1000).abs() < 500, "noised {v}");
        assert!(matches!(
            noised_query(1000, &mut l, 100, 1, &mut rng),
            Err(VmError::PrivacyBudgetExhausted)
        ));
    }

    #[test]
    fn higher_sensitivity_scales_noise() {
        let mut rng = StdRng::seed_from_u64(54);
        let n = 5_000;
        let var = |sens: u64, rng: &mut StdRng| -> f64 {
            (0..n)
                .map(|_| {
                    let x = geometric_noise(rng, 1000, sens) as f64;
                    x * x
                })
                .sum::<f64>()
                / n as f64
        };
        let low = var(1, &mut rng);
        let high = var(10, &mut rng);
        assert!(high > low * 2.0, "sens-10 var {high} vs sens-1 {low}");
    }
}
