//! Just-in-time compilation of verified actions.
//!
//! §3.1: "The RMT bytecode can further be JIT compiled directly to
//! machine code for efficiency." Emitting native code requires
//! `mmap(PROT_EXEC)`, which this reproduction deliberately avoids (see
//! DESIGN.md substitution #4); instead we compile to **pre-decoded
//! threaded code**: every operand is resolved to a direct index, every
//! immediate pre-converted, every branch target patched, and the
//! dispatch loop drops the per-instruction validation the interpreter
//! performs. Because only [`crate::verifier::VerifiedProgram`]s are
//! compiled, the dropped checks are exactly the ones the verifier has
//! discharged statically — the same argument a real eBPF JIT makes.
//!
//! Semantics are identical to [`crate::interp`]; equivalence is
//! property-tested in the workspace integration tests.
//!
//! Table matching is not part of the compiled form: the machine's
//! shared indexed lookup engine ([`crate::table`]) and decision cache
//! resolve the entry first, then dispatch to the pre-decoded action —
//! JIT and interpreter therefore always agree on match semantics.

use crate::bytecode::{
    Action, AluOp, CmpOp, Helper, Insn, VecUnary, MAX_VECTOR_LEN, NUM_REGS, NUM_VREGS,
};
use crate::dp::noised_query;
use crate::error::VmError;
use crate::interp::{ActionOutcome, Effect, ExecEnv};
use crate::opt::{OptLevel, Pass};
use crate::table::TableId;

use rkd_ml::fixed::Fix;
use rkd_ml::tensor::Tensor;

/// A pre-decoded operation with resolved operands.
#[derive(Clone, Debug)]
enum Op {
    LdImm(usize, i64),
    Mov(usize, usize),
    LdCtxt(usize, u16),
    StCtxt(u16, usize),
    Alu(AluOp, usize, usize),
    AluImm(AluOp, usize, i64),
    Jmp(usize),
    JmpIf(CmpOp, usize, usize, usize),
    JmpIfImm(CmpOp, usize, i64, usize),
    MapLookup(usize, usize, usize, i64),
    MapUpdate(usize, usize, usize),
    MapDelete(usize, usize),
    VectorLdMap(usize, usize),
    VectorLdCtxt(usize, u16, u16),
    VectorPush(usize, usize),
    VectorClear(usize),
    MatMul(usize, usize, usize),
    VecMap(VecUnary, usize),
    ScalarVal(usize, usize, usize),
    CallMl(usize, usize),
    Call(Helper),
    DpAggregate(usize, usize),
    Exit,
    TailCall(u16),
}

/// A JIT-compiled action body.
#[derive(Clone, Debug)]
pub struct CompiledAction {
    ops: Vec<Op>,
}

impl CompiledAction {
    /// Compiles a (verified) action to threaded code.
    ///
    /// Returns [`VmError::Fault`] on operands the verifier would have
    /// rejected — compiling unverified actions is a caller bug.
    pub fn compile(action: &Action) -> Result<CompiledAction, VmError> {
        let mut ops = Vec::with_capacity(action.code.len());
        for insn in &action.code {
            ops.push(match insn {
                Insn::LdImm { dst, imm } => Op::LdImm(ridx(dst.0)?, *imm),
                Insn::Mov { dst, src } => Op::Mov(ridx(dst.0)?, ridx(src.0)?),
                Insn::LdCtxt { dst, field } => Op::LdCtxt(ridx(dst.0)?, field.0),
                Insn::StCtxt { field, src } => Op::StCtxt(field.0, ridx(src.0)?),
                Insn::Alu { op, dst, src } => Op::Alu(*op, ridx(dst.0)?, ridx(src.0)?),
                Insn::AluImm { op, dst, imm } => Op::AluImm(*op, ridx(dst.0)?, *imm),
                Insn::Jmp { target } => Op::Jmp(*target),
                Insn::JmpIf {
                    cmp,
                    lhs,
                    rhs,
                    target,
                } => Op::JmpIf(*cmp, ridx(lhs.0)?, ridx(rhs.0)?, *target),
                Insn::JmpIfImm {
                    cmp,
                    lhs,
                    imm,
                    target,
                } => Op::JmpIfImm(*cmp, ridx(lhs.0)?, *imm, *target),
                Insn::MapLookup {
                    dst,
                    map,
                    key,
                    default,
                } => Op::MapLookup(ridx(dst.0)?, map.0 as usize, ridx(key.0)?, *default),
                Insn::MapUpdate { map, key, value } => {
                    Op::MapUpdate(map.0 as usize, ridx(key.0)?, ridx(value.0)?)
                }
                Insn::MapDelete { map, key } => Op::MapDelete(map.0 as usize, ridx(key.0)?),
                Insn::VectorLdMap { dst, map } => Op::VectorLdMap(vidx(dst.0)?, map.0 as usize),
                Insn::VectorLdCtxt { dst, base, len } => {
                    Op::VectorLdCtxt(vidx(dst.0)?, base.0, *len)
                }
                Insn::VectorPush { dst, src } => Op::VectorPush(vidx(dst.0)?, ridx(src.0)?),
                Insn::VectorClear { dst } => Op::VectorClear(vidx(dst.0)?),
                Insn::MatMul { dst, tensor, src } => {
                    Op::MatMul(vidx(dst.0)?, tensor.0 as usize, vidx(src.0)?)
                }
                Insn::VecMap { op, dst } => Op::VecMap(*op, vidx(dst.0)?),
                Insn::ScalarVal { dst, src, idx } => {
                    Op::ScalarVal(ridx(dst.0)?, vidx(src.0)?, *idx as usize)
                }
                Insn::CallMl { model, src } => Op::CallMl(model.0 as usize, vidx(src.0)?),
                Insn::Call { helper } => Op::Call(*helper),
                Insn::DpAggregate { dst, map } => Op::DpAggregate(ridx(dst.0)?, map.0 as usize),
                Insn::Exit => Op::Exit,
                Insn::TailCall { table } => Op::TailCall(table.0),
            });
        }
        Ok(CompiledAction { ops })
    }

    /// Runs the optimizing-pass pipeline at `level`, re-verifies the
    /// rewritten body against `prog`, and compiles the result. Returns
    /// the compiled action together with its (possibly tighter)
    /// worst-case dynamic instruction count.
    ///
    /// Re-verification failure is a hard [`VmError::Verify`]: a pass
    /// that emits an inadmissible body must never reach the machine.
    /// At [`OptLevel::O0`] this is exactly [`CompiledAction::compile`]
    /// plus the unchanged `worst_case` — the retained oracle path.
    pub fn compile_optimized(
        id: u16,
        action: &Action,
        prog: &crate::prog::RmtProgram,
        level: OptLevel,
        worst_case: u64,
    ) -> Result<(CompiledAction, u64), VmError> {
        Self::compile_optimized_report(id, action, prog, level, worst_case)
            .map(|(c, wc, _)| (c, wc))
    }

    /// [`CompiledAction::compile_optimized`] that also returns the
    /// pipeline's [`crate::opt::Optimized`] report, so the machine can
    /// account per-program optimizer statistics and fixpoint-cap hits.
    /// At `O0` the report is an empty zero-round run.
    pub fn compile_optimized_report(
        id: u16,
        action: &Action,
        prog: &crate::prog::RmtProgram,
        level: OptLevel,
        worst_case: u64,
    ) -> Result<(CompiledAction, u64, crate::opt::Optimized), VmError> {
        if level == OptLevel::O0 {
            let report = crate::opt::Optimized {
                action: action.clone(),
                rounds: 0,
                fired: Vec::new(),
                capped: false,
            };
            return Ok((CompiledAction::compile(action)?, worst_case, report));
        }
        let opt = crate::opt::optimize(action, level);
        let wc = crate::verifier::reverify_action(id, &opt.action, prog)?;
        let compiled = CompiledAction::compile(&opt.action)?;
        // Optimization never grows the worst case; keep the tighter
        // bound so fuel accounting benefits too.
        Ok((compiled, wc.min(worst_case), opt))
    }

    /// [`CompiledAction::compile_optimized`] with an explicit pass
    /// list — the seam the broken-pass meta-safety tests drive.
    pub fn compile_optimized_with(
        id: u16,
        action: &Action,
        prog: &crate::prog::RmtProgram,
        passes: &[&dyn Pass],
        worst_case: u64,
    ) -> Result<(CompiledAction, u64), VmError> {
        let opt = crate::opt::optimize_with(action, passes, crate::opt::MAX_FIXPOINT_ROUNDS);
        let wc = crate::verifier::reverify_action(id, &opt.action, prog)?;
        let compiled = CompiledAction::compile(&opt.action)?;
        // Optimization never grows the worst case; keep the tighter
        // bound so fuel accounting benefits too.
        Ok((compiled, wc.min(worst_case)))
    }

    /// Number of compiled operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Returns `true` if the body is empty (never for verified actions).
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Executes the compiled action. Same contract as
    /// [`crate::interp::run_action`].
    pub fn run(
        &self,
        fuel: u64,
        arg: i64,
        env: &mut ExecEnv<'_>,
    ) -> Result<ActionOutcome, VmError> {
        let ops = &self.ops;
        let mut regs = [0i64; NUM_REGS as usize];
        regs[crate::bytecode::ARG_REG.0 as usize] = arg;
        let mut vregs: [Vec<Fix>; NUM_VREGS as usize] = Default::default();
        let mut out = ActionOutcome::default();
        let mut pc = 0usize;
        let mut remaining = fuel;
        loop {
            if remaining == 0 {
                return Err(VmError::FuelExhausted);
            }
            remaining -= 1;
            out.insns_executed += 1;
            // SAFETY of the unchecked-style access argument: `pc` only
            // takes values the verifier proved in-range; plain indexing
            // keeps this memory-safe regardless.
            let op = &ops[pc];
            pc += 1;
            match op {
                Op::LdImm(d, imm) => regs[*d] = *imm,
                Op::Mov(d, s) => regs[*d] = regs[*s],
                Op::LdCtxt(d, f) => {
                    regs[*d] = env
                        .ctxt
                        .get(crate::ctxt::FieldId(*f))
                        .ok_or(VmError::Fault("bad field"))?;
                }
                Op::StCtxt(f, s) => {
                    if !env.ctxt.set(crate::ctxt::FieldId(*f), regs[*s]) {
                        return Err(VmError::Fault("bad field store"));
                    }
                }
                Op::Alu(o, d, s) => regs[*d] = o.eval(regs[*d], regs[*s]),
                Op::AluImm(o, d, imm) => regs[*d] = o.eval(regs[*d], *imm),
                Op::Jmp(t) => pc = *t,
                Op::JmpIf(c, l, r, t) => {
                    if c.eval(regs[*l], regs[*r]) {
                        pc = *t;
                    }
                }
                Op::JmpIfImm(c, l, imm, t) => {
                    if c.eval(regs[*l], *imm) {
                        pc = *t;
                    }
                }
                Op::MapLookup(d, m, k, default) => {
                    regs[*d] = env.maps[*m].lookup(regs[*k] as u64).unwrap_or(*default);
                }
                Op::MapUpdate(m, k, v) => {
                    regs[0] = match env.maps[*m].update(regs[*k] as u64, regs[*v]) {
                        Ok(()) => 0,
                        Err(_) => 1,
                    };
                }
                Op::MapDelete(m, k) => {
                    regs[0] = env.maps[*m].delete(regs[*k] as u64) as i64;
                }
                Op::VectorLdMap(d, m) => {
                    let snap = env.maps[*m].ring_snapshot();
                    let v = &mut vregs[*d];
                    v.clear();
                    v.extend(snap.iter().take(MAX_VECTOR_LEN).map(|&x| Fix::from_int(x)));
                }
                Op::VectorLdCtxt(d, base, len) => {
                    let v = &mut vregs[*d];
                    v.clear();
                    for i in 0..*len {
                        let val = env
                            .ctxt
                            .get(crate::ctxt::FieldId(base + i))
                            .ok_or(VmError::Fault("vector window"))?;
                        v.push(Fix::from_int(val));
                    }
                }
                Op::VectorPush(d, s) => {
                    let val = Fix::from_int(regs[*s]);
                    let v = &mut vregs[*d];
                    if v.len() >= MAX_VECTOR_LEN {
                        return Err(VmError::Fault("vector overflow"));
                    }
                    v.push(val);
                }
                Op::VectorClear(d) => vregs[*d].clear(),
                Op::MatMul(d, t, s) => {
                    let tensor = env.tensors.get(*t).ok_or(VmError::Fault("bad tensor"))?;
                    let input = &vregs[*s];
                    if input.is_empty() {
                        return Err(VmError::Fault("matmul on empty vector"));
                    }
                    let vin = Tensor::vector(input.clone());
                    let result = tensor
                        .matvec(&vin)
                        .map_err(|_| VmError::Fault("matmul shape"))?;
                    vregs[*d] = result.as_slice().to_vec();
                }
                Op::VecMap(o, d) => {
                    for x in vregs[*d].iter_mut() {
                        *x = match o {
                            VecUnary::Relu => x.relu(),
                            VecUnary::Sigmoid => x.sigmoid(),
                        };
                    }
                }
                Op::ScalarVal(d, s, i) => {
                    regs[*d] = vregs[*s].get(*i).map(|f| f.round_int() as i64).unwrap_or(0);
                }
                Op::CallMl(m, s) => {
                    let model = env.models.get(*m).ok_or(VmError::Fault("bad model"))?;
                    let t0 = env.time_ml.then(std::time::Instant::now);
                    let (mut class, conf) = model
                        .spec
                        .predict(&vregs[*s])
                        .map_err(|_| VmError::Fault("model arity"))?;
                    if let Some(guard) = &model.guard {
                        let (guarded, tripped) = guard.apply(class, conf);
                        class = guarded;
                        if tripped {
                            out.guard_trips += 1;
                        }
                    }
                    // Mirrors the interpreter: record the post-guard
                    // class so both engines produce identical stats.
                    if let Some(st) = env.ml_stats.get_mut(*m) {
                        st.record_prediction(
                            class as i64,
                            t0.map(|t| t.elapsed().as_nanos() as u64),
                        );
                    }
                    regs[0] = class as i64;
                    regs[1] = conf.raw() as i64;
                }
                Op::Call(helper) => match helper {
                    Helper::GetTick => regs[0] = env.tick as i64,
                    Helper::Rand => {
                        use rkd_testkit::rng::Rng;
                        regs[0] = env.rng.gen::<i64>();
                    }
                    Helper::EmitPrefetch => {
                        out.effects.push(Effect::Prefetch {
                            base: regs[2] as u64,
                            count: regs[3].max(0) as u64,
                        });
                        regs[0] = 0;
                    }
                    Helper::EmitMigrate => {
                        out.effects.push(Effect::Migrate {
                            migrate: regs[2] != 0,
                        });
                        regs[0] = 0;
                    }
                    Helper::EmitHint => {
                        out.effects.push(Effect::Hint {
                            kind: regs[2],
                            a: regs[3],
                            b: regs[4],
                        });
                        regs[0] = 0;
                    }
                },
                Op::DpAggregate(d, m) => {
                    let sum = env.maps[*m].aggregate_sum();
                    let noised = noised_query(
                        sum,
                        env.ledger,
                        env.privacy.per_query_milli_eps,
                        env.privacy.sensitivity,
                        env.rng,
                    )?;
                    regs[*d] = noised;
                }
                Op::Exit => {
                    out.verdict = regs[0];
                    return Ok(out);
                }
                Op::TailCall(t) => {
                    out.verdict = regs[0];
                    out.tail_call = Some(TableId(*t));
                    return Ok(out);
                }
            }
        }
    }
}

fn ridx(r: u8) -> Result<usize, VmError> {
    if r < NUM_REGS {
        Ok(r as usize)
    } else {
        Err(VmError::Fault("bad register"))
    }
}

fn vidx(v: u8) -> Result<usize, VmError> {
    if v < NUM_VREGS {
        Ok(v as usize)
    } else {
        Err(VmError::Fault("bad vector register"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bytecode::Reg;
    use crate::ctxt::CtxtSchema;
    use crate::dp::PrivacyLedger;
    use crate::interp::run_action;
    use crate::maps::{MapDef, MapInstance, MapKind};
    use crate::prog::PrivacyPolicy;
    use rkd_testkit::rng::SeedableRng;
    use rkd_testkit::rng::StdRng;

    struct Fx {
        ctxt: crate::ctxt::Ctxt,
        maps: Vec<MapInstance>,
        tensors: Vec<Tensor>,
        models: Vec<crate::prog::ModelDef>,
        rng: StdRng,
        ledger: PrivacyLedger,
    }

    impl Fx {
        fn new(seed: u64) -> Fx {
            let mut schema = CtxtSchema::new();
            schema.add_scratch("a");
            schema.add_scratch("b");
            let hash = MapInstance::new(&MapDef {
                name: "h".into(),
                kind: MapKind::Hash,
                capacity: 16,
                shared: false,
                per_cpu: false,
            })
            .unwrap();
            Fx {
                ctxt: schema.make_ctxt(),
                maps: vec![hash],
                tensors: vec![Tensor::from_f64(2, 2, &[2.0, 0.0, 0.0, 3.0]).unwrap()],
                models: Vec::new(),
                rng: StdRng::seed_from_u64(seed),
                ledger: PrivacyLedger::new(10_000),
            }
        }

        fn env(&mut self) -> ExecEnv<'_> {
            ExecEnv {
                ctxt: &mut self.ctxt,
                maps: &mut self.maps,
                tensors: &self.tensors,
                models: &self.models,
                tick: 9,
                rng: &mut self.rng,
                ledger: &mut self.ledger,
                privacy: PrivacyPolicy::default(),
                ml_stats: &mut [],
                time_ml: false,
            }
        }
    }

    /// The canonical equivalence harness: run both engines on the same
    /// action from identical fixtures and compare everything observable.
    fn assert_equiv(action: &Action, arg: i64) {
        let mut fx_i = Fx::new(5);
        let mut fx_j = Fx::new(5);
        let interp = {
            let mut env = fx_i.env();
            run_action(action, 10_000, arg, &mut env)
        };
        let compiled = CompiledAction::compile(action).unwrap();
        let jit = {
            let mut env = fx_j.env();
            compiled.run(10_000, arg, &mut env)
        };
        assert_eq!(interp, jit);
        assert_eq!(fx_i.ctxt, fx_j.ctxt);
        assert_eq!(fx_i.ledger, fx_j.ledger);
    }

    #[test]
    fn equivalence_on_arithmetic() {
        let a = Action::new(
            "a",
            vec![
                Insn::LdImm {
                    dst: Reg(0),
                    imm: 10,
                },
                Insn::AluImm {
                    op: AluOp::Mul,
                    dst: Reg(0),
                    imm: -3,
                },
                Insn::Exit,
            ],
        );
        assert_equiv(&a, 7);
    }

    #[test]
    fn equivalence_on_branches_and_loops() {
        let a = Action::with_loop_bound(
            "sum",
            vec![
                Insn::LdImm {
                    dst: Reg(0),
                    imm: 0,
                },
                Insn::LdImm {
                    dst: Reg(1),
                    imm: 0,
                },
                Insn::Alu {
                    op: AluOp::Add,
                    dst: Reg(0),
                    src: Reg(1),
                },
                Insn::AluImm {
                    op: AluOp::Add,
                    dst: Reg(1),
                    imm: 1,
                },
                Insn::JmpIfImm {
                    cmp: CmpOp::Lt,
                    lhs: Reg(1),
                    imm: 8,
                    target: 2,
                },
                Insn::Exit,
            ],
            16,
        );
        assert_equiv(&a, 0);
    }

    #[test]
    fn equivalence_on_maps_ctxt_vectors_and_helpers() {
        let a = Action::new(
            "mix",
            vec![
                Insn::LdImm {
                    dst: Reg(2),
                    imm: 3,
                },
                Insn::LdImm {
                    dst: Reg(3),
                    imm: 50,
                },
                Insn::MapUpdate {
                    map: crate::maps::MapId(0),
                    key: Reg(2),
                    value: Reg(3),
                },
                Insn::MapLookup {
                    dst: Reg(4),
                    map: crate::maps::MapId(0),
                    key: Reg(2),
                    default: -1,
                },
                Insn::StCtxt {
                    field: crate::ctxt::FieldId(0),
                    src: Reg(4),
                },
                Insn::VectorPush {
                    dst: crate::bytecode::VReg(0),
                    src: Reg(4),
                },
                Insn::VectorPush {
                    dst: crate::bytecode::VReg(0),
                    src: Reg(2),
                },
                Insn::MatMul {
                    dst: crate::bytecode::VReg(1),
                    tensor: crate::bytecode::TensorSlot(0),
                    src: crate::bytecode::VReg(0),
                },
                Insn::ScalarVal {
                    dst: Reg(0),
                    src: crate::bytecode::VReg(1),
                    idx: 0,
                },
                Insn::Call {
                    helper: Helper::EmitPrefetch,
                },
                Insn::Mov {
                    dst: Reg(0),
                    src: Reg(4),
                },
                Insn::Exit,
            ],
        );
        assert_equiv(&a, 0);
    }

    #[test]
    fn equivalence_on_rand_and_dp_with_same_seed() {
        let a = Action::new(
            "rng",
            vec![
                Insn::Call {
                    helper: Helper::Rand,
                },
                Insn::DpAggregate {
                    dst: Reg(1),
                    map: crate::maps::MapId(0),
                },
                Insn::Alu {
                    op: AluOp::Xor,
                    dst: Reg(0),
                    src: Reg(1),
                },
                Insn::Exit,
            ],
        );
        assert_equiv(&a, 0);
    }

    #[test]
    fn equivalence_on_tail_call() {
        let a = Action::new(
            "tc",
            vec![
                Insn::LdImm {
                    dst: Reg(0),
                    imm: 5,
                },
                Insn::TailCall { table: TableId(1) },
            ],
        );
        assert_equiv(&a, 0);
    }

    #[test]
    fn compile_rejects_bad_registers() {
        let a = Action::new(
            "bad",
            vec![Insn::LdImm {
                dst: Reg(99),
                imm: 0,
            }],
        );
        assert!(CompiledAction::compile(&a).is_err());
        let b = Action::new(
            "badv",
            vec![Insn::VectorClear {
                dst: crate::bytecode::VReg(9),
            }],
        );
        assert!(CompiledAction::compile(&b).is_err());
    }

    #[test]
    fn fuel_is_enforced() {
        let a = Action::new("inf", vec![Insn::Jmp { target: 0 }]);
        let compiled = CompiledAction::compile(&a).unwrap();
        let mut fx = Fx::new(1);
        let mut env = fx.env();
        assert!(matches!(
            compiled.run(50, 0, &mut env),
            Err(VmError::FuelExhausted)
        ));
    }

    #[test]
    fn len_reports_ops() {
        let a = Action::new(
            "l",
            vec![
                Insn::LdImm {
                    dst: Reg(0),
                    imm: 0,
                },
                Insn::Exit,
            ],
        );
        let c = CompiledAction::compile(&a).unwrap();
        assert_eq!(c.len(), 2);
        assert!(!c.is_empty());
    }
}
