//! Model-safety guardrails (§3.3).
//!
//! "The line of work in adversarial machine learning has repeatedly
//! shown that the blackbox nature of ML models can sometimes be
//! exploited … the RMT verifier directly benefits from recent work that
//! aims to … add guardrails to blackbox inference to prevent worst-case
//! behaviors."
//!
//! A [`ModelGuard`] wraps a model slot with the two guardrails that make
//! sense for kernel decisions:
//!
//! - **class clamp** — predictions outside `[0, max_class]` are replaced
//!   by `fallback_class`, so a corrupted or adversarially perturbed
//!   model cannot steer the datapath into undefined decisions;
//! - **confidence floor** — predictions whose confidence is below
//!   `min_confidence` fall back too, turning "uncertain model" into
//!   "conservative default" instead of a coin flip.
//!
//! Guards are declared per model slot, checked by the verifier for
//! internal consistency, and enforced on every `CALL` into the model —
//! inside the machine, not in the model, so a hot-swapped model inherits
//! the guard.

use rkd_ml::fixed::Fix;

/// Guardrail configuration for one model slot.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ModelGuard {
    /// Largest class the datapath may act on.
    pub max_class: usize,
    /// The safe decision used whenever a guardrail trips.
    pub fallback_class: usize,
    /// Predictions below this confidence fall back (Q16.16 in `[0, 1]`;
    /// `Fix::ZERO` disables the floor).
    pub min_confidence: Fix,
}

impl ModelGuard {
    /// A clamp-only guard (no confidence floor).
    pub fn clamp(max_class: usize, fallback_class: usize) -> ModelGuard {
        ModelGuard {
            max_class,
            fallback_class,
            min_confidence: Fix::ZERO,
        }
    }

    /// Whether the guard's own parameters are coherent (fallback within
    /// the clamp, confidence in `[0, 1]`).
    pub fn well_formed(&self) -> bool {
        self.fallback_class <= self.max_class
            && self.min_confidence >= Fix::ZERO
            && self.min_confidence <= Fix::ONE
    }

    /// Applies the guardrails to a raw prediction, returning the class
    /// the datapath may act on and whether a rail tripped.
    pub fn apply(&self, class: usize, confidence: Fix) -> (usize, bool) {
        if class > self.max_class {
            return (self.fallback_class, true);
        }
        if confidence < self.min_confidence {
            return (self.fallback_class, true);
        }
        (class, false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clamp_replaces_wild_classes() {
        let g = ModelGuard::clamp(3, 0);
        assert_eq!(g.apply(2, Fix::ONE), (2, false));
        assert_eq!(g.apply(3, Fix::ONE), (3, false));
        assert_eq!(g.apply(4, Fix::ONE), (0, true));
        assert_eq!(g.apply(usize::MAX, Fix::ONE), (0, true));
    }

    #[test]
    fn confidence_floor_falls_back() {
        let g = ModelGuard {
            max_class: 5,
            fallback_class: 1,
            min_confidence: Fix::HALF,
        };
        assert_eq!(g.apply(4, Fix::ONE), (4, false));
        assert_eq!(g.apply(4, Fix::HALF), (4, false), "boundary passes");
        assert_eq!(
            g.apply(4, Fix::from_f64(0.49)),
            (1, true),
            "below the floor falls back"
        );
    }

    #[test]
    fn well_formedness() {
        assert!(ModelGuard::clamp(3, 0).well_formed());
        assert!(ModelGuard::clamp(3, 3).well_formed());
        assert!(!ModelGuard::clamp(3, 4).well_formed());
        assert!(!ModelGuard {
            max_class: 1,
            fallback_class: 0,
            min_confidence: Fix::from_int(2),
        }
        .well_formed());
        assert!(!ModelGuard {
            max_class: 1,
            fallback_class: 0,
            min_confidence: Fix::from_int(-1),
        }
        .well_formed());
    }

    #[test]
    fn clamp_rail_takes_priority_over_confidence() {
        let g = ModelGuard {
            max_class: 2,
            fallback_class: 0,
            min_confidence: Fix::HALF,
        };
        // Wild class with high confidence still clamps.
        assert_eq!(g.apply(9, Fix::ONE), (0, true));
    }
}

rkd_testkit::impl_json_struct!(ModelGuard {
    max_class,
    fallback_class,
    min_confidence
});
