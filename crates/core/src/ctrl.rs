//! The control-plane API (`syscall_rmt()`).
//!
//! §3.1: "their policies are reconfigured via the control plane API.
//! This API supports adding, removing, modifying match/action entries
//! and ML models. For instance, the ML training component may
//! periodically update table entries to reflect the latest monitoring
//! data … Alternatively, the control plane relies on past prediction
//! accuracy to detect workload changes and adjust the table entries."
//!
//! [`CtrlRequest`] is the single serializable entry point userland uses
//! (the analogue of the `bpf(2)` multiplexer syscall); every request
//! maps onto one [`crate::machine::RmtMachine`] operation. The machine
//! methods remain directly callable for in-process embedding.

use crate::bytecode::ModelSlot;
use crate::error::VmError;
use crate::machine::{ExecMode, ProgId, ProgStats, RmtMachine};
use crate::maps::MapId;
use crate::obs;
use crate::prog::ModelSpec;
use crate::table::{Entry, MatchKey, TableId, TableStats};
use crate::verifier::{verify_with, VerifierConfig};

/// A control-plane request.
#[derive(Clone, Debug)]
pub enum CtrlRequest {
    /// Verify and install a program (`rmt_verify()` then
    /// `syscall_rmt()` in Figure 1).
    Install {
        /// The unverified program.
        prog: Box<crate::prog::RmtProgram>,
        /// Interpret or JIT.
        mode: ExecMode,
        /// RNG seed for reproducibility.
        seed: u64,
    },
    /// Remove an installed program.
    Remove {
        /// Target program.
        prog: ProgId,
    },
    /// Insert or replace a match/action entry.
    InsertEntry {
        /// Target program.
        prog: ProgId,
        /// Target table.
        table: TableId,
        /// The new entry.
        entry: Entry,
    },
    /// Remove an entry by key.
    RemoveEntry {
        /// Target program.
        prog: ProgId,
        /// Target table.
        table: TableId,
        /// Key of the entry to remove.
        key: MatchKey,
    },
    /// Hot-swap an ML model (the "periodically quantized and pushed to
    /// the kernel" update path).
    UpdateModel {
        /// Target program.
        prog: ProgId,
        /// Model slot to replace.
        slot: ModelSlot,
        /// Replacement model.
        spec: Box<ModelSpec>,
    },
    /// Write a map value (seed monitoring state).
    MapUpdate {
        /// Target program.
        prog: ProgId,
        /// Target map.
        map: MapId,
        /// Key.
        key: u64,
        /// Value.
        value: i64,
    },
    /// Read a map value (DP-noised for shared maps).
    MapLookup {
        /// Target program.
        prog: ProgId,
        /// Target map.
        map: MapId,
        /// Key.
        key: u64,
    },
    /// Read program statistics.
    QueryStats {
        /// Target program.
        prog: ProgId,
    },
    /// Read a program's optimizer statistics: pass-pipeline fire
    /// counts and instruction deltas from the last full compile, plus
    /// the current tail-call chain-fusion footprint.
    QueryOptStats {
        /// Target program.
        prog: ProgId,
    },
    /// Read table hit/miss statistics.
    QueryTableStats {
        /// Target program.
        prog: ProgId,
        /// Target table.
        table: TableId,
    },
    /// Read the remaining privacy budget.
    QueryPrivacyBudget {
        /// Target program.
        prog: ProgId,
    },
    /// Read a hook's firing count and latency histogram.
    HookStats {
        /// Hook name.
        hook: String,
    },
    /// Drain up to `max` datapath trace events (oldest first).
    TraceRead {
        /// Maximum events to drain.
        max: u64,
    },
    /// Reset the observability layer (counters, histograms, trace
    /// ring). Program and table statistics are untouched.
    ObsReset,
    /// Change a program's JIT optimization level (recompiles its
    /// actions through the optimize → re-verify → compile path;
    /// [`crate::opt::OptLevel::O0`] restores the unoptimized oracle
    /// bodies).
    SetOptLevel {
        /// Target program.
        prog: ProgId,
        /// New optimization level.
        level: crate::opt::OptLevel,
    },
    /// Resize the per-hook decision caches (0 disables caching).
    SetDecisionCacheCapacity {
        /// New capacity in cached flow keys per hook.
        capacity: u64,
    },
    /// Rotate the sharded datapath's flow→shard partition seed — the
    /// skew balancer's re-hash. Routed through the same journaled
    /// command log as every other mutation so a recovered
    /// [`crate::shard::ShardedMachine`] restores its partition. On a
    /// single machine (and inside each shard replica) this is a
    /// deliberate no-op: partitioning is a coordinator concern.
    SetPartitionSeed {
        /// New seed folded into [`crate::shard::ShardedMachine::shard_for_flow`].
        seed: u64,
    },
    /// Configure the sharded ingress skew balancer (no-op on a single
    /// machine, journaled like [`CtrlRequest::SetPartitionSeed`]).
    SetBalancerPolicy {
        /// Rebalance triggers when the deepest shard ingress queue
        /// exceeds `ratio_pct` percent of the mean depth (e.g. 200 =
        /// 2× the mean).
        ratio_pct: u64,
        /// …and is at least this deep — an absolute floor so
        /// near-idle rings never trigger a pointless re-hash.
        min_depth: u64,
    },
    /// Read the machine-wide datapath counters (fires, table
    /// hits/misses, decision-cache hits/misses/invalidations, …).
    QueryMachineCounters,
    /// Report the ground-truth outcome of one earlier model
    /// prediction — the feedback half of §3.1's "past prediction
    /// accuracy" loop. Updates the slot's confusion matrix and
    /// prequential-accuracy window.
    ReportOutcome {
        /// Target program.
        prog: ProgId,
        /// Model slot the prediction came from.
        slot: ModelSlot,
        /// The class the datapath served.
        predicted: i64,
        /// The class that turned out to be correct.
        actual: i64,
    },
    /// Read one model slot's prediction telemetry (serving counters,
    /// confusion matrix, windowed accuracy, drift flag).
    QueryModelStats {
        /// Target program.
        prog: ProgId,
        /// Model slot to read.
        slot: ModelSlot,
    },
    /// Read the flight recorder's buffered time-series frames
    /// (non-draining).
    FlightRead,
    /// Reconfigure span tracing: sample 1-in-2^`sample_shift` ingress
    /// events (>= 64 disables) into a ring bounded at `capacity`.
    SpanConfig {
        /// Sampling shift; the default is 6 (1-in-64).
        sample_shift: u32,
        /// Span-ring capacity per machine.
        capacity: u64,
    },
    /// Drain up to `max` recorded spans (oldest first).
    SpanRead {
        /// Maximum spans to return.
        max: u64,
    },
    /// Clear recorded spans and the stage profile (sampling
    /// configuration survives).
    SpanReset,
}

/// A control-plane response.
#[derive(Clone, Debug, PartialEq)]
pub enum CtrlResponse {
    /// Program installed under this id.
    Installed(ProgId),
    /// Operation completed with no payload.
    Ok,
    /// Whether a removal found its target.
    Removed(bool),
    /// A map read result.
    Value(Option<i64>),
    /// Program statistics.
    Stats(ProgStats),
    /// Optimizer statistics.
    OptStats(crate::opt::OptStats),
    /// Table statistics.
    TableStats(TableStats),
    /// Remaining privacy budget in milli-epsilon.
    PrivacyBudget(u64),
    /// Hook statistics (boxed: the histogram makes this variant large).
    HookStats(Box<obs::HookStats>),
    /// Drained trace events plus the cumulative dropped count.
    Trace(obs::TraceSnapshot),
    /// Machine-wide datapath counters.
    Counters(obs::MachineCounters),
    /// Model prediction telemetry (boxed: histograms and the confusion
    /// matrix make this variant large).
    ModelStats(Box<obs::ModelStatsSnapshot>),
    /// Flight-recorder frames (boxed: frames carry full counter sets).
    Flight(Box<obs::FlightSnapshot>),
    /// Drained spans plus the evict count (boxed: span batches are
    /// large).
    Spans(Box<obs::span::SpanSnapshot>),
}

/// Dispatches one control-plane request against a machine, using the
/// default verifier configuration for installs.
pub fn syscall_rmt(machine: &mut RmtMachine, req: CtrlRequest) -> Result<CtrlResponse, VmError> {
    syscall_rmt_with(machine, req, &VerifierConfig::default())
}

/// Dispatches one request with an explicit verifier configuration.
pub fn syscall_rmt_with(
    machine: &mut RmtMachine,
    req: CtrlRequest,
    vcfg: &VerifierConfig,
) -> Result<CtrlResponse, VmError> {
    match req {
        CtrlRequest::Install { prog, mode, seed } => {
            let vp = verify_with(*prog, vcfg)?;
            let id = machine.install_seeded(vp, mode, seed)?;
            Ok(CtrlResponse::Installed(id))
        }
        CtrlRequest::Remove { prog } => {
            machine.remove(prog)?;
            Ok(CtrlResponse::Ok)
        }
        CtrlRequest::InsertEntry { prog, table, entry } => {
            machine.insert_entry(prog, table, entry)?;
            Ok(CtrlResponse::Ok)
        }
        CtrlRequest::RemoveEntry { prog, table, key } => {
            let removed = machine.remove_entry(prog, table, &key)?;
            Ok(CtrlResponse::Removed(removed))
        }
        CtrlRequest::UpdateModel { prog, slot, spec } => {
            machine.update_model(prog, slot, *spec)?;
            Ok(CtrlResponse::Ok)
        }
        CtrlRequest::MapUpdate {
            prog,
            map,
            key,
            value,
        } => {
            machine.map_update(prog, map, key, value)?;
            Ok(CtrlResponse::Ok)
        }
        CtrlRequest::MapLookup { prog, map, key } => {
            let v = machine.map_lookup(prog, map, key)?;
            Ok(CtrlResponse::Value(v))
        }
        CtrlRequest::QueryStats { prog } => Ok(CtrlResponse::Stats(machine.stats(prog)?)),
        CtrlRequest::QueryOptStats { prog } => Ok(CtrlResponse::OptStats(machine.opt_stats(prog)?)),
        CtrlRequest::QueryTableStats { prog, table } => {
            Ok(CtrlResponse::TableStats(machine.table_stats(prog, table)?))
        }
        CtrlRequest::QueryPrivacyBudget { prog } => Ok(CtrlResponse::PrivacyBudget(
            machine.privacy_remaining(prog)?,
        )),
        CtrlRequest::HookStats { hook } => Ok(CtrlResponse::HookStats(Box::new(
            machine.hook_stats(&hook)?,
        ))),
        CtrlRequest::TraceRead { max } => Ok(CtrlResponse::Trace(
            machine.trace_read(max.min(usize::MAX as u64) as usize),
        )),
        CtrlRequest::ObsReset => {
            machine.obs_reset();
            Ok(CtrlResponse::Ok)
        }
        CtrlRequest::SetOptLevel { prog, level } => {
            machine.set_opt_level(prog, level)?;
            Ok(CtrlResponse::Ok)
        }
        CtrlRequest::SetDecisionCacheCapacity { capacity } => {
            machine.set_decision_cache_capacity(capacity.min(usize::MAX as u64) as usize);
            Ok(CtrlResponse::Ok)
        }
        // Sharding directives: meaningless on one machine (and on a
        // shard's own replica), but accepted so they replay cleanly
        // from the control journal and drain cleanly from the
        // sharded command log.
        CtrlRequest::SetPartitionSeed { .. } | CtrlRequest::SetBalancerPolicy { .. } => {
            Ok(CtrlResponse::Ok)
        }
        CtrlRequest::QueryMachineCounters => Ok(CtrlResponse::Counters(machine.machine_counters())),
        CtrlRequest::ReportOutcome {
            prog,
            slot,
            predicted,
            actual,
        } => {
            machine.report_outcome(prog, slot, predicted, actual)?;
            Ok(CtrlResponse::Ok)
        }
        CtrlRequest::QueryModelStats { prog, slot } => Ok(CtrlResponse::ModelStats(Box::new(
            machine.model_stats(prog, slot)?,
        ))),
        CtrlRequest::FlightRead => Ok(CtrlResponse::Flight(Box::new(machine.flight_snapshot()))),
        CtrlRequest::SpanConfig {
            sample_shift,
            capacity,
        } => {
            machine.set_span_config(sample_shift, capacity.min(usize::MAX as u64) as usize);
            Ok(CtrlResponse::Ok)
        }
        CtrlRequest::SpanRead { max } => Ok(CtrlResponse::Spans(Box::new(
            machine.span_read(max.min(usize::MAX as u64) as usize),
        ))),
        CtrlRequest::SpanReset => {
            machine.span_reset();
            Ok(CtrlResponse::Ok)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bytecode::{Action, Insn, Reg};
    use crate::prog::ProgramBuilder;
    use crate::table::{ActionId, MatchKind};

    fn prog() -> crate::prog::RmtProgram {
        let mut b = ProgramBuilder::new("ctl");
        let pid = b.field_readonly("pid");
        let a = b.action(Action::new(
            "ret9",
            vec![
                Insn::LdImm {
                    dst: Reg(0),
                    imm: 9,
                },
                Insn::Exit,
            ],
        ));
        b.table("t", "h", &[pid], MatchKind::Exact, Some(a), 8);
        b.map("m", crate::maps::MapKind::Hash, 8);
        b.build()
    }

    #[test]
    fn full_lifecycle_via_syscall() {
        let mut m = RmtMachine::new();
        let id = match syscall_rmt(
            &mut m,
            CtrlRequest::Install {
                prog: Box::new(prog()),
                mode: ExecMode::Jit,
                seed: 1,
            },
        )
        .unwrap()
        {
            CtrlResponse::Installed(id) => id,
            other => panic!("unexpected {other:?}"),
        };
        // Entry management.
        syscall_rmt(
            &mut m,
            CtrlRequest::InsertEntry {
                prog: id,
                table: TableId(0),
                entry: Entry {
                    key: MatchKey::Exact(vec![1]),
                    priority: 0,
                    action: ActionId(0),
                    arg: 0,
                },
            },
        )
        .unwrap();
        let removed = syscall_rmt(
            &mut m,
            CtrlRequest::RemoveEntry {
                prog: id,
                table: TableId(0),
                key: MatchKey::Exact(vec![1]),
            },
        )
        .unwrap();
        assert_eq!(removed, CtrlResponse::Removed(true));
        // Maps.
        syscall_rmt(
            &mut m,
            CtrlRequest::MapUpdate {
                prog: id,
                map: MapId(0),
                key: 4,
                value: 44,
            },
        )
        .unwrap();
        assert_eq!(
            syscall_rmt(
                &mut m,
                CtrlRequest::MapLookup {
                    prog: id,
                    map: MapId(0),
                    key: 4
                }
            )
            .unwrap(),
            CtrlResponse::Value(Some(44))
        );
        // Stats.
        let mut ctxt = crate::ctxt::Ctxt::from_values(vec![5]);
        m.fire("h", &mut ctxt);
        match syscall_rmt(&mut m, CtrlRequest::QueryStats { prog: id }).unwrap() {
            CtrlResponse::Stats(s) => assert_eq!(s.invocations, 1),
            other => panic!("unexpected {other:?}"),
        }
        match syscall_rmt(
            &mut m,
            CtrlRequest::QueryTableStats {
                prog: id,
                table: TableId(0),
            },
        )
        .unwrap()
        {
            CtrlResponse::TableStats(ts) => assert_eq!(ts.misses, 1),
            other => panic!("unexpected {other:?}"),
        }
        match syscall_rmt(&mut m, CtrlRequest::QueryPrivacyBudget { prog: id }).unwrap() {
            CtrlResponse::PrivacyBudget(b) => assert!(b > 0),
            other => panic!("unexpected {other:?}"),
        }
        // Removal.
        assert_eq!(
            syscall_rmt(&mut m, CtrlRequest::Remove { prog: id }).unwrap(),
            CtrlResponse::Ok
        );
        assert!(syscall_rmt(&mut m, CtrlRequest::Remove { prog: id }).is_err());
    }

    #[test]
    fn query_opt_stats_reports_compile_telemetry() {
        let mut m = RmtMachine::new();
        let id = match syscall_rmt(
            &mut m,
            CtrlRequest::Install {
                prog: Box::new(prog()),
                mode: ExecMode::Jit,
                seed: 1,
            },
        )
        .unwrap()
        {
            CtrlResponse::Installed(id) => id,
            other => panic!("unexpected {other:?}"),
        };
        match syscall_rmt(&mut m, CtrlRequest::QueryOptStats { prog: id }).unwrap() {
            CtrlResponse::OptStats(os) => {
                assert!(os.insns_before > 0, "{os:?}");
                assert!(os.insns_after <= os.insns_before, "{os:?}");
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(syscall_rmt(&mut m, CtrlRequest::QueryOptStats { prog: ProgId(99) }).is_err());
    }

    #[test]
    fn set_opt_level_round_trips_through_the_ctrl_plane() {
        use crate::opt::OptLevel;
        let mut m = RmtMachine::new();
        let id = match syscall_rmt(
            &mut m,
            CtrlRequest::Install {
                prog: Box::new(prog()),
                mode: ExecMode::Jit,
                seed: 1,
            },
        )
        .unwrap()
        {
            CtrlResponse::Installed(id) => id,
            other => panic!("unexpected {other:?}"),
        };
        assert_eq!(m.opt_level(id).unwrap(), OptLevel::O2);
        assert_eq!(
            syscall_rmt(
                &mut m,
                CtrlRequest::SetOptLevel {
                    prog: id,
                    level: OptLevel::O0,
                },
            )
            .unwrap(),
            CtrlResponse::Ok
        );
        assert_eq!(m.opt_level(id).unwrap(), OptLevel::O0);
        assert!(syscall_rmt(
            &mut m,
            CtrlRequest::SetOptLevel {
                prog: crate::machine::ProgId(77),
                level: OptLevel::O2,
            },
        )
        .is_err());
    }

    #[test]
    fn install_runs_the_verifier() {
        let mut m = RmtMachine::new();
        let mut bad = prog();
        // Corrupt: action that falls off the end.
        bad.actions[0].code.pop();
        bad.actions[0].code.pop();
        bad.actions[0].code.push(Insn::LdImm {
            dst: Reg(0),
            imm: 1,
        });
        let err = syscall_rmt(
            &mut m,
            CtrlRequest::Install {
                prog: Box::new(bad),
                mode: ExecMode::Interp,
                seed: 0,
            },
        )
        .unwrap_err();
        assert!(matches!(err, VmError::Verify(_)));
        assert_eq!(m.program_count(), 0);
    }

    #[test]
    fn observability_requests() {
        let mut m = RmtMachine::new();
        m.set_obs_config(crate::obs::ObsConfig {
            trace_fires: true,
            trace_capacity: 2,
            sample_shift: 0, // Time every firing.
            ..crate::obs::ObsConfig::default()
        });
        syscall_rmt(
            &mut m,
            CtrlRequest::Install {
                prog: Box::new(prog()),
                mode: ExecMode::Interp,
                seed: 1,
            },
        )
        .unwrap();
        for _ in 0..4 {
            let mut ctxt = crate::ctxt::Ctxt::from_values(vec![5]);
            m.fire("h", &mut ctxt);
        }
        // HookStats: fires counted, latency histogram populated.
        match syscall_rmt(
            &mut m,
            CtrlRequest::HookStats {
                hook: "h".to_string(),
            },
        )
        .unwrap()
        {
            CtrlResponse::HookStats(hs) => {
                assert_eq!(hs.fires, 4);
                assert_eq!(hs.hist.count(), 4);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(syscall_rmt(
            &mut m,
            CtrlRequest::HookStats {
                hook: "nope".to_string(),
            },
        )
        .is_err());
        // TraceRead: 1 Install + 4 Fire events through a 2-slot ring.
        match syscall_rmt(&mut m, CtrlRequest::TraceRead { max: 10 }).unwrap() {
            CtrlResponse::Trace(t) => {
                assert_eq!(t.events.len(), 2);
                assert_eq!(t.dropped, 3);
            }
            other => panic!("unexpected {other:?}"),
        }
        // ObsReset: counters and hook stats zeroed.
        assert_eq!(
            syscall_rmt(&mut m, CtrlRequest::ObsReset).unwrap(),
            CtrlResponse::Ok
        );
        match syscall_rmt(
            &mut m,
            CtrlRequest::HookStats {
                hook: "h".to_string(),
            },
        )
        .unwrap()
        {
            CtrlResponse::HookStats(hs) => {
                assert_eq!(hs.fires, 0);
                assert_eq!(hs.hist.count(), 0);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(m.machine_counters().fires, 0);
    }

    #[test]
    fn decision_cache_requests() {
        let mut m = RmtMachine::new();
        assert_eq!(
            syscall_rmt(
                &mut m,
                CtrlRequest::SetDecisionCacheCapacity { capacity: 16 }
            )
            .unwrap(),
            CtrlResponse::Ok
        );
        assert_eq!(m.decision_cache_capacity(), 16);
        match syscall_rmt(&mut m, CtrlRequest::QueryMachineCounters).unwrap() {
            CtrlResponse::Counters(c) => {
                assert_eq!(c.fires, 0);
                assert_eq!(c.decision_cache_hits, 0);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn model_telemetry_requests() {
        use rkd_ml::cost::LatencyClass;
        use rkd_ml::fixed::Fix;
        use rkd_ml::svm::IntSvm;
        // One-model program; the SVM predicts 1 for positive x.
        let mut b = ProgramBuilder::new("mt");
        let f = b.field_readonly("x");
        let slot = b.model(
            "svm",
            ModelSpec::Svm(IntSvm {
                weights: vec![Fix::ONE],
                bias: Fix::ZERO,
            }),
            LatencyClass::Scheduler,
        );
        let a = b.action(Action::new(
            "ml",
            vec![
                Insn::VectorLdCtxt {
                    dst: crate::bytecode::VReg(0),
                    base: f,
                    len: 1,
                },
                Insn::CallMl {
                    model: slot,
                    src: crate::bytecode::VReg(0),
                },
                Insn::Exit,
            ],
        ));
        b.table("t", "h", &[f], MatchKind::Exact, Some(a), 4);
        let mut m = RmtMachine::new();
        let id = match syscall_rmt(
            &mut m,
            CtrlRequest::Install {
                prog: Box::new(b.build()),
                mode: ExecMode::Interp,
                seed: 1,
            },
        )
        .unwrap()
        {
            CtrlResponse::Installed(id) => id,
            other => panic!("unexpected {other:?}"),
        };
        let mut ctxt = crate::ctxt::Ctxt::from_values(vec![3]);
        m.fire("h", &mut ctxt);
        // Feed ground truth: one hit, one miss.
        for actual in [1, 0] {
            assert_eq!(
                syscall_rmt(
                    &mut m,
                    CtrlRequest::ReportOutcome {
                        prog: id,
                        slot,
                        predicted: 1,
                        actual,
                    },
                )
                .unwrap(),
                CtrlResponse::Ok
            );
        }
        match syscall_rmt(&mut m, CtrlRequest::QueryModelStats { prog: id, slot }).unwrap() {
            CtrlResponse::ModelStats(ms) => {
                assert_eq!(ms.served, 1);
                assert_eq!(ms.outcomes, 2);
                assert_eq!(ms.hits, 1);
                assert_eq!(ms.acc_permille, 500);
                assert_eq!(ms.name, "svm");
            }
            other => panic!("unexpected {other:?}"),
        }
        // Unknown slot errors.
        assert!(syscall_rmt(
            &mut m,
            CtrlRequest::QueryModelStats {
                prog: id,
                slot: ModelSlot(7),
            },
        )
        .is_err());
        // FlightRead returns the (empty-so-far) recorder contents.
        match syscall_rmt(&mut m, CtrlRequest::FlightRead).unwrap() {
            CtrlResponse::Flight(fs) => {
                assert_eq!(
                    fs.interval,
                    crate::obs::ObsConfig::default().flight_interval
                );
                assert!(fs.frames.is_empty(), "only 1 fire, interval not reached");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn requests_are_debuggable_and_cloneable() {
        let req = CtrlRequest::QueryStats { prog: ProgId(3) };
        let req2 = req.clone();
        assert!(format!("{req2:?}").contains("QueryStats"));
        let resp = CtrlResponse::PrivacyBudget(7);
        assert_eq!(resp, resp.clone());
    }
}

rkd_testkit::impl_json_enum!(CtrlRequest {
    Install { prog, mode, seed },
    Remove { prog },
    InsertEntry { prog, table, entry },
    RemoveEntry { prog, table, key },
    UpdateModel { prog, slot, spec },
    MapUpdate {
        prog,
        map,
        key,
        value
    },
    MapLookup { prog, map, key },
    QueryStats { prog },
    QueryOptStats { prog },
    QueryTableStats { prog, table },
    QueryPrivacyBudget { prog },
    HookStats { hook },
    TraceRead { max },
    ObsReset,
    SetOptLevel { prog, level },
    SetDecisionCacheCapacity { capacity },
    SetPartitionSeed { seed },
    SetBalancerPolicy { ratio_pct, min_depth },
    QueryMachineCounters,
    ReportOutcome {
        prog,
        slot,
        predicted,
        actual
    },
    QueryModelStats { prog, slot },
    FlightRead,
    SpanConfig {
        sample_shift,
        capacity
    },
    SpanRead { max },
    SpanReset,
});

rkd_testkit::impl_json_enum!(CtrlResponse {
    Installed(prog),
    Ok,
    Removed(found),
    Value(value),
    Stats(stats),
    OptStats(stats),
    TableStats(stats),
    PrivacyBudget(remaining),
    HookStats(stats),
    Trace(snapshot),
    Counters(counters),
    ModelStats(stats),
    Flight(snapshot),
    Spans(snapshot),
});
