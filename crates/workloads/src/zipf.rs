//! Zipf-distributed flow-id streams for skew experiments.
//!
//! The multi-core datapath hashes flows onto shards, so a uniform
//! flow population balances by construction — but real traffic is
//! skewed: a handful of elephant flows carry most events. This module
//! generates that shape deterministically so the shard balancer
//! (`rkd_core::shard`) can be driven and benchmarked: rank `r`
//! (1-based) is sampled with probability proportional to `1/r^s`, via
//! a CDF table built once and a binary search per sample.
//!
//! Ranks are mapped to *scrambled* 64-bit flow ids. Without the
//! permutation the hottest flows would be the smallest integers,
//! which correlates hotness with hash-bucket position and quietly
//! changes what the partition hash sees; scrambled ids make the
//! sampler adversarial to any particular seed, which is what the
//! skew-rebalancing experiments need.

use rkd_testkit::rng::Rng;

/// Builds the CDF table for Zipf(`s`) over `population` ranks:
/// `cdf[r]` is the probability of drawing a rank `<= r` (0-based).
/// Shared by [`ZipfFlows`] and the page-trace generator
/// [`crate::mem::zipf`].
pub(crate) fn cdf(population: usize, s: f64) -> Vec<f64> {
    let population = population.max(1);
    let weights: Vec<f64> = (1..=population).map(|k| 1.0 / (k as f64).powf(s)).collect();
    let total: f64 = weights.iter().sum();
    let mut cdf = Vec::with_capacity(population);
    let mut acc = 0.0;
    for w in &weights {
        acc += w / total;
        cdf.push(acc);
    }
    cdf
}

/// Maps a uniform draw `u ∈ [0, 1)` to a 0-based rank by binary
/// search over the CDF table.
pub(crate) fn sample_rank(cdf: &[f64], u: f64) -> usize {
    cdf.partition_point(|&c| c < u).min(cdf.len() - 1)
}

/// SplitMix64 — the same mix the shard partition hash uses, applied
/// here with an unrelated constant offset so sampler ids don't
/// trivially cancel against `shard_for_flow`.
fn scramble(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A Zipf(`s`) sampler over a fixed population of flow ids.
///
/// Construction is O(population); each sample is one RNG draw plus
/// one binary search. The same `(population, s)` always yields the
/// same rank→flow-id mapping, and the same seeded RNG always yields
/// the same stream — replay experiments depend on both.
pub struct ZipfFlows {
    cdf: Vec<f64>,
    ids: Vec<u64>,
}

impl ZipfFlows {
    /// Builds a sampler over `population` flows (clamped to ≥ 1) with
    /// exponent `s`. `s = 0` degenerates to uniform; `s ≈ 1.1` is the
    /// classic heavy-tail used by the skew benchmarks.
    pub fn new(population: usize, s: f64) -> ZipfFlows {
        let cdf = cdf(population, s);
        let ids = (0..cdf.len() as u64).map(scramble).collect();
        ZipfFlows { cdf, ids }
    }

    /// Number of distinct flow ids the sampler can emit.
    pub fn population(&self) -> usize {
        self.ids.len()
    }

    /// The flow id at 0-based popularity rank `rank` (rank 0 is the
    /// hottest flow).
    pub fn flow_at_rank(&self, rank: usize) -> u64 {
        self.ids[rank]
    }

    /// Draws one flow id.
    pub fn sample(&self, rng: &mut impl Rng) -> u64 {
        let u: f64 = rng.gen();
        self.ids[sample_rank(&self.cdf, u)]
    }

    /// Draws a stream of `n` flow ids.
    pub fn stream(&self, n: usize, rng: &mut impl Rng) -> Vec<u64> {
        (0..n).map(|_| self.sample(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rkd_testkit::rng::{SeedableRng, StdRng};
    use std::collections::HashMap;

    #[test]
    fn ranks_map_to_distinct_ids() {
        let z = ZipfFlows::new(4096, 1.1);
        let mut seen = std::collections::HashSet::new();
        for r in 0..z.population() {
            assert!(seen.insert(z.flow_at_rank(r)), "duplicate id at rank {r}");
        }
    }

    #[test]
    fn streams_are_deterministic_given_seed() {
        let z = ZipfFlows::new(1024, 1.1);
        let a = z.stream(2000, &mut StdRng::seed_from_u64(9));
        let b = z.stream(2000, &mut StdRng::seed_from_u64(9));
        assert_eq!(a, b);
    }

    #[test]
    fn heavy_tail_concentrates_on_top_ranks() {
        let z = ZipfFlows::new(1024, 1.1);
        let mut rng = StdRng::seed_from_u64(17);
        let stream = z.stream(20_000, &mut rng);
        let mut counts: HashMap<u64, usize> = HashMap::new();
        for f in &stream {
            *counts.entry(*f).or_default() += 1;
        }
        // Top 16 of 1024 ranks (1.6%) must carry a large share of the
        // stream at s = 1.1 — the imbalance the balancer exists for.
        let top: usize = (0..16)
            .map(|r| counts.get(&z.flow_at_rank(r)).copied().unwrap_or(0))
            .sum();
        let share = top as f64 / stream.len() as f64;
        assert!(share > 0.35, "top-16 share {share:.3} unexpectedly flat");
        // And the hottest rank must dominate any single cold rank.
        let hot = counts.get(&z.flow_at_rank(0)).copied().unwrap_or(0);
        let cold = counts.get(&z.flow_at_rank(1000)).copied().unwrap_or(0);
        assert!(
            hot > 10 * cold.max(1),
            "rank 0 ({hot}) vs rank 1000 ({cold})"
        );
    }

    #[test]
    fn zero_exponent_is_roughly_uniform() {
        let z = ZipfFlows::new(64, 0.0);
        let mut rng = StdRng::seed_from_u64(23);
        let stream = z.stream(64_000, &mut rng);
        let mut counts: HashMap<u64, usize> = HashMap::new();
        for f in &stream {
            *counts.entry(*f).or_default() += 1;
        }
        let (min, max) = counts
            .values()
            .fold((usize::MAX, 0), |(lo, hi), &c| (lo.min(c), hi.max(c)));
        assert!(max < 2 * min, "uniform stream skewed: min {min}, max {max}");
    }

    #[test]
    fn binary_search_matches_linear_cdf_walk() {
        let table = cdf(512, 1.3);
        let mut rng = StdRng::seed_from_u64(31);
        for _ in 0..2000 {
            let u: f64 = rng.gen();
            let fast = sample_rank(&table, u);
            let slow = table
                .iter()
                .position(|&c| c >= u)
                .unwrap_or(table.len() - 1);
            assert_eq!(fast, slow, "diverged at u = {u}");
        }
    }
}
