//! # rkd-workloads — synthetic workload and trace generators
//!
//! Reproduces the *structure* of the paper's evaluation workloads
//! without the unavailable originals (OpenCV, NumPy, PARSEC): page
//! access traces for the Table 1 prefetching study ([`mem`], [`trace`])
//! and scheduler task batches for the Table 2 CFS study ([`sched`]).
//! Every substitution is documented in `DESIGN.md` §2.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod mem;
pub mod sched;
pub mod trace;
pub mod zipf;

pub use trace::PageTrace;
