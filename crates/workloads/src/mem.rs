//! Page-access trace generators for the Table 1 workloads.
//!
//! Substitution (DESIGN.md #2): the paper runs OpenCV video resizing
//! and a NumPy matrix convolution against a swap-backed memory cgroup;
//! we generate synthetic traces with the same access *structure*:
//!
//! - **Video resize** (bilinear downscale by 3): each destination row
//!   reads two adjacent source rows out of every three, producing an
//!   alternating stride pair in the read phase, followed by a
//!   sequential destination write phase. Majority-stride detection
//!   (Leap) can capture only one of the alternating strides and
//!   sequential readahead only the write phase, but a decision tree
//!   over a short delta history learns the whole cycle.
//! - **Matrix convolution** (2-row kernel sliding down a matrix):
//!   overlapping row reads interleaved with output writes. Exactly one
//!   third of the deltas are `+1` and the other two thirds are two
//!   large constant jumps, so both baselines capture at most a third
//!   of the stream — matching Table 1, where Linux achieves only
//!   12.5% accuracy on this workload — while the three-symbol cycle is
//!   trivially learnable.
//!
//! Plus reference patterns (sequential / uniform random / Zipf) used by
//! sanity tests and ablations.

use crate::trace::PageTrace;
use rkd_testkit::rng::Rng;

/// Parameters for the video-resize-like generator.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct VideoResizeParams {
    /// Number of frames processed.
    pub frames: usize,
    /// Source frame height in rows (multiple of 3 recommended).
    pub src_rows: usize,
    /// Pages per source row.
    pub pages_per_row: usize,
}

impl Default for VideoResizeParams {
    fn default() -> VideoResizeParams {
        VideoResizeParams {
            frames: 40,
            src_rows: 63,
            pages_per_row: 4,
        }
    }
}

/// Generates an OpenCV-video-resize-like page trace.
///
/// Bilinear 3:1 downscale with column subsampling: for each destination
/// row `d`, the filter reads the first two pages of source rows `3d`
/// and `3d + 1` (delta cycle `+1, +3, +1, +7` for 4-page rows), then
/// writes the destination frame sequentially. Frame buffers are
/// allocated at power-of-two boundaries, as an allocator would, so page
/// offsets within a frame are stable across frames — structure a
/// learned model can exploit but stride detectors cannot.
pub fn video_resize(p: &VideoResizeParams) -> PageTrace {
    let frame_alloc = (p.src_rows * p.pages_per_row).next_power_of_two() as u64;
    let dst_rows = p.src_rows / 3;
    let dst_alloc = dst_rows.next_power_of_two() as u64;
    let dst_base = 1_000_000u64;
    let mut accesses = Vec::new();
    for f in 0..p.frames {
        let src_frame = f as u64 * frame_alloc;
        let dst_frame = dst_base + f as u64 * dst_alloc;
        // Read phase: two pages from each of rows 3d and 3d+1.
        for d in 0..dst_rows {
            let row_a = src_frame + (3 * d * p.pages_per_row) as u64;
            let row_b = src_frame + ((3 * d + 1) * p.pages_per_row) as u64;
            accesses.push(row_a);
            accesses.push(row_a + 1);
            accesses.push(row_b);
            accesses.push(row_b + 1);
        }
        // Write phase: one page per destination row, sequential.
        for i in 0..dst_rows {
            accesses.push(dst_frame + i as u64);
        }
    }
    PageTrace::new("video_resize", accesses)
}

/// Parameters for the matrix-convolution-like generator.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MatrixConvParams {
    /// Output rows per pass.
    pub rows: usize,
    /// Rows processed per tile (blocked convolution).
    pub tile: usize,
    /// Number of full passes (convolution layers applied).
    pub passes: usize,
}

impl Default for MatrixConvParams {
    fn default() -> MatrixConvParams {
        MatrixConvParams {
            rows: 512,
            tile: 8,
            passes: 4,
        }
    }
}

/// Pages per input row (reads touch the first page of each row).
const CONV_IN_STRIDE: u64 = 3;
/// Pages per output row (writes touch the first two pages of each row).
const CONV_OUT_STRIDE: u64 = 7;

/// Generates a NumPy-matrix-convolution-like page trace: blocked
/// (tiled) convolution that sweeps a tile of input rows (stride-3 page
/// lattice), then flushes the corresponding output rows (stride-7
/// lattice, two pages per row).
///
/// The two lattices are deliberately incommensurate: a single-stride
/// prefetcher that locks onto `+3` fetches garbage inside the output
/// region and vice versa, while the delta *alphabet* (`+3`, `+1`, `+6`
/// plus rare tile-boundary jumps) stays tiny and learnable.
pub fn matrix_conv(p: &MatrixConvParams) -> PageTrace {
    let out_base = 2_000_000u64;
    let mut accesses = Vec::new();
    let tile = p.tile.max(1);
    for pass in 0..p.passes {
        let in_base = pass as u64 * 100_000;
        let out = out_base + pass as u64 * 100_000;
        let mut start = 0usize;
        while start < p.rows {
            let end = (start + tile).min(p.rows);
            // Read sweep: input rows start..=end (kernel height 2 means
            // one extra row; consecutive windows share rows, so the
            // sweep visits each row once).
            for m in start..=end.min(p.rows) {
                accesses.push(in_base + m as u64 * CONV_IN_STRIDE);
            }
            // Write flush: output rows of the tile, two pages each.
            for k in start..end {
                accesses.push(out + k as u64 * CONV_OUT_STRIDE);
                accesses.push(out + k as u64 * CONV_OUT_STRIDE + 1);
            }
            start = end;
        }
    }
    PageTrace::new("matrix_conv", accesses)
}

/// A purely sequential trace (`base..base+n`), the readahead best case.
pub fn sequential(base: u64, n: usize) -> PageTrace {
    PageTrace::new("sequential", (0..n as u64).map(|i| base + i).collect())
}

/// A uniform random trace over `[0, space)`, the worst case for every
/// prefetcher (useful pages are unpredictable by construction).
pub fn uniform_random(space: u64, n: usize, rng: &mut impl Rng) -> PageTrace {
    PageTrace::new(
        "uniform_random",
        (0..n).map(|_| rng.gen_range(0..space.max(1))).collect(),
    )
}

/// A Zipf-distributed trace (hot pages dominate), approximating cache-
/// friendly irregular workloads. `s` is the Zipf exponent.
pub fn zipf(space: u64, n: usize, s: f64, rng: &mut impl Rng) -> PageTrace {
    // CDF built once (shared with the flow sampler in [`crate::zipf`]);
    // page number == popularity rank, the shape prefetch studies want.
    let cdf = crate::zipf::cdf(space.max(1) as usize, s);
    let accesses = (0..n)
        .map(|_| {
            let u: f64 = rng.gen();
            crate::zipf::sample_rank(&cdf, u) as u64
        })
        .collect();
    PageTrace::new("zipf", accesses)
}

/// Fraction of the delta stream covered by its `k` most frequent
/// symbols — a learnability proxy: high coverage with small `k` means a
/// short-history model can predict most transitions.
pub fn top_k_delta_coverage(trace: &PageTrace, k: usize) -> f64 {
    let deltas = trace.deltas();
    if deltas.is_empty() {
        return 0.0;
    }
    let mut counts: std::collections::HashMap<i64, usize> = std::collections::HashMap::new();
    for d in &deltas {
        *counts.entry(*d).or_default() += 1;
    }
    let mut freqs: Vec<usize> = counts.values().copied().collect();
    freqs.sort_unstable_by(|a, b| b.cmp(a));
    let covered: usize = freqs.iter().take(k).sum();
    covered as f64 / deltas.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use rkd_testkit::rng::SeedableRng;
    use rkd_testkit::rng::StdRng;

    #[test]
    fn video_resize_defeats_baselines_but_is_learnable() {
        let t = video_resize(&VideoResizeParams::default());
        assert!(t.len() > 1000);
        // Sequential runs are short (length 2 in the read phase), so
        // readahead captures well under two thirds of the stream.
        assert!(
            t.sequential_fraction() < 0.65,
            "seq {}",
            t.sequential_fraction()
        );
        // No single stride dominates either.
        assert!(
            t.dominant_stride_fraction() < 0.65,
            "dom {}",
            t.dominant_stride_fraction()
        );
        // But a handful of delta symbols cover almost everything.
        let cov = top_k_delta_coverage(&t, 4);
        assert!(cov > 0.95, "top-4 coverage {cov}");
    }

    #[test]
    fn matrix_conv_is_harder_for_baselines_than_video() {
        let t = matrix_conv(&MatrixConvParams::default());
        assert!(t.len() > 500);
        let video = video_resize(&VideoResizeParams::default());
        // Paper: Linux accuracy 12.5% (matrix) vs 40.7% (video).
        assert!(t.sequential_fraction() < video.sequential_fraction());
        assert!(t.dominant_stride_fraction() < 0.45);
        // Three constant symbols cover essentially the whole stream.
        let cov = top_k_delta_coverage(&t, 3);
        assert!(cov > 0.9, "top-3 coverage {cov}");
    }

    #[test]
    fn sequential_is_fully_sequential() {
        let t = sequential(100, 50);
        assert_eq!(t.sequential_fraction(), 1.0);
        assert_eq!(t.accesses[0], 100);
        assert_eq!(t.accesses[49], 149);
        assert_eq!(top_k_delta_coverage(&t, 1), 1.0);
    }

    #[test]
    fn uniform_random_has_no_structure() {
        let mut rng = StdRng::seed_from_u64(61);
        let t = uniform_random(100_000, 2_000, &mut rng);
        assert!(t.sequential_fraction() < 0.01);
        assert!(t.dominant_stride_fraction() < 0.01);
        assert!(top_k_delta_coverage(&t, 4) < 0.05);
    }

    #[test]
    fn zipf_concentrates_on_hot_pages() {
        let mut rng = StdRng::seed_from_u64(62);
        let t = zipf(1_000, 5_000, 1.2, &mut rng);
        assert_eq!(t.len(), 5_000);
        // The hottest page should appear far more than 1/1000 of the time.
        let zero_count = t.accesses.iter().filter(|&&p| p == 0).count();
        assert!(zero_count > 200, "hot page count {zero_count}");
        assert!(t.unique_pages() < 1_000);
    }

    #[test]
    fn top_k_coverage_edge_cases() {
        let empty = PageTrace::new("e", vec![]);
        assert_eq!(top_k_delta_coverage(&empty, 3), 0.0);
        let single = PageTrace::new("s", vec![9]);
        assert_eq!(top_k_delta_coverage(&single, 3), 0.0);
    }

    #[test]
    fn generators_are_deterministic_given_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        assert_eq!(
            uniform_random(500, 100, &mut a),
            uniform_random(500, 100, &mut b)
        );
        assert_eq!(
            video_resize(&VideoResizeParams::default()),
            video_resize(&VideoResizeParams::default())
        );
        assert_eq!(
            matrix_conv(&MatrixConvParams::default()),
            matrix_conv(&MatrixConvParams::default())
        );
    }
}
