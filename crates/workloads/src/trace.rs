//! Page-access traces: the record/replay substrate for prefetch studies.
//!
//! The paper's prototype collects "page access traces for each process"
//! (§4). Our simulator does the same; this module defines the trace
//! container, basic structure statistics (used to sanity-check that
//! generators produce the access structure they claim), and a compact
//! binary encoding for storing traces on disk.

use std::collections::HashSet;

/// A sequence of page accesses by one process.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PageTrace {
    /// Trace name (workload identifier).
    pub name: String,
    /// Accessed page numbers, in order.
    pub accesses: Vec<u64>,
}

impl PageTrace {
    /// Creates a named trace.
    pub fn new(name: &str, accesses: Vec<u64>) -> PageTrace {
        PageTrace {
            name: name.to_string(),
            accesses,
        }
    }

    /// Number of accesses.
    pub fn len(&self) -> usize {
        self.accesses.len()
    }

    /// Returns `true` for an empty trace.
    pub fn is_empty(&self) -> bool {
        self.accesses.is_empty()
    }

    /// Number of distinct pages touched.
    pub fn unique_pages(&self) -> usize {
        self.accesses.iter().collect::<HashSet<_>>().len()
    }

    /// Fraction of accesses whose delta from the previous access is
    /// exactly +1 (what sequential readahead exploits).
    pub fn sequential_fraction(&self) -> f64 {
        if self.accesses.len() < 2 {
            return 0.0;
        }
        let seq = self
            .accesses
            .windows(2)
            .filter(|w| w[1] == w[0].wrapping_add(1))
            .count();
        seq as f64 / (self.accesses.len() - 1) as f64
    }

    /// Fraction of accesses explained by the single most common stride
    /// (what Leap's majority-trend detection exploits).
    pub fn dominant_stride_fraction(&self) -> f64 {
        if self.accesses.len() < 2 {
            return 0.0;
        }
        let mut counts: std::collections::HashMap<i64, usize> = std::collections::HashMap::new();
        for w in self.accesses.windows(2) {
            let d = w[1] as i64 - w[0] as i64;
            *counts.entry(d).or_default() += 1;
        }
        let max = counts.values().copied().max().unwrap_or(0);
        max as f64 / (self.accesses.len() - 1) as f64
    }

    /// The sequence of deltas between consecutive accesses.
    pub fn deltas(&self) -> Vec<i64> {
        self.accesses
            .windows(2)
            .map(|w| w[1] as i64 - w[0] as i64)
            .collect()
    }

    /// Encodes the trace into a compact binary form (name length, name,
    /// count, delta-encoded varint-free i64 pages). All integers are
    /// big-endian.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(16 + self.name.len() + self.accesses.len() * 8);
        buf.extend_from_slice(&(self.name.len() as u32).to_be_bytes());
        buf.extend_from_slice(self.name.as_bytes());
        buf.extend_from_slice(&(self.accesses.len() as u64).to_be_bytes());
        let mut prev = 0u64;
        for &a in &self.accesses {
            buf.extend_from_slice(&(a.wrapping_sub(prev) as i64).to_be_bytes());
            prev = a;
        }
        buf
    }

    /// Decodes a trace produced by [`PageTrace::encode`].
    ///
    /// Returns `None` on malformed input.
    pub fn decode(data: &[u8]) -> Option<PageTrace> {
        fn take<const N: usize>(data: &mut &[u8]) -> Option<[u8; N]> {
            if data.len() < N {
                return None;
            }
            let (head, rest) = data.split_at(N);
            *data = rest;
            Some(head.try_into().expect("split length"))
        }
        let mut data = data;
        let name_len = u32::from_be_bytes(take::<4>(&mut data)?) as usize;
        if data.len() < name_len {
            return None;
        }
        let (name_bytes, rest) = data.split_at(name_len);
        data = rest;
        let name = String::from_utf8(name_bytes.to_vec()).ok()?;
        let count = u64::from_be_bytes(take::<8>(&mut data)?) as usize;
        if data.len() < count.checked_mul(8)? {
            return None;
        }
        let mut accesses = Vec::with_capacity(count);
        let mut prev = 0u64;
        for _ in 0..count {
            let delta = i64::from_be_bytes(take::<8>(&mut data).expect("length checked"));
            prev = prev.wrapping_add(delta as u64);
            accesses.push(prev);
        }
        Some(PageTrace { name, accesses })
    }
}

rkd_testkit::impl_json_struct!(PageTrace { name, accesses });

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn structure_statistics() {
        let t = PageTrace::new("t", vec![0, 1, 2, 10, 11, 20]);
        assert_eq!(t.len(), 6);
        assert_eq!(t.unique_pages(), 6);
        // Deltas: 1,1,8,1,9 -> 3/5 sequential.
        assert!((t.sequential_fraction() - 0.6).abs() < 1e-12);
        assert!((t.dominant_stride_fraction() - 0.6).abs() < 1e-12);
        assert_eq!(t.deltas(), vec![1, 1, 8, 1, 9]);
    }

    #[test]
    fn empty_and_singleton_traces() {
        let e = PageTrace::new("e", vec![]);
        assert!(e.is_empty());
        assert_eq!(e.sequential_fraction(), 0.0);
        assert_eq!(e.dominant_stride_fraction(), 0.0);
        let s = PageTrace::new("s", vec![5]);
        assert_eq!(s.sequential_fraction(), 0.0);
        assert!(s.deltas().is_empty());
    }

    #[test]
    fn encode_decode_round_trip() {
        let t = PageTrace::new("video", vec![100, 5, 0, u64::MAX, 7]);
        let decoded = PageTrace::decode(&t.encode()).unwrap();
        assert_eq!(decoded, t);
    }

    #[test]
    fn decode_rejects_malformed() {
        assert!(PageTrace::decode(&[1, 2]).is_none());
        // Truncated body.
        let t = PageTrace::new("x", vec![1, 2, 3]);
        let enc = t.encode();
        assert!(PageTrace::decode(&enc[..enc.len() - 4]).is_none());
        // Bad UTF-8 name.
        let mut buf = Vec::new();
        buf.extend_from_slice(&2u32.to_be_bytes());
        buf.extend_from_slice(&[0xFF, 0xFE]);
        buf.extend_from_slice(&0u64.to_be_bytes());
        assert!(PageTrace::decode(&buf).is_none());
    }

    #[test]
    fn json_round_trip() {
        let t = PageTrace::new("j", vec![1, 2, 3]);
        let json = rkd_testkit::json::to_string(&t);
        let back: PageTrace = rkd_testkit::json::from_str(&json).unwrap();
        assert_eq!(back, t);
    }
}
