//! Scheduler workload profiles for the Table 2 case study.
//!
//! Substitution (DESIGN.md #3): the paper drives its CFS experiment
//! with PARSEC Blackscholes and Streamcluster plus hand-written
//! Fibonacci and matrix-multiplication programs. We model each as a set
//! of [`TaskSpec`]s whose burst/IO/footprint mix reproduces the
//! behaviour class that matters for `can_migrate_task`:
//!
//! - **Blackscholes** — embarrassingly parallel, CPU-bound, uniform
//!   chunks, small working set.
//! - **Streamcluster** — memory-bound with barrier phases: long job,
//!   periodic short synchronization waits, large cache footprint (so
//!   migration is expensive — "cache hot" in CFS terms).
//! - **Fib** — many small, skewed CPU tasks (recursive fan-out),
//!   negligible footprint; load balancing matters most here.
//! - **MatMul** — few long CPU-heavy tasks with large footprints.

use rkd_testkit::rng::Rng;

/// One schedulable task, as consumed by the CFS simulator.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TaskSpec {
    /// Task name (for reporting).
    pub name: String,
    /// Total CPU work to complete, in microseconds.
    pub total_work_us: u64,
    /// CPU burst length before the task blocks or yields, in
    /// microseconds.
    pub burst_us: u64,
    /// I/O or synchronization wait after each burst, in microseconds
    /// (0 = pure CPU).
    pub io_wait_us: u64,
    /// Nice value (-20..19; lower = higher priority).
    pub nice: i32,
    /// Cache footprint in KiB (drives migration cost / cache hotness).
    pub cache_footprint_kb: u64,
    /// Arrival time, in microseconds from simulation start.
    pub arrival_us: u64,
}

/// A named batch of tasks forming one benchmark run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SchedWorkload {
    /// Benchmark name as reported in Table 2.
    pub name: String,
    /// The tasks.
    pub tasks: Vec<TaskSpec>,
}

impl SchedWorkload {
    /// Total CPU work across all tasks, in microseconds.
    pub fn total_work_us(&self) -> u64 {
        self.tasks.iter().map(|t| t.total_work_us).sum()
    }
}

fn jitter(rng: &mut impl Rng, base: u64, pct: u64) -> u64 {
    if base == 0 || pct == 0 {
        return base;
    }
    let span = base * pct / 100;
    base - span / 2 + rng.gen_range(0..=span.max(1))
}

/// Blackscholes-like workload: `threads` uniform CPU-bound workers.
pub fn blackscholes(threads: usize, rng: &mut impl Rng) -> SchedWorkload {
    let tasks = (0..threads)
        .map(|i| TaskSpec {
            name: format!("blackscholes-{i}"),
            total_work_us: jitter(rng, 9_500_000, 6),
            burst_us: jitter(rng, 4_000, 20),
            io_wait_us: 0,
            nice: 0,
            // Alternating working sets: option chunks fit in L2, the
            // shared price table does not — so cache hotness genuinely
            // discriminates between candidate tasks.
            cache_footprint_kb: if i % 2 == 0 { 512 } else { 3_072 },
            arrival_us: 0,
        })
        .collect();
    SchedWorkload {
        name: "Blackscholes".into(),
        tasks,
    }
}

/// Streamcluster-like workload: memory-bound phase workers with barrier
/// synchronization pauses and big footprints.
pub fn streamcluster(threads: usize, rng: &mut impl Rng) -> SchedWorkload {
    let tasks = (0..threads)
        .map(|i| TaskSpec {
            name: format!("streamcluster-{i}"),
            total_work_us: jitter(rng, 27_000_000, 8),
            burst_us: jitter(rng, 4_000, 30),
            io_wait_us: 500,
            nice: 0,
            // Coordinator threads are light; workers drag the full
            // point set around.
            cache_footprint_kb: if i % 4 == 0 { 1_024 } else { 8_192 },
            arrival_us: 0,
        })
        .collect();
    SchedWorkload {
        name: "Streamcluster".into(),
        tasks,
    }
}

/// Fibonacci-like workload: a skewed swarm of small CPU tasks arriving
/// in waves (recursive fan-out).
pub fn fib(tasks_n: usize, rng: &mut impl Rng) -> SchedWorkload {
    let tasks = (0..tasks_n)
        .map(|i| {
            // Work skew ~ golden-ratio decay: a few big, many small.
            let scale = 1.0 / (1.0 + i as f64 * 0.35);
            TaskSpec {
                name: format!("fib-{i}"),
                total_work_us: jitter(rng, (10_500_000.0 * scale) as u64, 10).max(50_000),
                burst_us: jitter(rng, 800, 40),
                io_wait_us: 0,
                nice: 0,
                cache_footprint_kb: 16,
                arrival_us: (i as u64) * 30_000,
            }
        })
        .collect();
    SchedWorkload {
        name: "Fib Calculation".into(),
        tasks,
    }
}

/// Matrix-multiplication-like workload: few long CPU-heavy tasks.
pub fn matmul(threads: usize, rng: &mut impl Rng) -> SchedWorkload {
    let tasks = (0..threads)
        .map(|i| TaskSpec {
            name: format!("matmul-{i}"),
            total_work_us: jitter(rng, 10_500_000, 5),
            burst_us: jitter(rng, 12_000, 15),
            io_wait_us: 0,
            nice: 0,
            cache_footprint_kb: if i % 2 == 0 { 1_024 } else { 6_144 },
            arrival_us: 0,
        })
        .collect();
    SchedWorkload {
        name: "Matrix Multiply".into(),
        tasks,
    }
}

/// All four Table 2 workloads with the paper's shape, sized for
/// `cpus`-way simulation.
pub fn table2_suite(cpus: usize, rng: &mut impl Rng) -> Vec<SchedWorkload> {
    vec![
        blackscholes(cpus * 2, rng),
        streamcluster(cpus * 2, rng),
        fib(cpus * 3, rng),
        matmul(cpus + 2, rng),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use rkd_testkit::rng::SeedableRng;
    use rkd_testkit::rng::StdRng;

    #[test]
    fn profiles_have_expected_shape() {
        let mut rng = StdRng::seed_from_u64(71);
        let bs = blackscholes(8, &mut rng);
        assert_eq!(bs.tasks.len(), 8);
        assert!(bs.tasks.iter().all(|t| t.io_wait_us == 0));
        let sc = streamcluster(8, &mut rng);
        assert!(sc.tasks.iter().all(|t| t.io_wait_us > 0));
        assert!(
            sc.tasks[0].cache_footprint_kb > bs.tasks[0].cache_footprint_kb,
            "streamcluster is cache heavier"
        );
        let f = fib(12, &mut rng);
        // Skewed: first task much larger than last.
        assert!(f.tasks[0].total_work_us > f.tasks[11].total_work_us * 2);
        // Staggered arrivals.
        assert!(f.tasks[11].arrival_us > f.tasks[0].arrival_us);
        let mm = matmul(4, &mut rng);
        assert!(mm.tasks[0].burst_us > bs.tasks[0].burst_us);
    }

    #[test]
    fn streamcluster_is_the_longest_job() {
        // Paper Table 2: Streamcluster JCT (~58s) is ~3x the others.
        let mut rng = StdRng::seed_from_u64(72);
        let suite = table2_suite(4, &mut rng);
        let per_cpu: Vec<(String, u64)> = suite
            .iter()
            .map(|w| (w.name.clone(), w.total_work_us() / 8))
            .collect();
        let sc = per_cpu.iter().find(|(n, _)| n == "Streamcluster").unwrap();
        for (n, w) in &per_cpu {
            if n != "Streamcluster" {
                assert!(sc.1 > *w, "{n} ({w}) should be shorter than streamcluster");
            }
        }
    }

    #[test]
    fn jitter_stays_near_base() {
        let mut rng = StdRng::seed_from_u64(73);
        for _ in 0..100 {
            let v = jitter(&mut rng, 1_000, 20);
            assert!((900..=1_101).contains(&v), "jitter {v}");
        }
        assert_eq!(jitter(&mut rng, 0, 20), 0);
        assert_eq!(jitter(&mut rng, 500, 0), 500);
    }

    #[test]
    fn suite_is_deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(9);
        let mut b = StdRng::seed_from_u64(9);
        assert_eq!(table2_suite(2, &mut a), table2_suite(2, &mut b));
    }
}
