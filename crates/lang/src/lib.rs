//! # rkd-lang — the RMT domain-specific language
//!
//! §3.1: "An RMT program can be written in constrained C or a
//! domain-specific language and compiled into machine-independent
//! bytecode, and installed via a system call." This crate is that
//! compiler: [`compile`] turns DSL source into an
//! [`rkd_core::prog::RmtProgram`] plus symbol tables, ready for
//! [`rkd_core::verifier::verify`] and installation.
//!
//! The language mirrors the paper's Figure 1 listing: `table`
//! declarations bind hook points and match fields, `action` bodies are
//! a constrained C subset (integer expressions, bounded loops, map and
//! ML builtins), `model` declarations reserve ML slots that the control
//! plane later fills with trained models, and `entry` items statically
//! encode match/action entries.
//!
//! # Examples
//!
//! ```
//! use rkd_core::ctxt::Ctxt;
//! use rkd_core::machine::{ExecMode, RmtMachine};
//! use rkd_core::verifier::verify;
//!
//! let compiled = rkd_lang::compile(r#"
//!     program "double" {
//!         ctxt pid: ro;
//!         action double { return arg * 2; }
//!         action fallback { return -1; }
//!         table t { hook my_hook; match pid; default fallback; }
//!         entry t key (7) action double arg 21;
//!     }
//! "#).unwrap();
//! let verified = verify(compiled.program).unwrap();
//! let mut vm = RmtMachine::new();
//! vm.install(verified, ExecMode::Jit).unwrap();
//! let mut ctxt = Ctxt::from_values(vec![7]);
//! assert_eq!(vm.fire("my_hook", &mut ctxt).verdict(), Some(42));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod ast;
pub mod error;
pub mod lower;
pub mod parser;
pub mod token;

pub use error::LangError;
pub use lower::Compiled;

/// Compiles DSL source into a program plus symbol tables.
pub fn compile(src: &str) -> Result<Compiled, LangError> {
    let ast = parser::parse(src)?;
    lower::lower(&ast)
}

/// The paper's Figure 1 `prefetch.rmt` program, expressed in the DSL:
/// a data-collection table at `lookup_swap_cache` feeding a class-
/// history ring, and a prediction table at `swap_cluster_readahead`
/// consulting a decision tree (`dt_1`).
pub const FIGURE1_PREFETCH: &str = r#"
program "prefetch.rmt" {
    ctxt pid: ro;
    ctxt page: ro;

    map last_page: hash[64];
    map class_history: ring[12];
    map delta_class: hash[64];
    map class_offset: array[16];

    model dt_1: tree(12) @ mm;

    // page_access_tab action: collect per-process access deltas.
    action data_collection {
        let last = lookup(last_page, ctxt.pid, -1);
        update(last_page, ctxt.pid, ctxt.page);
        if (last != -1) {
            let delta = ctxt.page - last;
            let class = lookup(delta_class, delta, 0);
            push(class_history, class);
            push(class_history, ctxt.page % 256);
        }
        return 0;
    }

    // page_prefetch_tab action: consult the ML model and prefetch.
    action ml_prediction {
        let v = window(class_history);
        let class = predict(dt_1, v);
        let off = lookup(class_offset, class, 0);
        if (off != 0) {
            prefetch(ctxt.page + off, 1);
        }
        return 0;
    }

    table page_access_tab {
        hook lookup_swap_cache;
        match pid;
        default data_collection;
        size 64;
    }

    table page_prefetch_tab {
        hook swap_cluster_readahead;
        match pid;
        default ml_prediction;
        size 64;
    }

    rate_limit 1024 64;
}
"#;

#[cfg(test)]
mod tests {
    use super::*;
    use rkd_core::ctxt::Ctxt;
    use rkd_core::machine::{ExecMode, RmtMachine};
    use rkd_core::verifier::verify;

    #[test]
    fn figure1_program_compiles_and_verifies() {
        let compiled = compile(FIGURE1_PREFETCH).unwrap();
        assert_eq!(compiled.program.name, "prefetch.rmt");
        assert_eq!(compiled.tables.len(), 2);
        assert_eq!(compiled.models.len(), 1);
        assert_eq!(compiled.maps.len(), 4);
        let verified = verify(compiled.program).unwrap();
        assert!(verified.prog().rate_limit.is_some());
    }

    #[test]
    fn figure1_datapath_collects_and_predicts() {
        let compiled = compile(FIGURE1_PREFETCH).unwrap();
        let verified = verify(compiled.program).unwrap();
        let mut vm = RmtMachine::new();
        let id = vm.install(verified, ExecMode::Jit).unwrap();
        // Feed accesses: collection populates last_page and the ring.
        for page in [100i64, 101, 102, 103, 104, 105, 106] {
            let mut ctxt = Ctxt::from_values(vec![1, page]);
            vm.fire("lookup_swap_cache", &mut ctxt);
            vm.fire("swap_cluster_readahead", &mut ctxt);
        }
        let stats = vm.stats(id).unwrap();
        assert_eq!(stats.invocations, 14);
        // The placeholder tree predicts class 0 -> offset 0 -> no
        // prefetch; but the ring must have filled from collection.
        let ring = compiled.maps["class_history"];
        // 6 deltas recorded -> 12 ring entries (class + position).
        let mut found = 0;
        for k in 0..12 {
            if vm.map_lookup(id, ring, k).unwrap().is_some() {
                found += 1;
            }
        }
        assert_eq!(found, 12);
    }

    #[test]
    fn compile_error_positions_surface() {
        let err =
            compile("program \"x\" { action a { let y = nosuch + 1; return y; } }").unwrap_err();
        assert!(err.to_string().contains("unknown variable 'nosuch'"));
    }
}
