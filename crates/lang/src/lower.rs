//! Lowering: DSL AST to a verified-ready [`RmtProgram`].
//!
//! Name resolution, register allocation, and bytecode emission. The
//! register convention layered on top of the VM's ABI:
//!
//! - `r0`/`r1` — return / ML confidence (clobbered by calls);
//! - `r2..r4` — helper argument registers, reserved for `prefetch`,
//!   `migrate`, and `hint` statements;
//! - `r5..r8`, `r10..r15` — the variable/temporary pool;
//! - `r9` — the matched entry's argument (`arg`).
//!
//! Model declarations lower to zero-weight placeholders of the declared
//! shape; the control plane hot-swaps trained models into the named
//! slots after installation (the paper's quantize-and-push flow).

use crate::ast::{BinKind, CmpKind, Cond, Expr, Item, Program, Stmt};
use crate::error::LangError;
use crate::token::Pos;
use rkd_core::bytecode::{Action, AluOp, CmpOp, Helper, Insn, ModelSlot, Reg, VReg};
use rkd_core::ctxt::FieldId;
use rkd_core::maps::{MapId, MapKind};
use rkd_core::prog::{ModelSpec, PrivacyPolicy, ProgramBuilder, RateLimitCfg, RmtProgram};
use rkd_core::table::{ActionId, Entry, MatchKey, MatchKind, TableId};
use rkd_ml::cost::LatencyClass;
use rkd_ml::dataset::{Dataset, Sample};
use rkd_ml::fixed::Fix;
use rkd_ml::quant::QuantMlp;
use rkd_ml::svm::IntSvm;
use rkd_ml::tree::{DecisionTree, TreeConfig};
use std::collections::HashMap;

/// A compiled DSL program plus its name tables, so the control plane
/// can address tables, actions, maps, and model slots symbolically.
#[derive(Clone, Debug)]
pub struct Compiled {
    /// The lowered program (not yet verified).
    pub program: RmtProgram,
    /// Table name -> id.
    pub tables: HashMap<String, TableId>,
    /// Action name -> id.
    pub actions: HashMap<String, ActionId>,
    /// Map name -> id.
    pub maps: HashMap<String, MapId>,
    /// Model name -> slot.
    pub models: HashMap<String, ModelSlot>,
    /// Context field name -> id.
    pub fields: HashMap<String, FieldId>,
}

/// Lowers a parsed program.
pub fn lower(ast: &Program) -> Result<Compiled, LangError> {
    let mut b = ProgramBuilder::new(&ast.name);
    let mut fields = HashMap::new();
    let mut maps = HashMap::new();
    let mut models = HashMap::new();
    // Pre-assign table and action ids in declaration order so bodies
    // can reference them regardless of ordering.
    let mut tables = HashMap::new();
    let mut actions = HashMap::new();
    {
        let mut next_table = 0u16;
        let mut next_action = 0u16;
        for item in &ast.items {
            match item {
                Item::Table { name, pos, .. } => {
                    if tables.insert(name.clone(), TableId(next_table)).is_some() {
                        return Err(LangError::lower(*pos, &format!("duplicate table '{name}'")));
                    }
                    next_table += 1;
                }
                Item::Action { name, pos, .. } => {
                    if actions
                        .insert(name.clone(), ActionId(next_action))
                        .is_some()
                    {
                        return Err(LangError::lower(
                            *pos,
                            &format!("duplicate action '{name}'"),
                        ));
                    }
                    next_action += 1;
                }
                _ => {}
            }
        }
    }
    // Pass 1a: context fields.
    for item in &ast.items {
        if let Item::Ctxt {
            name,
            writable,
            pos,
        } = item
        {
            if fields.contains_key(name) {
                return Err(LangError::lower(*pos, &format!("duplicate field '{name}'")));
            }
            let id = if *writable {
                b.field_scratch(name)
            } else {
                b.field_readonly(name)
            };
            fields.insert(name.clone(), id);
        }
    }
    for item in &ast.items {
        match item {
            Item::Map {
                name,
                kind,
                capacity,
                shared,
                pos,
            } => {
                if maps.contains_key(name) {
                    return Err(LangError::lower(*pos, &format!("duplicate map '{name}'")));
                }
                let k = match kind.as_str() {
                    "hash" => MapKind::Hash,
                    "array" => MapKind::Array,
                    "lru" => MapKind::LruHash,
                    "ring" => MapKind::RingBuf,
                    "hist" => MapKind::Histogram,
                    other => {
                        return Err(LangError::lower(
                            *pos,
                            &format!("unknown map kind '{other}'"),
                        ))
                    }
                };
                if *capacity <= 0 {
                    return Err(LangError::lower(*pos, "map capacity must be positive"));
                }
                let id = if *shared {
                    b.shared_map(name, k, *capacity as usize)
                } else {
                    b.map(name, k, *capacity as usize)
                };
                maps.insert(name.clone(), id);
            }
            Item::Model {
                name,
                mtype,
                arity,
                class,
                guard,
                pos,
            } => {
                if models.contains_key(name) {
                    return Err(LangError::lower(*pos, &format!("duplicate model '{name}'")));
                }
                if *arity <= 0 || *arity > 256 {
                    return Err(LangError::lower(*pos, "model arity must be in 1..=256"));
                }
                let latency = match class.as_str() {
                    "sched" => LatencyClass::Scheduler,
                    "mm" => LatencyClass::MemoryManagement,
                    "bg" => LatencyClass::Background,
                    other => {
                        return Err(LangError::lower(
                            *pos,
                            &format!("unknown latency class '{other}' (sched|mm|bg)"),
                        ))
                    }
                };
                let spec = placeholder_model(mtype, *arity as usize).ok_or_else(|| {
                    LangError::lower(*pos, &format!("unknown model type '{mtype}'"))
                })?;
                let slot = match guard {
                    Some((max, fallback, conf_millis)) => {
                        if *max < 0 || *fallback < 0 || *conf_millis < 0 || *conf_millis > 1000 {
                            return Err(LangError::lower(*pos, "invalid guard parameters"));
                        }
                        b.model_guarded(
                            name,
                            spec,
                            latency,
                            rkd_core::guard::ModelGuard {
                                max_class: *max as usize,
                                fallback_class: *fallback as usize,
                                min_confidence: Fix::from_f64(*conf_millis as f64 / 1000.0),
                            },
                        )
                    }
                    None => b.model(name, spec, latency),
                };
                models.insert(name.clone(), slot);
            }
            _ => {}
        }
    }
    // Pass 2: actions (bodies can reference everything).
    let names = Names {
        fields: &fields,
        maps: &maps,
        models: &models,
        tables: &tables,
    };
    for item in &ast.items {
        if let Item::Action {
            name,
            bound,
            body,
            pos,
        } = item
        {
            let mut gen = CodeGen::new(&names);
            gen.block(body)?;
            gen.finish();
            let auto_bound = gen.loop_iters;
            let final_bound = match (*bound, auto_bound) {
                (Some(b), a) => Some(b.max(a)),
                (None, 0) => None,
                (None, a) => Some(a),
            };
            let action = Action {
                name: name.clone(),
                code: gen.code,
                loop_bound: final_bound,
            };
            let id = b.action(action);
            debug_assert_eq!(Some(&id), actions.get(name), "pre-assigned id mismatch");
            let _ = pos;
        }
    }
    // Pass 3: tables and entries.
    for item in &ast.items {
        if let Item::Table {
            name,
            hook,
            match_fields,
            kind,
            default,
            size,
            pos,
        } = item
        {
            let key_fields: Vec<FieldId> = match_fields
                .iter()
                .map(|f| {
                    fields
                        .get(f)
                        .copied()
                        .ok_or_else(|| LangError::lower(*pos, &format!("unknown field '{f}'")))
                })
                .collect::<Result<_, _>>()?;
            let k = match kind.as_str() {
                "exact" => MatchKind::Exact,
                "lpm" => MatchKind::Lpm,
                "range" => MatchKind::Range,
                "ternary" => MatchKind::Ternary,
                other => {
                    return Err(LangError::lower(
                        *pos,
                        &format!("unknown match kind '{other}'"),
                    ))
                }
            };
            let default_action = match default {
                Some(a) => Some(
                    *actions
                        .get(a)
                        .ok_or_else(|| LangError::lower(*pos, &format!("unknown action '{a}'")))?,
                ),
                None => None,
            };
            if *size <= 0 {
                return Err(LangError::lower(*pos, "table size must be positive"));
            }
            let id = b.table(name, hook, &key_fields, k, default_action, *size as usize);
            debug_assert_eq!(Some(&id), tables.get(name));
        }
    }
    for item in &ast.items {
        match item {
            Item::Entry {
                table,
                key,
                action,
                arg,
                priority,
                pos,
            } => {
                let tid = *tables
                    .get(table)
                    .ok_or_else(|| LangError::lower(*pos, &format!("unknown table '{table}'")))?;
                let aid = *actions
                    .get(action)
                    .ok_or_else(|| LangError::lower(*pos, &format!("unknown action '{action}'")))?;
                b.entry(
                    tid,
                    Entry {
                        key: MatchKey::Exact(key.iter().map(|&v| v as u64).collect()),
                        priority: *priority as u32,
                        action: aid,
                        arg: *arg,
                    },
                );
            }
            Item::RateLimit {
                capacity,
                refill,
                pos,
            } => {
                if *capacity <= 0 || *refill < 0 {
                    return Err(LangError::lower(*pos, "invalid rate limit"));
                }
                b.rate_limit(RateLimitCfg {
                    capacity: *capacity as u64,
                    refill_per_tick: *refill as u64,
                });
            }
            Item::Privacy {
                budget,
                per_query,
                sensitivity,
                pos,
            } => {
                if *budget <= 0 || *per_query <= 0 || *sensitivity <= 0 {
                    return Err(LangError::lower(
                        *pos,
                        "privacy parameters must be positive",
                    ));
                }
                b.privacy(PrivacyPolicy {
                    budget_milli_eps: *budget as u64,
                    per_query_milli_eps: *per_query as u64,
                    sensitivity: *sensitivity as u64,
                });
            }
            _ => {}
        }
    }
    Ok(Compiled {
        program: b.build(),
        tables,
        actions,
        maps,
        models,
        fields,
    })
}

fn placeholder_model(mtype: &str, arity: usize) -> Option<ModelSpec> {
    match mtype {
        "tree" => {
            let ds = Dataset::from_samples(vec![Sample {
                features: vec![Fix::ZERO; arity],
                label: 0,
            }])
            .expect("placeholder dataset");
            let tree = DecisionTree::train(&ds, &TreeConfig::default()).expect("placeholder tree");
            Some(ModelSpec::Tree(tree))
        }
        "svm" => Some(ModelSpec::Svm(IntSvm {
            weights: vec![Fix::ZERO; arity],
            bias: Fix::ZERO,
        })),
        "mlp" => Some(ModelSpec::Qmlp(QuantMlp::placeholder(arity, 2))),
        _ => None,
    }
}

struct Names<'a> {
    fields: &'a HashMap<String, FieldId>,
    maps: &'a HashMap<String, MapId>,
    models: &'a HashMap<String, ModelSlot>,
    tables: &'a HashMap<String, TableId>,
}

/// Per-action code generator.
struct CodeGen<'a> {
    names: &'a Names<'a>,
    code: Vec<Insn>,
    vars: HashMap<String, Reg>,
    vecs: HashMap<String, VReg>,
    free_regs: Vec<Reg>,
    free_vregs: Vec<VReg>,
    /// Conservative total loop iterations (for the verifier bound).
    loop_iters: u32,
    /// Multiplier from enclosing repeats.
    nest_mult: u32,
}

impl<'a> CodeGen<'a> {
    fn new(names: &'a Names<'a>) -> CodeGen<'a> {
        CodeGen {
            names,
            code: Vec::new(),
            vars: HashMap::new(),
            vecs: HashMap::new(),
            // Pool, preferred order: r5..r8 then r10..r15.
            free_regs: vec![
                Reg(15),
                Reg(14),
                Reg(13),
                Reg(12),
                Reg(11),
                Reg(10),
                Reg(8),
                Reg(7),
                Reg(6),
                Reg(5),
            ],
            free_vregs: vec![VReg(3), VReg(2), VReg(1), VReg(0)],
            loop_iters: 0,
            nest_mult: 1,
        }
    }

    fn alloc(&mut self, pos: Pos) -> Result<Reg, LangError> {
        self.free_regs
            .pop()
            .ok_or_else(|| LangError::lower(pos, "expression too deep / too many variables"))
    }

    fn free(&mut self, r: Reg) {
        self.free_regs.push(r);
    }

    fn var(&self, name: &str, pos: Pos) -> Result<Reg, LangError> {
        self.vars
            .get(name)
            .copied()
            .ok_or_else(|| LangError::lower(pos, &format!("unknown variable '{name}'")))
    }

    fn vec_var(&self, name: &str, pos: Pos) -> Result<VReg, LangError> {
        self.vecs
            .get(name)
            .copied()
            .ok_or_else(|| LangError::lower(pos, &format!("unknown vector variable '{name}'")))
    }

    fn field(&self, name: &str, pos: Pos) -> Result<FieldId, LangError> {
        self.names
            .fields
            .get(name)
            .copied()
            .ok_or_else(|| LangError::lower(pos, &format!("unknown context field '{name}'")))
    }

    fn map(&self, name: &str, pos: Pos) -> Result<MapId, LangError> {
        self.names
            .maps
            .get(name)
            .copied()
            .ok_or_else(|| LangError::lower(pos, &format!("unknown map '{name}'")))
    }

    /// Evaluates `expr` into `dst` (which may be outside the pool).
    fn eval_into(&mut self, expr: &Expr, dst: Reg) -> Result<(), LangError> {
        match expr {
            Expr::Int(v, _) => self.code.push(Insn::LdImm { dst, imm: *v }),
            Expr::Var(name, pos) => {
                let src = self.var(name, *pos)?;
                self.code.push(Insn::Mov { dst, src });
            }
            Expr::Ctxt(name, pos) => {
                let field = self.field(name, *pos)?;
                self.code.push(Insn::LdCtxt { dst, field });
            }
            Expr::Arg(_) => self.code.push(Insn::Mov {
                dst,
                src: rkd_core::bytecode::ARG_REG,
            }),
            Expr::Tick(_) => {
                self.code.push(Insn::Call {
                    helper: Helper::GetTick,
                });
                self.code.push(Insn::Mov { dst, src: Reg(0) });
            }
            Expr::Rand(_) => {
                self.code.push(Insn::Call {
                    helper: Helper::Rand,
                });
                self.code.push(Insn::Mov { dst, src: Reg(0) });
            }
            Expr::Lookup {
                map,
                key,
                default,
                pos,
            } => {
                let m = self.map(map, *pos)?;
                let keyr = self.alloc(*pos)?;
                self.eval_into(key, keyr)?;
                self.code.push(Insn::MapLookup {
                    dst,
                    map: m,
                    key: keyr,
                    default: *default,
                });
                self.free(keyr);
            }
            Expr::VGet { vector, index, pos } => {
                let v = self.vec_var(vector, *pos)?;
                if *index < 0 || *index > u16::MAX as i64 {
                    return Err(LangError::lower(*pos, "vget index out of range"));
                }
                self.code.push(Insn::ScalarVal {
                    dst,
                    src: v,
                    idx: *index as u16,
                });
            }
            Expr::Neg(inner, _) => {
                self.eval_into(inner, dst)?;
                // dst = 0 - dst, via dst = dst * -1.
                self.code.push(Insn::AluImm {
                    op: AluOp::Mul,
                    dst,
                    imm: -1,
                });
            }
            Expr::Bin { op, lhs, rhs, pos } => {
                self.eval_into(lhs, dst)?;
                let alu = match op {
                    BinKind::Add => AluOp::Add,
                    BinKind::Sub => AluOp::Sub,
                    BinKind::Mul => AluOp::Mul,
                    BinKind::Div => AluOp::Div,
                    BinKind::Mod => AluOp::Mod,
                    BinKind::And => AluOp::And,
                    BinKind::Or => AluOp::Or,
                    BinKind::Xor => AluOp::Xor,
                    BinKind::Shl => AluOp::Shl,
                    BinKind::Shr => AluOp::Shr,
                };
                if let Expr::Int(v, _) = **rhs {
                    self.code.push(Insn::AluImm {
                        op: alu,
                        dst,
                        imm: v,
                    });
                } else {
                    let tmp = self.alloc(*pos)?;
                    self.eval_into(rhs, tmp)?;
                    self.code.push(Insn::Alu {
                        op: alu,
                        dst,
                        src: tmp,
                    });
                    self.free(tmp);
                }
            }
        }
        Ok(())
    }

    fn block(&mut self, stmts: &[Stmt]) -> Result<(), LangError> {
        for s in stmts {
            self.stmt(s)?;
        }
        Ok(())
    }

    fn stmt(&mut self, s: &Stmt) -> Result<(), LangError> {
        match s {
            Stmt::Let { name, value, pos } => {
                if self.vars.contains_key(name) || self.vecs.contains_key(name) {
                    return Err(LangError::lower(*pos, &format!("'{name}' already bound")));
                }
                let r = self.alloc(*pos)?;
                self.eval_into(value, r)?;
                self.vars.insert(name.clone(), r);
            }
            Stmt::LetWindow { name, map, pos } => {
                if self.vars.contains_key(name) || self.vecs.contains_key(name) {
                    return Err(LangError::lower(*pos, &format!("'{name}' already bound")));
                }
                let m = self.map(map, *pos)?;
                let v = self
                    .free_vregs
                    .pop()
                    .ok_or_else(|| LangError::lower(*pos, "too many vector variables"))?;
                self.code.push(Insn::VectorLdMap { dst: v, map: m });
                self.vecs.insert(name.clone(), v);
            }
            Stmt::LetPredict {
                name,
                model,
                vector,
                pos,
            } => {
                if self.vars.contains_key(name) {
                    return Err(LangError::lower(*pos, &format!("'{name}' already bound")));
                }
                let slot =
                    *self.names.models.get(model).ok_or_else(|| {
                        LangError::lower(*pos, &format!("unknown model '{model}'"))
                    })?;
                let v = self.vec_var(vector, *pos)?;
                self.code.push(Insn::CallMl {
                    model: slot,
                    src: v,
                });
                let r = self.alloc(*pos)?;
                self.code.push(Insn::Mov {
                    dst: r,
                    src: Reg(0),
                });
                self.vars.insert(name.clone(), r);
            }
            Stmt::LetDpSum { name, map, pos } => {
                if self.vars.contains_key(name) {
                    return Err(LangError::lower(*pos, &format!("'{name}' already bound")));
                }
                let m = self.map(map, *pos)?;
                let r = self.alloc(*pos)?;
                self.code.push(Insn::DpAggregate { dst: r, map: m });
                self.vars.insert(name.clone(), r);
            }
            Stmt::Assign { name, value, pos } => {
                let r = self.var(name, *pos)?;
                self.eval_into(value, r)?;
            }
            Stmt::CtxtStore { field, value, pos } => {
                let f = self.field(field, *pos)?;
                let tmp = self.alloc(*pos)?;
                self.eval_into(value, tmp)?;
                self.code.push(Insn::StCtxt { field: f, src: tmp });
                self.free(tmp);
            }
            Stmt::If {
                cond,
                then,
                otherwise,
                pos,
            } => {
                let else_jump = self.emit_cond_branch(cond, *pos)?;
                self.block(then)?;
                if otherwise.is_empty() {
                    let end = self.code.len();
                    self.patch_target(else_jump, end);
                } else {
                    let skip_else = self.code.len();
                    self.code.push(Insn::Jmp { target: usize::MAX });
                    let else_start = self.code.len();
                    self.patch_target(else_jump, else_start);
                    self.block(otherwise)?;
                    let end = self.code.len();
                    self.patch_target(skip_else, end);
                }
            }
            Stmt::Repeat { count, body, pos } => {
                if *count <= 0 || *count > 1_000_000 {
                    return Err(LangError::lower(
                        *pos,
                        "repeat count must be in 1..=1000000",
                    ));
                }
                let iters = *count as u32;
                self.loop_iters = self
                    .loop_iters
                    .saturating_add(iters.saturating_mul(self.nest_mult));
                let counter = self.alloc(*pos)?;
                self.code.push(Insn::LdImm {
                    dst: counter,
                    imm: 0,
                });
                let loop_start = self.code.len();
                let saved_mult = self.nest_mult;
                self.nest_mult = self.nest_mult.saturating_mul(iters);
                self.block(body)?;
                self.nest_mult = saved_mult;
                self.code.push(Insn::AluImm {
                    op: AluOp::Add,
                    dst: counter,
                    imm: 1,
                });
                self.code.push(Insn::JmpIfImm {
                    cmp: CmpOp::Lt,
                    lhs: counter,
                    imm: *count,
                    target: loop_start,
                });
                self.free(counter);
            }
            Stmt::Return { value, .. } => {
                self.eval_into(value, Reg(0))?;
                self.code.push(Insn::Exit);
            }
            Stmt::TailCall { table, pos } => {
                let t =
                    *self.names.tables.get(table).ok_or_else(|| {
                        LangError::lower(*pos, &format!("unknown table '{table}'"))
                    })?;
                self.code.push(Insn::TailCall { table: t });
            }
            Stmt::Update {
                map,
                key,
                value,
                pos,
            } => {
                let m = self.map(map, *pos)?;
                let kr = self.alloc(*pos)?;
                self.eval_into(key, kr)?;
                let vr = self.alloc(*pos)?;
                self.eval_into(value, vr)?;
                self.code.push(Insn::MapUpdate {
                    map: m,
                    key: kr,
                    value: vr,
                });
                self.free(vr);
                self.free(kr);
            }
            Stmt::Delete { map, key, pos } => {
                let m = self.map(map, *pos)?;
                let kr = self.alloc(*pos)?;
                self.eval_into(key, kr)?;
                self.code.push(Insn::MapDelete { map: m, key: kr });
                self.free(kr);
            }
            Stmt::Push { map, value, pos } => {
                let m = self.map(map, *pos)?;
                let kr = self.alloc(*pos)?;
                // Ring pushes ignore the key; reuse the value register.
                self.eval_into(value, kr)?;
                self.code.push(Insn::MapUpdate {
                    map: m,
                    key: kr,
                    value: kr,
                });
                self.free(kr);
            }
            Stmt::Prefetch { base, count, .. } => {
                self.eval_into(base, Reg(2))?;
                self.eval_into(count, Reg(3))?;
                self.code.push(Insn::Call {
                    helper: Helper::EmitPrefetch,
                });
            }
            Stmt::Migrate { flag, .. } => {
                self.eval_into(flag, Reg(2))?;
                self.code.push(Insn::Call {
                    helper: Helper::EmitMigrate,
                });
            }
            Stmt::Hint { kind, a, b, .. } => {
                self.eval_into(kind, Reg(2))?;
                self.eval_into(a, Reg(3))?;
                self.eval_into(b, Reg(4))?;
                self.code.push(Insn::Call {
                    helper: Helper::EmitHint,
                });
            }
        }
        Ok(())
    }

    /// Emits a branch that jumps when `cond` is FALSE; returns the
    /// instruction index to patch with the else/end target.
    fn emit_cond_branch(&mut self, cond: &Cond, pos: Pos) -> Result<usize, LangError> {
        let negated = match cond.op {
            CmpKind::Eq => CmpOp::Ne,
            CmpKind::Ne => CmpOp::Eq,
            CmpKind::Lt => CmpOp::Ge,
            CmpKind::Le => CmpOp::Gt,
            CmpKind::Gt => CmpOp::Le,
            CmpKind::Ge => CmpOp::Lt,
        };
        let lhs = self.alloc(pos)?;
        self.eval_into(&cond.lhs, lhs)?;
        let at = if let Expr::Int(v, _) = cond.rhs {
            self.code.push(Insn::JmpIfImm {
                cmp: negated,
                lhs,
                imm: v,
                target: usize::MAX,
            });
            self.code.len() - 1
        } else {
            let rhs = self.alloc(pos)?;
            self.eval_into(&cond.rhs, rhs)?;
            self.code.push(Insn::JmpIf {
                cmp: negated,
                lhs,
                rhs,
                target: usize::MAX,
            });
            self.free(rhs);
            self.code.len() - 1
        };
        self.free(lhs);
        Ok(at)
    }

    fn patch_target(&mut self, at: usize, target: usize) {
        match &mut self.code[at] {
            Insn::Jmp { target: t }
            | Insn::JmpIf { target: t, .. }
            | Insn::JmpIfImm { target: t, .. } => *t = target,
            other => unreachable!("patching non-jump {other:?}"),
        }
    }

    /// Ensures the body ends in a terminator (implicit `return 0`).
    fn finish(&mut self) {
        let needs_exit = !matches!(self.code.last(), Some(i) if i.is_terminator());
        if needs_exit {
            self.code.push(Insn::LdImm {
                dst: Reg(0),
                imm: 0,
            });
            self.code.push(Insn::Exit);
        } else {
            // Branches may still target one-past-the-end (if with no
            // else at the end of the body). Give them a landing pad.
            let end = self.code.len();
            let has_end_target = self.code.iter().any(|i| i.jump_target() == Some(end));
            if has_end_target {
                self.code.push(Insn::LdImm {
                    dst: Reg(0),
                    imm: 0,
                });
                self.code.push(Insn::Exit);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::parser::parse;

    fn compile(src: &str) -> Result<super::Compiled, crate::LangError> {
        super::lower(&parse(src)?)
    }

    #[test]
    fn register_pool_exhaustion_is_reported() {
        // 11 live variables exceed the 10-register pool.
        let mut body = String::new();
        for i in 0..11 {
            body.push_str(&format!("let v{i} = {i};\n"));
        }
        let src = format!("program \"p\" {{ action a {{ {body} return 0; }} }}");
        let err = compile(&src).unwrap_err();
        assert!(err.to_string().contains("too many variables"), "{err}");
        // 10 variables fit exactly.
        let mut body = String::new();
        for i in 0..10 {
            body.push_str(&format!("let v{i} = {i};\n"));
        }
        let src = format!("program \"p\" {{ action a {{ {body} return v9; }} }}");
        assert!(compile(&src).is_ok());
    }

    #[test]
    fn vector_pool_exhaustion_is_reported() {
        let src = r#"
            program "p" {
                map r: ring[2];
                action a {
                    let a = window(r);
                    let b = window(r);
                    let c = window(r);
                    let d = window(r);
                    let e = window(r);
                    return 0;
                }
            }
        "#;
        let err = compile(src).unwrap_err();
        assert!(err.to_string().contains("too many vector"), "{err}");
    }

    #[test]
    fn nested_repeat_bounds_multiply() {
        let src = r#"
            program "p" {
                action a {
                    let acc = 0;
                    repeat (4) {
                        repeat (5) {
                            acc = acc + 1;
                        }
                    }
                    return acc;
                }
            }
        "#;
        let compiled = compile(src).unwrap();
        // Outer contributes 4, inner contributes 4*5 = 20; bound >= 24.
        let bound = compiled.program.actions[0].loop_bound.unwrap();
        assert!(bound >= 24, "bound {bound}");
        // And the program verifies + computes 20.
        use rkd_core::ctxt::Ctxt;
        use rkd_core::machine::{ExecMode, RmtMachine};
        let mut b2 = compiled.program.clone();
        // Attach a table so the action is reachable at a hook.
        b2.schema.add_readonly("k");
        b2.tables.push(rkd_core::table::TableDef {
            name: "t".into(),
            hook: "h".into(),
            key_fields: vec![rkd_core::ctxt::FieldId(0)],
            kind: rkd_core::table::MatchKind::Exact,
            default_action: Some(rkd_core::table::ActionId(0)),
            max_entries: 4,
        });
        let verified = rkd_core::verifier::verify(b2).unwrap();
        let mut vm = RmtMachine::new();
        vm.install(verified, ExecMode::Jit).unwrap();
        let mut ctxt = Ctxt::from_values(vec![0]);
        assert_eq!(vm.fire("h", &mut ctxt).verdict(), Some(20));
    }

    #[test]
    fn explicit_bound_takes_max_with_auto() {
        let src = r#"
            program "p" {
                action a bound 100 {
                    let acc = 0;
                    repeat (3) { acc = acc + 1; }
                    return acc;
                }
            }
        "#;
        let compiled = compile(src).unwrap();
        assert_eq!(compiled.program.actions[0].loop_bound, Some(100));
    }

    #[test]
    fn expression_temporaries_are_recycled() {
        // A long expression chain must not leak temporaries: evaluating
        // left-to-right reuses the same scratch registers.
        let src = r#"
            program "p" {
                action a {
                    let a = 1; let b = 2; let c = 3; let d = 4;
                    let e = (a + b) * (c + d) - (a * d) + (b * c) / (a + 1);
                    return e;
                }
            }
        "#;
        assert!(compile(src).is_ok());
    }

    #[test]
    fn if_with_else_at_end_of_body_gets_landing_pad() {
        // Branch targets one-past-the-end need the implicit epilogue.
        let src = r#"
            program "p" {
                ctxt x: ro;
                action a {
                    if (ctxt.x > 0) { return 1; } else { return 2; }
                }
                table t { hook h; match x; default a; }
            }
        "#;
        let compiled = compile(src).unwrap();
        assert!(rkd_core::verifier::verify(compiled.program).is_ok());
    }
}
