//! Diagnostics for the RMT DSL compiler.

use crate::token::Pos;
use core::fmt;

/// Which compiler stage produced the diagnostic.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Stage {
    /// Tokenization.
    Lex,
    /// Parsing.
    Parse,
    /// Name resolution / type checking / lowering.
    Lower,
}

/// A compile error with source position.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LangError {
    /// The stage that failed.
    pub stage: Stage,
    /// Source position of the error.
    pub pos: Pos,
    /// Human-readable message.
    pub message: String,
}

impl LangError {
    /// Creates a lexer error.
    pub fn lex(pos: Pos, message: &str) -> LangError {
        LangError {
            stage: Stage::Lex,
            pos,
            message: message.to_string(),
        }
    }

    /// Creates a parser error.
    pub fn parse(pos: Pos, message: &str) -> LangError {
        LangError {
            stage: Stage::Parse,
            pos,
            message: message.to_string(),
        }
    }

    /// Creates a lowering error.
    pub fn lower(pos: Pos, message: &str) -> LangError {
        LangError {
            stage: Stage::Lower,
            pos,
            message: message.to_string(),
        }
    }
}

impl fmt::Display for LangError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let stage = match self.stage {
            Stage::Lex => "lex",
            Stage::Parse => "parse",
            Stage::Lower => "compile",
        };
        write!(
            f,
            "{}:{}: {} error: {}",
            self.pos.line, self.pos.col, stage, self.message
        )
    }
}

impl std::error::Error for LangError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_position_and_stage() {
        let e = LangError::parse(
            Pos {
                offset: 10,
                line: 3,
                col: 7,
            },
            "expected ';'",
        );
        assert_eq!(e.to_string(), "3:7: parse error: expected ';'");
        assert!(LangError::lex(Pos::start(), "x")
            .to_string()
            .contains("lex"));
        assert!(LangError::lower(Pos::start(), "x")
            .to_string()
            .contains("compile"));
    }
}
