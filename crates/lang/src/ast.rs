//! Abstract syntax tree for the RMT DSL.

use crate::token::Pos;

/// A complete `program "name" { ... }` unit.
#[derive(Clone, Debug, PartialEq)]
pub struct Program {
    /// Program name.
    pub name: String,
    /// Top-level items in source order.
    pub items: Vec<Item>,
}

/// A top-level declaration.
#[derive(Clone, Debug, PartialEq)]
pub enum Item {
    /// `ctxt name: ro;` / `ctxt name: rw;` — a context field.
    Ctxt {
        /// Field name.
        name: String,
        /// Whether actions may write it.
        writable: bool,
        /// Source position.
        pos: Pos,
    },
    /// `map name: kind[cap] shared?;`
    Map {
        /// Map name.
        name: String,
        /// Kind keyword (`hash`, `array`, `lru`, `ring`, `hist`).
        kind: String,
        /// Capacity.
        capacity: i64,
        /// Cross-application (DP-gated) map.
        shared: bool,
        /// Source position.
        pos: Pos,
    },
    /// `model name: mtype(arity) @ class [guard(max, fallback[, conf_millis])];`
    Model {
        /// Model name.
        name: String,
        /// Model type keyword (`tree`, `svm`, `mlp`).
        mtype: String,
        /// Feature arity.
        arity: i64,
        /// Latency class keyword (`sched`, `mm`, `bg`).
        class: String,
        /// Optional guardrails: (max class, fallback class, minimum
        /// confidence in 1/1000ths).
        guard: Option<(i64, i64, i64)>,
        /// Source position.
        pos: Pos,
    },
    /// `action name bound N? { stmts }`
    Action {
        /// Action name.
        name: String,
        /// Declared loop bound, if the body loops.
        bound: Option<u32>,
        /// Statement body.
        body: Vec<Stmt>,
        /// Source position.
        pos: Pos,
    },
    /// `table name { hook h; match f1, f2; kind exact; default a; size N; }`
    Table {
        /// Table name.
        name: String,
        /// Hook point name.
        hook: String,
        /// Match field names.
        match_fields: Vec<String>,
        /// Match kind keyword.
        kind: String,
        /// Default action name, if any.
        default: Option<String>,
        /// Capacity.
        size: i64,
        /// Source position.
        pos: Pos,
    },
    /// `entry table key (1, 2) action a arg 0 priority 0;`
    Entry {
        /// Target table name.
        table: String,
        /// Exact key values.
        key: Vec<i64>,
        /// Action name.
        action: String,
        /// Entry argument.
        arg: i64,
        /// Priority.
        priority: i64,
        /// Source position.
        pos: Pos,
    },
    /// `rate_limit capacity refill;`
    RateLimit {
        /// Bucket capacity.
        capacity: i64,
        /// Refill per tick.
        refill: i64,
        /// Source position.
        pos: Pos,
    },
    /// `privacy budget per_query sensitivity;` (milli-epsilon units).
    Privacy {
        /// Total budget.
        budget: i64,
        /// Per-query charge.
        per_query: i64,
        /// Sensitivity.
        sensitivity: i64,
        /// Source position.
        pos: Pos,
    },
}

/// A statement inside an action body.
#[derive(Clone, Debug, PartialEq)]
pub enum Stmt {
    /// `let x = expr;`
    Let {
        /// Variable name.
        name: String,
        /// Initializer.
        value: Expr,
        /// Source position.
        pos: Pos,
    },
    /// `let v = window(map);` — load a ring window into a vector var.
    LetWindow {
        /// Vector variable name.
        name: String,
        /// Ring-buffer map name.
        map: String,
        /// Source position.
        pos: Pos,
    },
    /// `let c = predict(model, v);` — ML inference.
    LetPredict {
        /// Scalar variable receiving the class.
        name: String,
        /// Model name.
        model: String,
        /// Vector variable holding features.
        vector: String,
        /// Source position.
        pos: Pos,
    },
    /// `let x = dp_sum(map);` — DP aggregate read.
    LetDpSum {
        /// Variable receiving the noised sum.
        name: String,
        /// Map name.
        map: String,
        /// Source position.
        pos: Pos,
    },
    /// `x = expr;`
    Assign {
        /// Existing variable name.
        name: String,
        /// New value.
        value: Expr,
        /// Source position.
        pos: Pos,
    },
    /// `ctxt.f = expr;`
    CtxtStore {
        /// Field name.
        field: String,
        /// Value.
        value: Expr,
        /// Source position.
        pos: Pos,
    },
    /// `if (cond) { .. } else { .. }`
    If {
        /// Condition.
        cond: Cond,
        /// Then branch.
        then: Vec<Stmt>,
        /// Else branch.
        otherwise: Vec<Stmt>,
        /// Source position.
        pos: Pos,
    },
    /// `repeat (n) { .. }` — a bounded loop.
    Repeat {
        /// Constant iteration count.
        count: i64,
        /// Body.
        body: Vec<Stmt>,
        /// Source position.
        pos: Pos,
    },
    /// `return expr;`
    Return {
        /// Verdict value.
        value: Expr,
        /// Source position.
        pos: Pos,
    },
    /// `tailcall table;`
    TailCall {
        /// Target table name.
        table: String,
        /// Source position.
        pos: Pos,
    },
    /// `update(map, key, value);`
    Update {
        /// Map name.
        map: String,
        /// Key expression.
        key: Expr,
        /// Value expression.
        value: Expr,
        /// Source position.
        pos: Pos,
    },
    /// `delete(map, key);`
    Delete {
        /// Map name.
        map: String,
        /// Key expression.
        key: Expr,
        /// Source position.
        pos: Pos,
    },
    /// `push(map, value);` — ring-buffer append.
    Push {
        /// Map name.
        map: String,
        /// Value expression.
        value: Expr,
        /// Source position.
        pos: Pos,
    },
    /// `prefetch(base, count);`
    Prefetch {
        /// Base page expression.
        base: Expr,
        /// Page count expression.
        count: Expr,
        /// Source position.
        pos: Pos,
    },
    /// `migrate(flag);`
    Migrate {
        /// Nonzero = migrate.
        flag: Expr,
        /// Source position.
        pos: Pos,
    },
    /// `hint(kind, a, b);`
    Hint {
        /// Hint kind.
        kind: Expr,
        /// First payload.
        a: Expr,
        /// Second payload.
        b: Expr,
        /// Source position.
        pos: Pos,
    },
}

/// A comparison condition.
#[derive(Clone, Debug, PartialEq)]
pub struct Cond {
    /// Left operand.
    pub lhs: Expr,
    /// Comparison operator keyword (`==`, `!=`, `<`, `<=`, `>`, `>=`).
    pub op: CmpKind,
    /// Right operand.
    pub rhs: Expr,
}

/// Comparison operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CmpKind {
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

/// Binary arithmetic operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BinKind {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Mod,
    /// `&`
    And,
    /// `|`
    Or,
    /// `^`
    Xor,
    /// `<<`
    Shl,
    /// `>>`
    Shr,
}

/// An expression.
#[derive(Clone, Debug, PartialEq)]
pub enum Expr {
    /// Integer literal.
    Int(i64, Pos),
    /// A scalar variable reference.
    Var(String, Pos),
    /// `ctxt.field` read.
    Ctxt(String, Pos),
    /// The matched entry's argument (`arg`).
    Arg(Pos),
    /// `lookup(map, key, default)`.
    Lookup {
        /// Map name.
        map: String,
        /// Key expression.
        key: Box<Expr>,
        /// Default when absent.
        default: i64,
        /// Source position.
        pos: Pos,
    },
    /// `vget(v, idx)` — scalar extraction from a vector variable.
    VGet {
        /// Vector variable.
        vector: String,
        /// Constant element index.
        index: i64,
        /// Source position.
        pos: Pos,
    },
    /// `tick()` helper.
    Tick(Pos),
    /// `rand()` helper.
    Rand(Pos),
    /// Binary operation.
    Bin {
        /// Operator.
        op: BinKind,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
        /// Source position.
        pos: Pos,
    },
    /// Unary negation.
    Neg(Box<Expr>, Pos),
}

impl Expr {
    /// The expression's source position.
    pub fn pos(&self) -> Pos {
        match self {
            Expr::Int(_, p)
            | Expr::Var(_, p)
            | Expr::Ctxt(_, p)
            | Expr::Arg(p)
            | Expr::Tick(p)
            | Expr::Rand(p)
            | Expr::Neg(_, p) => *p,
            Expr::Lookup { pos, .. } | Expr::VGet { pos, .. } | Expr::Bin { pos, .. } => *pos,
        }
    }
}
