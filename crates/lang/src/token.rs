//! Lexer for the RMT DSL.
//!
//! §3.1: "An RMT program can be written in constrained C or a
//! domain-specific language and compiled into machine-independent
//! bytecode." This module tokenizes that DSL; the grammar lives in
//! [`crate::parser`].

use crate::error::LangError;

/// A source position (byte offset, 1-based line, 1-based column).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Pos {
    /// Byte offset into the source.
    pub offset: usize,
    /// 1-based line number.
    pub line: u32,
    /// 1-based column number.
    pub col: u32,
}

impl Pos {
    /// The start-of-file position.
    pub fn start() -> Pos {
        Pos {
            offset: 0,
            line: 1,
            col: 1,
        }
    }
}

/// Token kinds.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Tok {
    /// An identifier or keyword.
    Ident(String),
    /// An integer literal (decimal or 0x hex, optional leading `-`
    /// handled by the parser as unary minus).
    Int(i64),
    /// A string literal (program names).
    Str(String),
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `;`
    Semi,
    /// `,`
    Comma,
    /// `.`
    Dot,
    /// `:`
    Colon,
    /// `@`
    At,
    /// `=`
    Assign,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// `&`
    Amp,
    /// `|`
    Pipe,
    /// `^`
    Caret,
    /// `<<`
    Shl,
    /// `>>`
    Shr,
    /// End of input.
    Eof,
}

/// A token with its source position.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Token {
    /// The token kind/payload.
    pub tok: Tok,
    /// Where it starts.
    pub pos: Pos,
}

/// Tokenizes DSL source. `//` line comments and `/* */` block comments
/// are skipped.
pub fn lex(src: &str) -> Result<Vec<Token>, LangError> {
    let bytes = src.as_bytes();
    let mut out = Vec::new();
    let mut pos = Pos::start();
    let mut i = 0usize;
    let advance = |pos: &mut Pos, c: u8| {
        pos.offset += 1;
        if c == b'\n' {
            pos.line += 1;
            pos.col = 1;
        } else {
            pos.col += 1;
        }
    };
    while i < bytes.len() {
        let c = bytes[i];
        let start = pos;
        match c {
            b' ' | b'\t' | b'\r' | b'\n' => {
                advance(&mut pos, c);
                i += 1;
            }
            b'/' if i + 1 < bytes.len() && bytes[i + 1] == b'/' => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    advance(&mut pos, bytes[i]);
                    i += 1;
                }
            }
            b'/' if i + 1 < bytes.len() && bytes[i + 1] == b'*' => {
                advance(&mut pos, bytes[i]);
                advance(&mut pos, bytes[i + 1]);
                i += 2;
                let mut closed = false;
                while i + 1 < bytes.len() {
                    if bytes[i] == b'*' && bytes[i + 1] == b'/' {
                        advance(&mut pos, bytes[i]);
                        advance(&mut pos, bytes[i + 1]);
                        i += 2;
                        closed = true;
                        break;
                    }
                    advance(&mut pos, bytes[i]);
                    i += 1;
                }
                if !closed {
                    return Err(LangError::lex(start, "unterminated block comment"));
                }
            }
            b'"' => {
                advance(&mut pos, c);
                i += 1;
                let begin = i;
                while i < bytes.len() && bytes[i] != b'"' {
                    if bytes[i] == b'\n' {
                        return Err(LangError::lex(start, "unterminated string"));
                    }
                    advance(&mut pos, bytes[i]);
                    i += 1;
                }
                if i >= bytes.len() {
                    return Err(LangError::lex(start, "unterminated string"));
                }
                let s = std::str::from_utf8(&bytes[begin..i])
                    .map_err(|_| LangError::lex(start, "invalid utf-8 in string"))?
                    .to_string();
                advance(&mut pos, bytes[i]);
                i += 1;
                out.push(Token {
                    tok: Tok::Str(s),
                    pos: start,
                });
            }
            b'0'..=b'9' => {
                let begin = i;
                let hex = c == b'0' && i + 1 < bytes.len() && (bytes[i + 1] | 32) == b'x';
                if hex {
                    advance(&mut pos, bytes[i]);
                    advance(&mut pos, bytes[i + 1]);
                    i += 2;
                    while i < bytes.len() && bytes[i].is_ascii_hexdigit() {
                        advance(&mut pos, bytes[i]);
                        i += 1;
                    }
                    let text = &src[begin + 2..i];
                    let v = i64::from_str_radix(text, 16)
                        .map_err(|_| LangError::lex(start, "integer literal out of range"))?;
                    out.push(Token {
                        tok: Tok::Int(v),
                        pos: start,
                    });
                } else {
                    while i < bytes.len() && (bytes[i].is_ascii_digit() || bytes[i] == b'_') {
                        advance(&mut pos, bytes[i]);
                        i += 1;
                    }
                    let text: String = src[begin..i].chars().filter(|&c| c != '_').collect();
                    let v = text
                        .parse::<i64>()
                        .map_err(|_| LangError::lex(start, "integer literal out of range"))?;
                    out.push(Token {
                        tok: Tok::Int(v),
                        pos: start,
                    });
                }
            }
            b'a'..=b'z' | b'A'..=b'Z' | b'_' => {
                let begin = i;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    advance(&mut pos, bytes[i]);
                    i += 1;
                }
                out.push(Token {
                    tok: Tok::Ident(src[begin..i].to_string()),
                    pos: start,
                });
            }
            _ => {
                let two = |a: u8, b: u8| i + 1 < bytes.len() && c == a && bytes[i + 1] == b;
                let (tok, len) = if two(b'=', b'=') {
                    (Tok::Eq, 2)
                } else if two(b'!', b'=') {
                    (Tok::Ne, 2)
                } else if two(b'<', b'=') {
                    (Tok::Le, 2)
                } else if two(b'>', b'=') {
                    (Tok::Ge, 2)
                } else if two(b'<', b'<') {
                    (Tok::Shl, 2)
                } else if two(b'>', b'>') {
                    (Tok::Shr, 2)
                } else {
                    let t = match c {
                        b'{' => Tok::LBrace,
                        b'}' => Tok::RBrace,
                        b'(' => Tok::LParen,
                        b')' => Tok::RParen,
                        b'[' => Tok::LBracket,
                        b']' => Tok::RBracket,
                        b';' => Tok::Semi,
                        b',' => Tok::Comma,
                        b'.' => Tok::Dot,
                        b':' => Tok::Colon,
                        b'@' => Tok::At,
                        b'=' => Tok::Assign,
                        b'<' => Tok::Lt,
                        b'>' => Tok::Gt,
                        b'+' => Tok::Plus,
                        b'-' => Tok::Minus,
                        b'*' => Tok::Star,
                        b'/' => Tok::Slash,
                        b'%' => Tok::Percent,
                        b'&' => Tok::Amp,
                        b'|' => Tok::Pipe,
                        b'^' => Tok::Caret,
                        _ => {
                            return Err(LangError::lex(
                                start,
                                &format!("unexpected character {:?}", c as char),
                            ))
                        }
                    };
                    (t, 1)
                };
                for _ in 0..len {
                    advance(&mut pos, bytes[i]);
                    i += 1;
                }
                out.push(Token { tok, pos: start });
            }
        }
    }
    out.push(Token { tok: Tok::Eof, pos });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|t| t.tok).collect()
    }

    #[test]
    fn basic_tokens() {
        assert_eq!(
            kinds("foo = 42;"),
            vec![
                Tok::Ident("foo".into()),
                Tok::Assign,
                Tok::Int(42),
                Tok::Semi,
                Tok::Eof
            ]
        );
    }

    #[test]
    fn operators_and_compounds() {
        assert_eq!(
            kinds("== != <= >= << >> < > + - * / % & | ^"),
            vec![
                Tok::Eq,
                Tok::Ne,
                Tok::Le,
                Tok::Ge,
                Tok::Shl,
                Tok::Shr,
                Tok::Lt,
                Tok::Gt,
                Tok::Plus,
                Tok::Minus,
                Tok::Star,
                Tok::Slash,
                Tok::Percent,
                Tok::Amp,
                Tok::Pipe,
                Tok::Caret,
                Tok::Eof
            ]
        );
    }

    #[test]
    fn numbers_hex_and_underscores() {
        assert_eq!(
            kinds("0xFF 1_000_000 0"),
            vec![Tok::Int(255), Tok::Int(1_000_000), Tok::Int(0), Tok::Eof]
        );
    }

    #[test]
    fn strings_and_comments() {
        assert_eq!(
            kinds("\"hello\" // comment\n/* block\n comment */ x"),
            vec![Tok::Str("hello".into()), Tok::Ident("x".into()), Tok::Eof]
        );
    }

    #[test]
    fn positions_track_lines() {
        let toks = lex("a\n  b").unwrap();
        assert_eq!(toks[0].pos.line, 1);
        assert_eq!(toks[1].pos.line, 2);
        assert_eq!(toks[1].pos.col, 3);
    }

    #[test]
    fn lex_errors() {
        assert!(lex("\"unterminated").is_err());
        assert!(lex("/* unterminated").is_err());
        assert!(lex("$").is_err());
        assert!(lex("99999999999999999999999").is_err());
    }
}
