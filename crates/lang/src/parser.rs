//! Recursive-descent parser for the RMT DSL.
//!
//! Grammar (informal):
//!
//! ```text
//! program    := "program" STR "{" item* "}"
//! item       := "ctxt" IDENT ":" ("ro"|"rw") ";"
//!             | "map" IDENT ":" KIND "[" INT "]" "shared"? ";"
//!             | "model" IDENT ":" MTYPE "(" INT ")" "@" CLASS ";"
//!             | "action" IDENT ("bound" INT)? block
//!             | "table" IDENT "{" table_field* "}"
//!             | "entry" IDENT "key" "(" INT,* ")" "action" IDENT
//!               ("arg" INT)? ("priority" INT)? ";"
//!             | "rate_limit" INT INT ";"
//!             | "privacy" INT INT INT ";"
//! stmt       := "let" IDENT "=" rhs ";" | IDENT "=" expr ";"
//!             | "ctxt" "." IDENT "=" expr ";"
//!             | "if" "(" cond ")" block ("else" block)?
//!             | "repeat" "(" INT ")" block
//!             | "return" expr ";" | "tailcall" IDENT ";"
//!             | CALL_STMT ";"
//! ```

use crate::ast::{BinKind, CmpKind, Cond, Expr, Item, Program, Stmt};
use crate::error::LangError;
use crate::token::{lex, Pos, Tok, Token};

/// Parses DSL source into an AST.
pub fn parse(src: &str) -> Result<Program, LangError> {
    let tokens = lex(src)?;
    let mut p = Parser { tokens, i: 0 };
    p.program()
}

struct Parser {
    tokens: Vec<Token>,
    i: usize,
}

impl Parser {
    fn peek(&self) -> &Token {
        &self.tokens[self.i.min(self.tokens.len() - 1)]
    }

    fn pos(&self) -> Pos {
        self.peek().pos
    }

    fn bump(&mut self) -> Token {
        let t = self.tokens[self.i.min(self.tokens.len() - 1)].clone();
        if self.i < self.tokens.len() - 1 {
            self.i += 1;
        }
        t
    }

    fn expect(&mut self, tok: &Tok, what: &str) -> Result<Pos, LangError> {
        let t = self.bump();
        if &t.tok == tok {
            Ok(t.pos)
        } else {
            Err(LangError::parse(
                t.pos,
                &format!("expected {what}, found {:?}", t.tok),
            ))
        }
    }

    fn ident(&mut self, what: &str) -> Result<(String, Pos), LangError> {
        let t = self.bump();
        match t.tok {
            Tok::Ident(s) => Ok((s, t.pos)),
            other => Err(LangError::parse(
                t.pos,
                &format!("expected {what}, found {other:?}"),
            )),
        }
    }

    fn int(&mut self, what: &str) -> Result<i64, LangError> {
        let neg = matches!(self.peek().tok, Tok::Minus);
        if neg {
            self.bump();
        }
        let t = self.bump();
        match t.tok {
            Tok::Int(v) => Ok(if neg { -v } else { v }),
            other => Err(LangError::parse(
                t.pos,
                &format!("expected {what}, found {other:?}"),
            )),
        }
    }

    fn eat_ident(&mut self, kw: &str) -> bool {
        if let Tok::Ident(s) = &self.peek().tok {
            if s == kw {
                self.bump();
                return true;
            }
        }
        false
    }

    fn program(&mut self) -> Result<Program, LangError> {
        let (kw, pos) = self.ident("'program'")?;
        if kw != "program" {
            return Err(LangError::parse(pos, "expected 'program'"));
        }
        let t = self.bump();
        let name = match t.tok {
            Tok::Str(s) => s,
            other => {
                return Err(LangError::parse(
                    t.pos,
                    &format!("expected program name string, found {other:?}"),
                ))
            }
        };
        self.expect(&Tok::LBrace, "'{'")?;
        let mut items = Vec::new();
        while self.peek().tok != Tok::RBrace {
            if self.peek().tok == Tok::Eof {
                return Err(LangError::parse(self.pos(), "unexpected end of input"));
            }
            items.push(self.item()?);
        }
        self.expect(&Tok::RBrace, "'}'")?;
        if self.peek().tok != Tok::Eof {
            return Err(LangError::parse(self.pos(), "trailing input after program"));
        }
        Ok(Program { name, items })
    }

    fn item(&mut self) -> Result<Item, LangError> {
        let (kw, pos) = self.ident("a declaration")?;
        match kw.as_str() {
            "ctxt" => {
                let (name, _) = self.ident("field name")?;
                self.expect(&Tok::Colon, "':'")?;
                let (mode, mpos) = self.ident("'ro' or 'rw'")?;
                let writable = match mode.as_str() {
                    "ro" => false,
                    "rw" => true,
                    _ => return Err(LangError::parse(mpos, "expected 'ro' or 'rw'")),
                };
                self.expect(&Tok::Semi, "';'")?;
                Ok(Item::Ctxt {
                    name,
                    writable,
                    pos,
                })
            }
            "map" => {
                let (name, _) = self.ident("map name")?;
                self.expect(&Tok::Colon, "':'")?;
                let (kind, _) = self.ident("map kind")?;
                self.expect(&Tok::LBracket, "'['")?;
                let capacity = self.int("capacity")?;
                self.expect(&Tok::RBracket, "']'")?;
                let shared = self.eat_ident("shared");
                self.expect(&Tok::Semi, "';'")?;
                Ok(Item::Map {
                    name,
                    kind,
                    capacity,
                    shared,
                    pos,
                })
            }
            "model" => {
                let (name, _) = self.ident("model name")?;
                self.expect(&Tok::Colon, "':'")?;
                let (mtype, _) = self.ident("model type")?;
                self.expect(&Tok::LParen, "'('")?;
                let arity = self.int("arity")?;
                self.expect(&Tok::RParen, "')'")?;
                self.expect(&Tok::At, "'@'")?;
                let (class, _) = self.ident("latency class")?;
                let guard = if self.eat_ident("guard") {
                    self.expect(&Tok::LParen, "'('")?;
                    let max = self.int("max class")?;
                    self.expect(&Tok::Comma, "','")?;
                    let fallback = self.int("fallback class")?;
                    let conf = if self.peek().tok == Tok::Comma {
                        self.bump();
                        self.int("confidence (millis)")?
                    } else {
                        0
                    };
                    self.expect(&Tok::RParen, "')'")?;
                    Some((max, fallback, conf))
                } else {
                    None
                };
                self.expect(&Tok::Semi, "';'")?;
                Ok(Item::Model {
                    name,
                    mtype,
                    arity,
                    class,
                    guard,
                    pos,
                })
            }
            "action" => {
                let (name, _) = self.ident("action name")?;
                let bound = if self.eat_ident("bound") {
                    Some(self.int("loop bound")? as u32)
                } else {
                    None
                };
                let body = self.block()?;
                Ok(Item::Action {
                    name,
                    bound,
                    body,
                    pos,
                })
            }
            "table" => self.table(pos),
            "entry" => {
                let (table, _) = self.ident("table name")?;
                let (kw, kpos) = self.ident("'key'")?;
                if kw != "key" {
                    return Err(LangError::parse(kpos, "expected 'key'"));
                }
                self.expect(&Tok::LParen, "'('")?;
                let mut key = vec![self.int("key value")?];
                while self.peek().tok == Tok::Comma {
                    self.bump();
                    key.push(self.int("key value")?);
                }
                self.expect(&Tok::RParen, "')'")?;
                let (kw, kpos) = self.ident("'action'")?;
                if kw != "action" {
                    return Err(LangError::parse(kpos, "expected 'action'"));
                }
                let (action, _) = self.ident("action name")?;
                let arg = if self.eat_ident("arg") {
                    self.int("arg")?
                } else {
                    0
                };
                let priority = if self.eat_ident("priority") {
                    self.int("priority")?
                } else {
                    0
                };
                self.expect(&Tok::Semi, "';'")?;
                Ok(Item::Entry {
                    table,
                    key,
                    action,
                    arg,
                    priority,
                    pos,
                })
            }
            "rate_limit" => {
                let capacity = self.int("capacity")?;
                let refill = self.int("refill")?;
                self.expect(&Tok::Semi, "';'")?;
                Ok(Item::RateLimit {
                    capacity,
                    refill,
                    pos,
                })
            }
            "privacy" => {
                let budget = self.int("budget")?;
                let per_query = self.int("per-query charge")?;
                let sensitivity = self.int("sensitivity")?;
                self.expect(&Tok::Semi, "';'")?;
                Ok(Item::Privacy {
                    budget,
                    per_query,
                    sensitivity,
                    pos,
                })
            }
            other => Err(LangError::parse(
                pos,
                &format!("unknown declaration '{other}'"),
            )),
        }
    }

    fn table(&mut self, pos: Pos) -> Result<Item, LangError> {
        let (name, _) = self.ident("table name")?;
        self.expect(&Tok::LBrace, "'{'")?;
        let mut hook = None;
        let mut match_fields = Vec::new();
        let mut kind = "exact".to_string();
        let mut default = None;
        let mut size = 64i64;
        while self.peek().tok != Tok::RBrace {
            let (field, fpos) = self.ident("table property")?;
            match field.as_str() {
                "hook" => {
                    let (h, _) = self.ident("hook name")?;
                    hook = Some(h);
                }
                "match" => {
                    let (f, _) = self.ident("field name")?;
                    match_fields.push(f);
                    while self.peek().tok == Tok::Comma {
                        self.bump();
                        let (f, _) = self.ident("field name")?;
                        match_fields.push(f);
                    }
                }
                "kind" => {
                    let (k, _) = self.ident("match kind")?;
                    kind = k;
                }
                "default" => {
                    let (d, _) = self.ident("action name")?;
                    default = Some(d);
                }
                "size" => {
                    size = self.int("size")?;
                }
                other => {
                    return Err(LangError::parse(
                        fpos,
                        &format!("unknown table property '{other}'"),
                    ))
                }
            }
            self.expect(&Tok::Semi, "';'")?;
        }
        self.expect(&Tok::RBrace, "'}'")?;
        let hook = hook.ok_or_else(|| LangError::parse(pos, "table missing 'hook'"))?;
        if match_fields.is_empty() {
            return Err(LangError::parse(pos, "table missing 'match'"));
        }
        Ok(Item::Table {
            name,
            hook,
            match_fields,
            kind,
            default,
            size,
            pos,
        })
    }

    fn block(&mut self) -> Result<Vec<Stmt>, LangError> {
        self.expect(&Tok::LBrace, "'{'")?;
        let mut out = Vec::new();
        while self.peek().tok != Tok::RBrace {
            if self.peek().tok == Tok::Eof {
                return Err(LangError::parse(self.pos(), "unexpected end of input"));
            }
            out.push(self.stmt()?);
        }
        self.expect(&Tok::RBrace, "'}'")?;
        Ok(out)
    }

    fn stmt(&mut self) -> Result<Stmt, LangError> {
        let (kw, pos) = self.ident("a statement")?;
        match kw.as_str() {
            "let" => {
                let (name, _) = self.ident("variable name")?;
                self.expect(&Tok::Assign, "'='")?;
                // Special right-hand sides.
                if let Tok::Ident(rhs_kw) = &self.peek().tok {
                    match rhs_kw.as_str() {
                        "window" => {
                            self.bump();
                            self.expect(&Tok::LParen, "'('")?;
                            let (map, _) = self.ident("map name")?;
                            self.expect(&Tok::RParen, "')'")?;
                            self.expect(&Tok::Semi, "';'")?;
                            return Ok(Stmt::LetWindow { name, map, pos });
                        }
                        "predict" => {
                            self.bump();
                            self.expect(&Tok::LParen, "'('")?;
                            let (model, _) = self.ident("model name")?;
                            self.expect(&Tok::Comma, "','")?;
                            let (vector, _) = self.ident("vector variable")?;
                            self.expect(&Tok::RParen, "')'")?;
                            self.expect(&Tok::Semi, "';'")?;
                            return Ok(Stmt::LetPredict {
                                name,
                                model,
                                vector,
                                pos,
                            });
                        }
                        "dp_sum" => {
                            self.bump();
                            self.expect(&Tok::LParen, "'('")?;
                            let (map, _) = self.ident("map name")?;
                            self.expect(&Tok::RParen, "')'")?;
                            self.expect(&Tok::Semi, "';'")?;
                            return Ok(Stmt::LetDpSum { name, map, pos });
                        }
                        _ => {}
                    }
                }
                let value = self.expr()?;
                self.expect(&Tok::Semi, "';'")?;
                Ok(Stmt::Let { name, value, pos })
            }
            "ctxt" => {
                self.expect(&Tok::Dot, "'.'")?;
                let (field, _) = self.ident("field name")?;
                self.expect(&Tok::Assign, "'='")?;
                let value = self.expr()?;
                self.expect(&Tok::Semi, "';'")?;
                Ok(Stmt::CtxtStore { field, value, pos })
            }
            "if" => {
                self.expect(&Tok::LParen, "'('")?;
                let cond = self.cond()?;
                self.expect(&Tok::RParen, "')'")?;
                let then = self.block()?;
                let otherwise = if self.eat_ident("else") {
                    self.block()?
                } else {
                    Vec::new()
                };
                Ok(Stmt::If {
                    cond,
                    then,
                    otherwise,
                    pos,
                })
            }
            "repeat" => {
                self.expect(&Tok::LParen, "'('")?;
                let count = self.int("iteration count")?;
                self.expect(&Tok::RParen, "')'")?;
                let body = self.block()?;
                Ok(Stmt::Repeat { count, body, pos })
            }
            "return" => {
                let value = self.expr()?;
                self.expect(&Tok::Semi, "';'")?;
                Ok(Stmt::Return { value, pos })
            }
            "tailcall" => {
                let (table, _) = self.ident("table name")?;
                self.expect(&Tok::Semi, "';'")?;
                Ok(Stmt::TailCall { table, pos })
            }
            "update" => {
                self.expect(&Tok::LParen, "'('")?;
                let (map, _) = self.ident("map name")?;
                self.expect(&Tok::Comma, "','")?;
                let key = self.expr()?;
                self.expect(&Tok::Comma, "','")?;
                let value = self.expr()?;
                self.expect(&Tok::RParen, "')'")?;
                self.expect(&Tok::Semi, "';'")?;
                Ok(Stmt::Update {
                    map,
                    key,
                    value,
                    pos,
                })
            }
            "delete" => {
                self.expect(&Tok::LParen, "'('")?;
                let (map, _) = self.ident("map name")?;
                self.expect(&Tok::Comma, "','")?;
                let key = self.expr()?;
                self.expect(&Tok::RParen, "')'")?;
                self.expect(&Tok::Semi, "';'")?;
                Ok(Stmt::Delete { map, key, pos })
            }
            "push" => {
                self.expect(&Tok::LParen, "'('")?;
                let (map, _) = self.ident("map name")?;
                self.expect(&Tok::Comma, "','")?;
                let value = self.expr()?;
                self.expect(&Tok::RParen, "')'")?;
                self.expect(&Tok::Semi, "';'")?;
                Ok(Stmt::Push { map, value, pos })
            }
            "prefetch" => {
                self.expect(&Tok::LParen, "'('")?;
                let base = self.expr()?;
                self.expect(&Tok::Comma, "','")?;
                let count = self.expr()?;
                self.expect(&Tok::RParen, "')'")?;
                self.expect(&Tok::Semi, "';'")?;
                Ok(Stmt::Prefetch { base, count, pos })
            }
            "migrate" => {
                self.expect(&Tok::LParen, "'('")?;
                let flag = self.expr()?;
                self.expect(&Tok::RParen, "')'")?;
                self.expect(&Tok::Semi, "';'")?;
                Ok(Stmt::Migrate { flag, pos })
            }
            "hint" => {
                self.expect(&Tok::LParen, "'('")?;
                let kind = self.expr()?;
                self.expect(&Tok::Comma, "','")?;
                let a = self.expr()?;
                self.expect(&Tok::Comma, "','")?;
                let b = self.expr()?;
                self.expect(&Tok::RParen, "')'")?;
                self.expect(&Tok::Semi, "';'")?;
                Ok(Stmt::Hint { kind, a, b, pos })
            }
            // Plain assignment: `x = expr;`
            _ => {
                self.expect(&Tok::Assign, "'='")?;
                let value = self.expr()?;
                self.expect(&Tok::Semi, "';'")?;
                Ok(Stmt::Assign {
                    name: kw,
                    value,
                    pos,
                })
            }
        }
    }

    fn cond(&mut self) -> Result<Cond, LangError> {
        let lhs = self.expr()?;
        let t = self.bump();
        let op = match t.tok {
            Tok::Eq => CmpKind::Eq,
            Tok::Ne => CmpKind::Ne,
            Tok::Lt => CmpKind::Lt,
            Tok::Le => CmpKind::Le,
            Tok::Gt => CmpKind::Gt,
            Tok::Ge => CmpKind::Ge,
            other => {
                return Err(LangError::parse(
                    t.pos,
                    &format!("expected comparison operator, found {other:?}"),
                ))
            }
        };
        let rhs = self.expr()?;
        Ok(Cond { lhs, op, rhs })
    }

    /// Additive / bitwise-or level.
    fn expr(&mut self) -> Result<Expr, LangError> {
        let mut lhs = self.term()?;
        loop {
            let op = match self.peek().tok {
                Tok::Plus => BinKind::Add,
                Tok::Minus => BinKind::Sub,
                Tok::Pipe => BinKind::Or,
                Tok::Caret => BinKind::Xor,
                _ => break,
            };
            let pos = self.bump().pos;
            let rhs = self.term()?;
            lhs = Expr::Bin {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
                pos,
            };
        }
        Ok(lhs)
    }

    /// Multiplicative / shifts / bitwise-and level.
    fn term(&mut self) -> Result<Expr, LangError> {
        let mut lhs = self.unary()?;
        loop {
            let op = match self.peek().tok {
                Tok::Star => BinKind::Mul,
                Tok::Slash => BinKind::Div,
                Tok::Percent => BinKind::Mod,
                Tok::Amp => BinKind::And,
                Tok::Shl => BinKind::Shl,
                Tok::Shr => BinKind::Shr,
                _ => break,
            };
            let pos = self.bump().pos;
            let rhs = self.unary()?;
            lhs = Expr::Bin {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
                pos,
            };
        }
        Ok(lhs)
    }

    fn unary(&mut self) -> Result<Expr, LangError> {
        if self.peek().tok == Tok::Minus {
            let pos = self.bump().pos;
            let inner = self.unary()?;
            return Ok(Expr::Neg(Box::new(inner), pos));
        }
        self.atom()
    }

    fn atom(&mut self) -> Result<Expr, LangError> {
        let t = self.bump();
        match t.tok {
            Tok::Int(v) => Ok(Expr::Int(v, t.pos)),
            Tok::LParen => {
                let e = self.expr()?;
                self.expect(&Tok::RParen, "')'")?;
                Ok(e)
            }
            Tok::Ident(name) => match name.as_str() {
                "ctxt" => {
                    self.expect(&Tok::Dot, "'.'")?;
                    let (field, _) = self.ident("field name")?;
                    Ok(Expr::Ctxt(field, t.pos))
                }
                "arg" => Ok(Expr::Arg(t.pos)),
                "tick" => {
                    self.expect(&Tok::LParen, "'('")?;
                    self.expect(&Tok::RParen, "')'")?;
                    Ok(Expr::Tick(t.pos))
                }
                "rand" => {
                    self.expect(&Tok::LParen, "'('")?;
                    self.expect(&Tok::RParen, "')'")?;
                    Ok(Expr::Rand(t.pos))
                }
                "lookup" => {
                    self.expect(&Tok::LParen, "'('")?;
                    let (map, _) = self.ident("map name")?;
                    self.expect(&Tok::Comma, "','")?;
                    let key = self.expr()?;
                    let default = if self.peek().tok == Tok::Comma {
                        self.bump();
                        self.int("default value")?
                    } else {
                        0
                    };
                    self.expect(&Tok::RParen, "')'")?;
                    Ok(Expr::Lookup {
                        map,
                        key: Box::new(key),
                        default,
                        pos: t.pos,
                    })
                }
                "vget" => {
                    self.expect(&Tok::LParen, "'('")?;
                    let (vector, _) = self.ident("vector variable")?;
                    self.expect(&Tok::Comma, "','")?;
                    let index = self.int("element index")?;
                    self.expect(&Tok::RParen, "')'")?;
                    Ok(Expr::VGet {
                        vector,
                        index,
                        pos: t.pos,
                    })
                }
                _ => Ok(Expr::Var(name, t.pos)),
            },
            other => Err(LangError::parse(
                t.pos,
                &format!("expected an expression, found {other:?}"),
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_minimal_program() {
        let p = parse(
            r#"program "mini" {
                ctxt pid: ro;
                action noop { return 0; }
                table t { hook h; match pid; default noop; }
            }"#,
        )
        .unwrap();
        assert_eq!(p.name, "mini");
        assert_eq!(p.items.len(), 3);
        match &p.items[2] {
            Item::Table {
                name,
                hook,
                match_fields,
                kind,
                default,
                size,
                ..
            } => {
                assert_eq!(name, "t");
                assert_eq!(hook, "h");
                assert_eq!(match_fields, &["pid"]);
                assert_eq!(kind, "exact");
                assert_eq!(default.as_deref(), Some("noop"));
                assert_eq!(*size, 64);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_expressions_with_precedence() {
        let p = parse(
            r#"program "e" {
                action a { let x = 1 + 2 * 3; return x; }
            }"#,
        )
        .unwrap();
        let Item::Action { body, .. } = &p.items[0] else {
            panic!()
        };
        let Stmt::Let { value, .. } = &body[0] else {
            panic!()
        };
        // 1 + (2 * 3): root is Add.
        let Expr::Bin { op, rhs, .. } = value else {
            panic!()
        };
        assert_eq!(*op, BinKind::Add);
        assert!(matches!(
            **rhs,
            Expr::Bin {
                op: BinKind::Mul,
                ..
            }
        ));
    }

    #[test]
    fn parses_control_flow_and_builtins() {
        let p = parse(
            r#"program "cf" {
                ctxt page: ro;
                action a bound 8 {
                    let last = lookup(m, ctxt.page, -1);
                    if (last == -1) { return 0; } else { ctxt.page = 1; }
                    repeat (4) { push(ring, last); }
                    let v = window(ring);
                    let c = predict(dt, v);
                    let s = vget(v, 2);
                    let d = dp_sum(agg);
                    prefetch(ctxt.page + 1, 2);
                    migrate(1);
                    hint(1, 2, 3);
                    update(m, 1, 2);
                    delete(m, 1);
                    tailcall t2;
                }
            }"#,
        )
        .unwrap();
        let Item::Action { body, bound, .. } = &p.items[1] else {
            panic!()
        };
        assert_eq!(*bound, Some(8));
        assert_eq!(body.len(), 13);
        assert!(matches!(body[1], Stmt::If { .. }));
        assert!(matches!(body[2], Stmt::Repeat { .. }));
        assert!(matches!(body[12], Stmt::TailCall { .. }));
    }

    #[test]
    fn parses_models_maps_entries_policies() {
        let p = parse(
            r#"program "decl" {
                ctxt pid: ro;
                map ring: ring[12];
                map agg: hist[8] shared;
                model dt_1: tree(12) @ mm;
                action a { return 0; }
                table t { hook h; match pid; default a; size 32; }
                entry t key (56) action a arg 7 priority 2;
                rate_limit 64 8;
                privacy 10000 100 1;
            }"#,
        )
        .unwrap();
        assert_eq!(p.items.len(), 9);
        assert!(matches!(p.items[2], Item::Map { shared: true, .. }));
        match &p.items[6] {
            Item::Entry {
                key, arg, priority, ..
            } => {
                assert_eq!(key, &[56]);
                assert_eq!(*arg, 7);
                assert_eq!(*priority, 2);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn negative_numbers_and_unary_minus() {
        let p = parse(
            r#"program "n" {
                action a { let x = -5 + - 3; return x; }
                entry t key (-1) action a arg -9;
            }"#,
        )
        .unwrap();
        let Item::Entry { key, arg, .. } = &p.items[1] else {
            panic!()
        };
        assert_eq!(key, &[-1]);
        assert_eq!(*arg, -9);
    }

    #[test]
    fn parse_errors_carry_positions() {
        let err = parse("program \"x\" { table t { } }").unwrap_err();
        assert!(err.to_string().contains("hook"));
        let err = parse("program \"x\" { bogus y; }").unwrap_err();
        assert!(err.to_string().contains("unknown declaration"));
        let err = parse("program \"x\" { action a { return 0 } }").unwrap_err();
        assert!(err.to_string().contains("';'"));
        let err = parse("notprogram").unwrap_err();
        assert!(err.to_string().contains("program"));
        let err = parse("program \"x\" {").unwrap_err();
        assert!(err.to_string().contains("end of input"));
        let err = parse("program \"x\" {} trailing").unwrap_err();
        assert!(err.to_string().contains("trailing"));
    }

    #[test]
    fn condition_operators() {
        for op in ["==", "!=", "<", "<=", ">", ">="] {
            let src = format!(
                "program \"c\" {{ action a {{ if (1 {op} 2) {{ return 1; }} return 0; }} }}"
            );
            assert!(parse(&src).is_ok(), "op {op}");
        }
        assert!(parse("program \"c\" { action a { if (1 + 2) { } } }").is_err());
    }
}
