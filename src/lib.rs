//! # rkd — reconfigurable kernel datapaths with learned optimizations
//!
//! A from-scratch Rust reproduction of the HotOS '21 paper *"Toward
//! Reconfigurable Kernel Datapaths with Learned Optimizations"* (Qiu,
//! Liu, Anderson, Lin, Chen). This facade crate re-exports the whole
//! workspace:
//!
//! - [`core`] — the in-kernel RMT virtual machine: match/action
//!   tables, bytecode, verifier, interpreter/JIT, control plane,
//!   differential privacy.
//! - [`ml`] — integer-only in-kernel ML: fixed point, decision trees,
//!   quantized MLPs, SVMs, online learning, distillation, feature
//!   ranking, cost models.
//! - [`lang`] — the constrained-C DSL compiler.
//! - [`sim`] — the simulated kernel substrate: paging/swap memory
//!   subsystem and CFS scheduler, with the paper's two case studies.
//! - [`workloads`] — synthetic workload generators reproducing the
//!   paper's benchmark structure.
//! - [`testkit`] — the zero-dependency support kit (deterministic
//!   PRNGs, property-testing harness, JSON codec) that keeps the
//!   build hermetic.
//!
//! See `README.md` for a tour and `EXPERIMENTS.md` for the
//! paper-vs-measured record of every table and figure.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use rkd_core as core;
pub use rkd_lang as lang;
pub use rkd_ml as ml;
pub use rkd_sim as sim;
pub use rkd_testkit as testkit;
pub use rkd_workloads as workloads;
